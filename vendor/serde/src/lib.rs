//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of serde that is
//! sufficient for the code in this repository:
//!
//! - `#[derive(Serialize, Deserialize)]` on structs with named fields and
//!   on enums (unit, tuple, and struct variants),
//! - serialization into an in-memory JSON [`Value`] tree, which
//!   `serde_json` renders to text.
//!
//! Deserialization is accepted at the type level (`Deserialize` is
//! derived as a marker) but has no runtime implementation yet — nothing
//! in the workspace deserializes. Swapping in the real serde is a
//! one-line change per dependency in the root `Cargo.toml` once a
//! registry is reachable; the derive syntax used here is a strict subset
//! of real serde's.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value tree — the serialization target of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers, kept in their widest lossless native form.
    Num(Number),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object (field order = declaration order).
    Obj(Vec<(String, Value)>),
}

/// A JSON number that preserves integer-ness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

/// Types that can serialize themselves into a [`Value`] tree.
///
/// This is the stand-in's analogue of `serde::Serialize`. The derive
/// macro implements it field-wise for structs and variant-wise for enums
/// (externally tagged, matching real serde's default representation).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker analogue of `serde::Deserialize`; derived but not yet
/// implemented because nothing in the workspace deserializes.
pub trait Deserialize {}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::I(*self as i64)) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::F(*self as f64)) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_values() {
        assert_eq!(3u32.to_value(), Value::Num(Number::U(3)));
        assert_eq!((-3i32).to_value(), Value::Num(Number::I(-3)));
        assert_eq!(1.5f32.to_value(), Value::Num(Number::F(1.5)));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Arr(vec![Value::Num(Number::U(1)), Value::Num(Number::U(2))])
        );
    }
}
