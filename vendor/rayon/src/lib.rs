//! Offline stand-in for the `rayon` crate, reduced to the scoped
//! thread-pool subset this workspace uses.
//!
//! Provides [`ThreadPoolBuilder`] → [`ThreadPool`] with persistent worker
//! threads and [`ThreadPool::scope`] / [`Scope::spawn`] for structured
//! fork-join parallelism over borrowed data. The API signatures match real
//! rayon's, so swapping the registry crate back in (see `vendor/README.md`)
//! requires no source changes at the call sites.
//!
//! Not implemented: parallel iterators, `join`, work stealing, the global
//! registry. Tasks are executed FIFO by whichever worker frees up first;
//! callers that need determinism must make task *outputs* order-independent
//! (disjoint output slices, ordered reduction after the scope), exactly as
//! they would with real rayon.
//!
//! # Example
//!
//! ```
//! use rayon::ThreadPoolBuilder;
//!
//! let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
//! let mut halves = [0u64, 0u64];
//! let (lo, hi) = halves.split_at_mut(1);
//! pool.scope(|s| {
//!     s.spawn(|_| lo[0] = (0..500u64).sum());
//!     s.spawn(|_| hi[0] = (500..1000u64).sum());
//! });
//! assert_eq!(halves[0] + halves[1], (0..1000u64).sum());
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// A heap-allocated unit of work with all borrows erased to `'static`.
///
/// Safety: jobs are only ever enqueued by [`Scope::spawn`], and
/// [`ThreadPool::scope`] blocks until every job of the scope has finished,
/// so the erased borrows never outlive the data they point to.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. This stand-in can only
/// fail if the OS refuses to spawn threads, which panics instead, so the
/// type exists purely for signature compatibility with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (all cores, or
    /// `RAYON_NUM_THREADS` when set — same convention as real rayon).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count. Zero keeps the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers immediately.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads > 0 {
            self.num_threads
        } else {
            default_num_threads()
        };
        Ok(ThreadPool::with_threads(threads))
    }
}

fn default_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// A pool of persistent worker threads executing scoped tasks.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    fn with_threads(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("rayon-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `op`, allowing it to spawn tasks that borrow from the enclosing
    /// stack frame; returns once `op` *and every spawned task* completed.
    ///
    /// `op` itself runs on the calling thread; spawned tasks run on the
    /// pool's workers. Do not call `scope` from inside a spawned task: with
    /// every worker potentially blocked on the inner scope there is nobody
    /// left to run its tasks.
    ///
    /// # Panics
    ///
    /// Panics if `op` or any spawned task panicked (after all tasks have
    /// been waited for).
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            shared: Arc::clone(&self.shared),
            _marker: PhantomData,
        };
        // Run the body, but wait for spawned tasks even if it panics: the
        // tasks borrow stack data that must stay alive until they finish.
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        scope.state.wait_all();
        match result {
            Ok(value) => {
                if scope.state.panicked.load(Ordering::Acquire) {
                    panic!("a task spawned in a thread-pool scope panicked");
                }
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn add_one(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

/// Handle for spawning tasks that may borrow data outliving the scope body
/// (mirrors `rayon::Scope`).
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    shared: Arc<Shared>,
    /// Invariant over `'scope`, like real rayon's `Scope`.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Enqueues `f` on the pool. The closure may borrow anything that lives
    /// at least as long as the scope body.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.add_one();
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.shared);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                state: Arc::clone(&state),
                shared,
                _marker: PhantomData,
            };
            if catch_unwind(AssertUnwindSafe(|| f(&scope))).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            state.finish_one();
        });
        // SAFETY: `ThreadPool::scope` blocks until `pending` drops to zero
        // before returning, so this job — and every `'scope` borrow inside
        // it — is guaranteed to finish executing while the borrowed stack
        // frame is still alive. Erasing the lifetime is therefore sound.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn builder_reports_thread_count() {
        assert_eq!(pool(3).current_num_threads(), 3);
    }

    #[test]
    fn scope_returns_body_value() {
        let p = pool(2);
        let x = p.scope(|_| 42);
        assert_eq!(x, 42);
    }

    #[test]
    fn tasks_write_disjoint_borrowed_slices() {
        let p = pool(4);
        let mut data = vec![0usize; 64];
        p.scope(|s| {
            for (i, chunk) in data.chunks_mut(8).enumerate() {
                s.spawn(move |_| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 8 + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn all_tasks_complete_before_scope_returns() {
        let p = pool(2);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn pool_survives_many_scopes() {
        let p = pool(2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut parts = [0u64; 4];
            p.scope(|s| {
                for (i, part) in parts.iter_mut().enumerate() {
                    s.spawn(move |_| *part = round + i as u64);
                }
            });
            total += parts.iter().sum::<u64>();
        }
        assert_eq!(total, (0..50u64).map(|r| 4 * r + 6).sum::<u64>());
    }

    #[test]
    fn single_thread_pool_runs_everything() {
        let p = pool(1);
        let counter = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..10 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let p = pool(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                let f = Arc::clone(&finished);
                s.spawn(move |_| {
                    f.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(result.is_err(), "scope must re-panic");
        assert_eq!(finished.load(Ordering::Relaxed), 1);
        // The pool stays usable after a panicked scope.
        let ok = p.scope(|_| true);
        assert!(ok);
    }

    #[test]
    fn drop_joins_workers() {
        let p = pool(4);
        drop(p); // must not hang
    }
}
