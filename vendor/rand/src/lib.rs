//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of rand's API that the code base uses:
//! [`rngs::SmallRng`] (xoshiro256++, the same generator family real rand
//! 0.8 uses on 64-bit targets), [`SeedableRng::seed_from_u64`] (SplitMix64
//! state expansion, matching real rand), the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic for a given seed, which is all the
//! simulators and tests here rely on; they are NOT bit-identical to real
//! rand's output for the same seed (rand makes no cross-version stream
//! guarantee either).

use std::ops::Range;

/// Core generator interface: sources of raw random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into generator state, the
/// same construction real rand 0.8 uses for `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the generator
    /// real rand 0.8 backs `SmallRng` with on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state — the checkpointing hook.
        ///
        /// **Stand-in extension**: real rand 0.8 does not expose
        /// generator state. Code that must survive a swap to the real
        /// crate serializes this behind its own feature seam; see
        /// vendor/README.md for the swap-back caveat.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`SmallRng::state`], bit-exactly.
        ///
        /// The all-zero state is a fixed point of xoshiro256++ and can
        /// never be produced by seeding or stepping, so it is rejected
        /// by substituting the SplitMix64-expanded zero seed (the same
        /// state `seed_from_u64(0)` produces).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Types that `Rng::gen` can produce (the stand-in's analogue of
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (matches real rand).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches real rand).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `Rng::gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = <f32 as Standard>::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = <f64 as Standard>::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (subset of rand 0.8's trait).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The degenerate all-zero state is rejected, not accepted as a
        // stuck generator.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }
}
