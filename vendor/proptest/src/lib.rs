//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest's surface this workspace uses —
//! `proptest! { #[test] fn f(x in strategy, ...) { ... } }` with numeric
//! range strategies, `proptest::collection::vec`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, and `ProptestConfig::with_cases` —
//! on top of a deterministic PRNG.
//!
//! Differences from real proptest, chosen for an offline CI:
//!
//! - **Deterministic seeding.** Every test function runs the same case
//!   sequence on every run (seeded from the test's name), so failures
//!   reproduce without persistence files.
//! - **No shrinking.** A failing case reports its inputs (via the
//!   panic message) but is not minimized.
//! - **Default cases = 64** (real proptest: 256), keeping the heavier
//!   simulator properties CI-friendly. Tests that need fewer cases still
//!   say so explicitly with `ProptestConfig::with_cases`.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is meaningful in the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert!`-family failure; the test fails.
    Fail(String),
}

/// The deterministic source strategies draw from.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

/// A source of values of one type — the stand-in's `Strategy`.
///
/// Sampling is direct (no value trees), which is what forgoing shrinking
/// buys: strategies here are just distributions.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    return start;
                }
                if end < <$t>::MAX {
                    rng.0.gen_range(start..end + 1)
                } else if start > <$t>::MIN {
                    // Shift down to keep the half-open range representable.
                    rng.0.gen_range(start - 1..end) + 1
                } else {
                    // Full domain: any raw word is uniform.
                    rng.0.next_u64() as $t
                }
            }
        }
    )*};
}

impl_strategy_for_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_range_inclusive_float {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Endpoint inclusion is measure-zero for floats; sample
                // the half-open range (matches practical proptest use).
                let (start, end) = (*self.start(), *self.end());
                if start == end { start } else { rng.0.gen_range(start..end) }
            }
        }
    )*};
}

impl_strategy_for_range_inclusive_float!(f32, f64);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `vec(element_strategy, length_range)` — a Vec with random length
    /// and independently sampled elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property: samples `cases` inputs and runs the body on each.
///
/// Used by the expansion of [`proptest!`]; not public API in real
/// proptest, so keep it out of the prelude.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(test_name);
    let mut ran = 0u32;
    let mut rejected = 0u32;
    // Cap on assume-rejections so a near-unsatisfiable precondition
    // fails loudly instead of spinning (mirrors real proptest).
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while ran < config.cases {
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: prop_assume! rejected {rejected} cases \
                         (only {ran}/{} accepted); precondition too strict",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed after {ran} passing cases: {msg}");
            }
        }
    }
}

/// The macro surface. Matches real proptest's grammar for the forms used
/// in this workspace: an optional `#![proptest_config(...)]` inner
/// attribute followed by `#[test]` functions whose parameters are
/// `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strategy), __rng),)+);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("[{}:{}] {}", file!(), line!(), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_cases("failing", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::Fail("forced".into()))
        });
    }
}
