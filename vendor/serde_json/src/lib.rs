//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text. Only the
//! serialization half is implemented — nothing in the workspace parses
//! JSON yet. See `vendor/README.md` for the swap-to-real-crates policy.

use serde::{Number, Serialize, Value};
use std::fmt;

/// Error type kept for API compatibility; serialization into a value
/// tree is infallible, so this is never constructed today.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => render_number(*n, out),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            render_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| {
                render(item, indent, d, o)
            })
        }
        Value::Obj(entries) => render_seq(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, val), d, o| {
                render_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                render(val, indent, d, o);
            },
        ),
    }
}

fn render_seq<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        each(item, depth + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn render_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        // JSON has no non-finite literals; mirror serde_json's strictness
        // loosely by emitting null instead of invalid tokens.
        Number::F(f) if !f.is_finite() => out.push_str("null"),
        Number::F(f) => out.push_str(&format!("{f:?}")),
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(Number::U(1))),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        let mut out = String::new();
        render(&v, None, 0, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Obj(vec![("x".into(), Value::Num(Number::F(0.5)))]);
        let mut out = String::new();
        render(&v, Some(2), 0, &mut out);
        assert_eq!(out, "{\n  \"x\": 0.5\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        render_string("a\"b\\c\nd", &mut out);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }
}
