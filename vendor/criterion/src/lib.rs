//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the `inerf_bench` suite uses —
//! [`Criterion`], [`Bencher::iter`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark is warmed up once, run `sample_size` times, and its
//! min/mean per-iteration time printed. Good enough to rank kernels and
//! keep `cargo bench --no-run` meaningful offline; swap in real
//! criterion for publishable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, threaded through every bench target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder-style, like real
    /// criterion's `Criterion::sample_size`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        name: impl AsRef<str>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(name.as_ref(), self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.as_ref().to_string(),
            sample_size,
        }
    }
}

/// A named group of related benchmarks (`fig6/hash_function/...`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        name: impl AsRef<str>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the routine.
///
/// The lifetime parameter is unused here but kept so signatures written
/// against real criterion (`Bencher<'_>`) compile unchanged.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    sample_size: usize,
    _measurement: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration (cold caches, lazy statics).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        _measurement: std::marker::PhantomData,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{name:<50} min {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group function running one or more bench targets, with an
/// optional explicit `Criterion` configuration (both real-criterion
/// forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_with_input("with_input", &21, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn harness_runs_targets() {
        benches();
    }
}
