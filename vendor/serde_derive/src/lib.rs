//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in without `syn`/`quote` (neither is available
//! offline). The input is parsed directly from the `proc_macro` token
//! stream, which is sufficient for the shapes used in this workspace:
//!
//! - structs with named fields,
//! - unit structs,
//! - enums with unit, tuple, and struct (named-field) variants.
//!
//! Unsupported shapes (generic types, tuple structs, unions) produce a
//! `compile_error!` naming the limitation rather than silently
//! miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of ADT the derive input is.
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Unit struct (`struct Marker;`).
    UnitStruct,
    /// Enum: each variant is `(name, VariantShape)`.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(v) => v,
        Err(msg) => {
            return format!("::core::compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        let body = serialize_body(&name, &shape);
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        )
    } else {
        format!("impl ::serde::Deserialize for {name} {{}}")
    };
    code.parse().unwrap()
}

fn serialize_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::UnitStruct => format!("::serde::Value::Str(::std::string::String::from({name:?}))"),
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                          ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Obj(::std::vec![\
                               (::std::string::String::from({v:?}), \
                                ::serde::Value::Arr(::std::vec![{vals}]))])",
                            binds = binds.join(", "),
                            vals = vals.join(", "),
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                      ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(::std::vec![\
                               (::std::string::String::from({v:?}), \
                                ::serde::Value::Obj(::std::vec![{}]))])",
                            entries.join(", "),
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(",\n"))
        }
    }
}

/// Parses a derive input down to (type name, shape).
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including desugared doc comments)
    // and visibility (`pub`, `pub(crate)`, ...).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // `(crate)` / `(super)` / ...
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde stand-in: expected struct/enum, got {other:?}"
            ))
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stand-in: expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in: generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Struct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
                "serde stand-in: tuple struct `{name}` is not supported by the vendored derive"
            )),
            other => Err(format!("serde stand-in: unexpected struct body {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("serde stand-in: unexpected enum body {other:?}")),
        },
        other => Err(format!("serde stand-in: unsupported item kind `{other}`")),
    }
}

/// Parses `{ attrs vis name: Type, ... }` into the list of field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = iter.next() else { break };
        let TokenTree::Ident(field) = tok else {
            return Err(format!("serde stand-in: expected field name, got {tok:?}"));
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde stand-in: expected `:`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // `<`/`>` are bare puncts in token trees, so generic-argument
        // commas (e.g. `HashMap<K, V>`) must not terminate the field.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Parses `{ attrs Name, attrs Name { .. }, attrs Name(..), ... }`.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(tok) = iter.next() else { break };
        let TokenTree::Ident(variant) = tok else {
            return Err(format!(
                "serde stand-in: expected variant name, got {tok:?}"
            ));
        };
        let name = variant.to_string();
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                iter.next();
                VariantShape::Tuple(count)
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        // Skip an optional explicit discriminant, then the trailing comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(variants)
}

/// Counts comma-separated entries at angle-depth 0 in a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut commas = 0;
    let mut saw_any = false;
    let mut trailing_comma = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        saw_any = true;
        trailing_comma = false;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    // N fields have N-1 separating commas, plus an optional trailing one.
    match (saw_any, trailing_comma) {
        (false, _) => 0,
        (true, true) => commas,
        (true, false) => commas + 1,
    }
}
