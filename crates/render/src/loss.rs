//! Training loss (Step (e) of the pipeline).

use inerf_geom::Vec3;

/// The value and gradient of an L2 photometric loss over a batch of rays.
#[derive(Debug, Clone, PartialEq)]
pub struct L2Loss {
    /// Mean squared error over rays and channels.
    pub value: f64,
    /// `∂L/∂Ĉ(r)` for every ray, in input order.
    pub d_predictions: Vec<Vec3>,
}

/// Computes `L = mean_r ||Ĉ(r) − C(r)||²` and its per-ray gradient.
///
/// The mean is over rays (each ray contributes its squared RGB distance),
/// matching the paper's loss in Sec. II-A up to the constant batch
/// normalization, which is folded into the gradient.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn l2_loss(predictions: &[Vec3], targets: &[Vec3]) -> L2Loss {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    assert!(
        !predictions.is_empty(),
        "loss over an empty batch is undefined"
    );
    let n = predictions.len() as f64;
    let mut value = 0.0f64;
    let mut d = Vec::with_capacity(predictions.len());
    for (p, t) in predictions.iter().zip(targets) {
        let e = *p - *t;
        value += e.length_squared() as f64;
        d.push(e * (2.0 / n as f32));
    }
    L2Loss {
        value: value / n,
        d_predictions: d,
    }
}

/// Allocation-free variant of [`l2_loss`]: writes the per-ray gradient into
/// a caller-pooled buffer (cleared and refilled, so its capacity is reused
/// across training iterations) and returns the loss value.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn l2_loss_into(predictions: &[Vec3], targets: &[Vec3], d_predictions: &mut Vec<Vec3>) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    assert!(
        !predictions.is_empty(),
        "loss over an empty batch is undefined"
    );
    let n = predictions.len() as f64;
    let mut value = 0.0f64;
    d_predictions.clear();
    for (p, t) in predictions.iter().zip(targets) {
        let e = *p - *t;
        value += e.length_squared() as f64;
        d_predictions.push(e * (2.0 / n as f32));
    }
    value / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_for_identical_batches() {
        let batch = vec![Vec3::new(0.1, 0.2, 0.3); 5];
        let l = l2_loss(&batch, &batch);
        assert_eq!(l.value, 0.0);
        assert!(l.d_predictions.iter().all(|g| *g == Vec3::ZERO));
    }

    #[test]
    fn known_value_and_gradient() {
        let pred = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO];
        let tgt = vec![Vec3::ZERO, Vec3::ZERO];
        let l = l2_loss(&pred, &tgt);
        assert!((l.value - 0.5).abs() < 1e-9); // (1 + 0) / 2
        assert_eq!(l.d_predictions[0], Vec3::new(1.0, 0.0, 0.0)); // 2*e/N = 2*1/2
        assert_eq!(l.d_predictions[1], Vec3::ZERO);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let pred = vec![Vec3::new(0.3, -0.2, 0.9), Vec3::new(0.5, 0.5, 0.1)];
        let tgt = vec![Vec3::new(0.1, 0.1, 0.8), Vec3::new(0.9, 0.2, 0.0)];
        let l = l2_loss(&pred, &tgt);
        let eps = 1e-3f32;
        let mut p2 = pred.clone();
        p2[1].y += eps;
        let up = l2_loss(&p2, &tgt).value;
        p2[1].y -= 2.0 * eps;
        let down = l2_loss(&p2, &tgt).value;
        let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
        assert!((numeric - l.d_predictions[1].y).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = l2_loss(&[], &[]);
    }
}
