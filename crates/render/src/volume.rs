//! The volume-rendering composite and its analytic gradient.

use inerf_geom::Vec3;
use inerf_simd::f32x8;
use serde::{Deserialize, Serialize};

/// One queried sample along a ray: the model's density and color outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Predicted density `σ_i ≥ 0`.
    pub sigma: f32,
    /// Predicted RGB color `c_i`.
    pub color: Vec3,
}

/// The result of compositing one ray.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeOutput {
    /// The rendered pixel color `Ĉ(r)`.
    pub color: Vec3,
    /// Per-sample blend weights `w_i = T_i α_i` (sum ≤ 1).
    pub weights: Vec<f32>,
    /// Transmittance *after* each sample: `T_{i+1} = Π_{j ≤ i} (1 - α_j)`.
    pub transmittance_after: Vec<f32>,
    /// Residual transmittance past the last sample (background weight).
    pub background_weight: f32,
}

/// Composites samples along a ray (paper Eq. 1).
///
/// `dts[i]` is the segment length `δ_i = t_{i+1} - t_i` attributed to sample
/// `i`. Negative densities are clamped to zero (the density head normally
/// guarantees non-negativity; the clamp keeps the renderer total).
///
/// # Panics
///
/// Panics if `samples` and `dts` differ in length.
pub fn composite(samples: &[SamplePoint], dts: &[f32]) -> CompositeOutput {
    assert_eq!(samples.len(), dts.len(), "samples/dts length mismatch");
    composite_with(samples, |i| dts[i])
}

/// [`composite`] for the common uniform-step case (`δ_i = dt` for all
/// samples), avoiding the per-ray `dts` allocation.
pub fn composite_uniform(samples: &[SamplePoint], dt: f32) -> CompositeOutput {
    composite_with(samples, |_| dt)
}

fn composite_with(samples: &[SamplePoint], dt_at: impl Fn(usize) -> f32) -> CompositeOutput {
    let n = samples.len();
    let mut weights = vec![0.0; n];
    let mut trans_after = vec![0.0; n];
    let (color, background_weight) = composite_core(
        n,
        |i| (samples[i].sigma, samples[i].color),
        dt_at,
        &mut weights,
        &mut trans_after,
    );
    CompositeOutput {
        color,
        weights,
        transmittance_after: trans_after,
        background_weight,
    }
}

/// The forward recurrence shared by every composite entry point. Writes the
/// per-sample blend weights and post-sample transmittances into the caller's
/// buffers and returns `(ray color, background weight)`.
#[inline]
fn composite_core(
    n: usize,
    sample_at: impl Fn(usize) -> (f32, Vec3),
    dt_at: impl Fn(usize) -> f32,
    weights: &mut [f32],
    trans_after: &mut [f32],
) -> (Vec3, f32) {
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0f32;
    for i in 0..n {
        let (sigma, c) = sample_at(i);
        let sigma = sigma.max(0.0);
        let alpha = 1.0 - (-sigma * dt_at(i)).exp();
        let w = transmittance * alpha;
        color += c * w;
        transmittance *= 1.0 - alpha;
        weights[i] = w;
        trans_after[i] = transmittance;
    }
    (color, transmittance)
}

/// Per-sample gradients of the composite.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeGradients {
    /// `∂L/∂σ_i`.
    pub d_sigma: Vec<f32>,
    /// `∂L/∂c_i`.
    pub d_color: Vec<Vec3>,
}

/// Backward pass of [`composite`]: given `d_color_out = ∂L/∂Ĉ`, returns the
/// gradients w.r.t. every sample's density and color.
///
/// Derivation: with `w_i = T_i α_i` and `T_{i+1} = T_i (1 - α_i)`,
///
/// ```text
/// ∂Ĉ/∂c_i = w_i
/// ∂Ĉ/∂σ_i = δ_i ( T_{i+1} c_i  −  Σ_{j>i} w_j c_j )
/// ```
///
/// The suffix sum is accumulated in a single reverse sweep, so the whole
/// backward is `O(n)`.
///
/// # Panics
///
/// Panics if the argument lengths disagree with `out`.
pub fn composite_backward(
    samples: &[SamplePoint],
    dts: &[f32],
    out: &CompositeOutput,
    d_color_out: Vec3,
) -> CompositeGradients {
    assert_eq!(dts.len(), samples.len(), "samples/dts length mismatch");
    composite_backward_with(samples, |i| dts[i], out, d_color_out)
}

/// [`composite_backward`] for a uniform step size, pairing with
/// [`composite_uniform`].
pub fn composite_backward_uniform(
    samples: &[SamplePoint],
    dt: f32,
    out: &CompositeOutput,
    d_color_out: Vec3,
) -> CompositeGradients {
    composite_backward_with(samples, |_| dt, out, d_color_out)
}

fn composite_backward_with(
    samples: &[SamplePoint],
    dt_at: impl Fn(usize) -> f32,
    out: &CompositeOutput,
    d_color_out: Vec3,
) -> CompositeGradients {
    let n = samples.len();
    assert_eq!(
        out.weights.len(),
        n,
        "composite output does not match samples"
    );
    let mut d_sigma = vec![0.0f32; n];
    let mut d_color = vec![Vec3::ZERO; n];
    composite_backward_core(
        n,
        |i| (samples[i].sigma, samples[i].color),
        dt_at,
        &out.weights,
        &out.transmittance_after,
        d_color_out,
        &mut d_sigma,
        &mut d_color,
    );
    CompositeGradients { d_sigma, d_color }
}

/// The backward sweep shared by every entry point: a single reverse pass
/// accumulating the suffix sum of `w_j c_j`, writing `∂L/∂σ_i` and
/// `∂L/∂c_i` into the caller's buffers.
#[inline]
#[allow(clippy::too_many_arguments)]
fn composite_backward_core(
    n: usize,
    sample_at: impl Fn(usize) -> (f32, Vec3),
    dt_at: impl Fn(usize) -> f32,
    weights: &[f32],
    trans_after: &[f32],
    d_color_out: Vec3,
    d_sigma: &mut [f32],
    d_color: &mut [Vec3],
) {
    // Suffix sum of w_j * c_j for j > i, per channel.
    let mut suffix = Vec3::ZERO;
    for i in (0..n).rev() {
        let (sigma, c) = sample_at(i);
        let w = weights[i];
        d_color[i] = d_color_out * w;
        let g = c * trans_after[i] - suffix;
        // The clamp σ ← max(σ, 0) has zero slope for negative inputs.
        d_sigma[i] = if sigma < 0.0 {
            0.0
        } else {
            dt_at(i) * d_color_out.dot(g)
        };
        suffix += c * w;
    }
}

/// One ray's slice of a flat structure-of-arrays sample batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaySpan {
    /// Index of the ray's first sample in the flat arrays.
    pub start: usize,
    /// Number of samples on the ray.
    pub len: usize,
    /// Uniform step size `δ` of the ray (ignored for a given sample when
    /// the batch carries per-sample `dts`).
    pub dt: f32,
}

/// A batch of rays in structure-of-arrays layout: flat per-sample density
/// and color arrays, plus one [`RaySpan`] per ray. `sample_base` rebases the
/// spans' absolute `start` indices when a caller processes a chunk of a
/// larger batch: the *output* buffers passed to [`composite_spans`] /
/// [`composite_backward_spans`] cover samples `sample_base..` only, while
/// `sigmas`/`colors`/`dts` always cover the whole batch.
#[derive(Debug, Clone, Copy)]
pub struct RayBatch<'a> {
    /// Per-sample densities for the whole batch.
    pub sigmas: &'a [f32],
    /// Per-sample colors for the whole batch.
    pub colors: &'a [Vec3],
    /// Per-ray sample spans (absolute indices into the flat arrays).
    pub spans: &'a [RaySpan],
    /// Optional per-sample step sizes (whole batch); when `Some`, overrides
    /// the spans' uniform `dt` — the occupancy-filtered path.
    pub dts: Option<&'a [f32]>,
    /// First sample index covered by the per-sample *output* buffers.
    pub sample_base: usize,
}

impl RayBatch<'_> {
    /// Total samples covered by `spans`.
    pub fn sample_count(&self) -> usize {
        self.spans.iter().map(|s| s.len).sum()
    }
}

/// Composites every span of a [`RayBatch`], writing per-ray results into
/// `ray_colors`/`backgrounds` and per-sample blend weights/transmittances
/// into `weights`/`trans_after` (indexed relative to `batch.sample_base`).
///
/// Each span is composited with exactly the [`composite`] recurrence, so
/// per-ray results are bitwise-identical to the scalar reference. Spans are
/// independent: disjoint chunks of a batch can run concurrently.
///
/// # Panics
///
/// Panics if the output buffer lengths disagree with `batch.spans`.
pub fn composite_spans(
    batch: &RayBatch<'_>,
    ray_colors: &mut [Vec3],
    backgrounds: &mut [f32],
    weights: &mut [f32],
    trans_after: &mut [f32],
) {
    let rays = batch.spans.len();
    assert_eq!(ray_colors.len(), rays, "ray color buffer mismatch");
    assert_eq!(backgrounds.len(), rays, "background buffer mismatch");
    let total = batch.sample_count();
    assert_eq!(weights.len(), total, "weight buffer mismatch");
    assert_eq!(trans_after.len(), total, "transmittance buffer mismatch");
    inerf_simd::vectorize(|| {
        // Runs of equal-length spans (the common case: every ray in a
        // training chunk carries `samples_per_ray` samples) go through the
        // wide lane-per-ray kernel, up to 8 rays at a time; ragged
        // leftovers fall back to the scalar recurrence.
        let mut ri = 0;
        while ri < rays {
            let len = batch.spans[ri].len;
            let mut run = 1;
            while ri + run < rays && batch.spans[ri + run].len == len {
                run += 1;
            }
            let mut g = 0;
            while g < run {
                let group = (run - g).min(8);
                if group >= 2 {
                    composite_group_wide(
                        batch,
                        &batch.spans[ri + g..ri + g + group],
                        &mut ray_colors[ri + g..ri + g + group],
                        &mut backgrounds[ri + g..ri + g + group],
                        weights,
                        trans_after,
                    );
                } else {
                    let span = &batch.spans[ri + g];
                    let local = span.start - batch.sample_base;
                    let (color, background) = composite_core(
                        span.len,
                        |i| (batch.sigmas[span.start + i], batch.colors[span.start + i]),
                        |i| batch.dts.map_or(span.dt, |d| d[span.start + i]),
                        &mut weights[local..local + span.len],
                        &mut trans_after[local..local + span.len],
                    );
                    ray_colors[ri + g] = color;
                    backgrounds[ri + g] = background;
                }
                g += group;
            }
            ri += run;
        }
    });
}

/// Wide composite kernel: one [`f32x8`] lane per ray, for 2–8 equal-length
/// spans, sweeping samples in lockstep. Every lane executes exactly the
/// [`composite_core`] recurrence — the density clamp and negation happen
/// scalar at gather time (the very ops the scalar path runs), `exp` is
/// lane-serial, and the blend arithmetic is lane-wise two-rounding — so
/// each ray's results are bitwise-identical to the scalar reference.
fn composite_group_wide(
    batch: &RayBatch<'_>,
    spans: &[RaySpan],
    ray_colors: &mut [Vec3],
    backgrounds: &mut [f32],
    weights: &mut [f32],
    trans_after: &mut [f32],
) {
    let group = spans.len();
    let len = spans[0].len;
    debug_assert!((2..=8).contains(&group));
    let mut dt_arr = [0.0f32; 8];
    if batch.dts.is_none() {
        for (r, span) in spans.iter().enumerate() {
            dt_arr[r] = span.dt;
        }
    }
    let mut dt_v = f32x8::from_array(dt_arr);
    let one = f32x8::splat(1.0);
    let mut trans = one;
    let mut col_x = f32x8::zero();
    let mut col_y = f32x8::zero();
    let mut col_z = f32x8::zero();
    for i in 0..len {
        let mut neg_sig = [0.0f32; 8];
        let mut cx = [0.0f32; 8];
        let mut cy = [0.0f32; 8];
        let mut cz = [0.0f32; 8];
        for (r, span) in spans.iter().enumerate() {
            let idx = span.start + i;
            // Scalar clamp-and-negate, exactly as the scalar recurrence
            // computes `(-sigma.max(0.0)) * dt`.
            neg_sig[r] = -batch.sigmas[idx].max(0.0);
            let c = batch.colors[idx];
            cx[r] = c.x;
            cy[r] = c.y;
            cz[r] = c.z;
        }
        if let Some(dts) = batch.dts {
            for (r, span) in spans.iter().enumerate() {
                dt_arr[r] = dts[span.start + i];
            }
            dt_v = f32x8::from_array(dt_arr);
        }
        let alpha = one - (f32x8::from_array(neg_sig) * dt_v).exp_lanes();
        let w = trans * alpha;
        col_x = col_x.madd(f32x8::from_array(cx), w);
        col_y = col_y.madd(f32x8::from_array(cy), w);
        col_z = col_z.madd(f32x8::from_array(cz), w);
        trans *= one - alpha;
        let w_arr = w.to_array();
        let t_arr = trans.to_array();
        for (r, span) in spans.iter().enumerate() {
            let local = span.start - batch.sample_base + i;
            weights[local] = w_arr[r];
            trans_after[local] = t_arr[r];
        }
    }
    for r in 0..group {
        ray_colors[r] = Vec3::new(col_x.lane(r), col_y.lane(r), col_z.lane(r));
        backgrounds[r] = trans.lane(r);
    }
}

/// Backward pass of [`composite_spans`]: given the per-ray loss gradients
/// `d_ray_colors` and the forward pass's `weights`/`trans_after`, writes
/// `∂L/∂σ` and `∂L/∂c` for every sample (buffers indexed relative to
/// `batch.sample_base`).
///
/// # Panics
///
/// Panics if any buffer length disagrees with `batch.spans`.
pub fn composite_backward_spans(
    batch: &RayBatch<'_>,
    weights: &[f32],
    trans_after: &[f32],
    d_ray_colors: &[Vec3],
    d_sigmas: &mut [f32],
    d_colors: &mut [Vec3],
) {
    let rays = batch.spans.len();
    assert_eq!(d_ray_colors.len(), rays, "ray gradient buffer mismatch");
    let total = batch.sample_count();
    assert_eq!(weights.len(), total, "weight buffer mismatch");
    assert_eq!(trans_after.len(), total, "transmittance buffer mismatch");
    assert_eq!(d_sigmas.len(), total, "sigma gradient buffer mismatch");
    assert_eq!(d_colors.len(), total, "color gradient buffer mismatch");
    // The reverse sweep is a sequential suffix recurrence per ray, so it
    // stays scalar per span; the vectorize frame still lets the compiler
    // use the wider instruction set for the element-independent pieces
    // without touching evaluation order.
    inerf_simd::vectorize(|| {
        for (ri, span) in batch.spans.iter().enumerate() {
            let local = span.start - batch.sample_base;
            composite_backward_core(
                span.len,
                |i| (batch.sigmas[span.start + i], batch.colors[span.start + i]),
                |i| batch.dts.map_or(span.dt, |d| d[span.start + i]),
                &weights[local..local + span.len],
                &trans_after[local..local + span.len],
                d_ray_colors[ri],
                &mut d_sigmas[local..local + span.len],
                &mut d_colors[local..local + span.len],
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sp(sigma: f32, r: f32, g: f32, b: f32) -> SamplePoint {
        SamplePoint {
            sigma,
            color: Vec3::new(r, g, b),
        }
    }

    #[test]
    fn empty_ray_is_black_with_full_background() {
        let out = composite(&[], &[]);
        assert_eq!(out.color, Vec3::ZERO);
        assert_eq!(out.background_weight, 1.0);
    }

    #[test]
    fn opaque_first_sample_blocks_rest() {
        let samples = [sp(1e5, 1.0, 0.0, 0.0), sp(1e5, 0.0, 1.0, 0.0)];
        let out = composite(&samples, &[0.1, 0.1]);
        assert!(out.color.x > 0.999);
        assert!(out.color.y < 1e-4);
        assert!(out.background_weight < 1e-6);
    }

    #[test]
    fn zero_density_passes_through() {
        let samples = [sp(0.0, 1.0, 1.0, 1.0); 4];
        let out = composite(&samples, &[0.25; 4]);
        assert_eq!(out.color, Vec3::ZERO);
        assert!((out.background_weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matches_closed_form_for_uniform_medium() {
        // Uniform σ over total length D: C = c (1 - e^{-σD}).
        let sigma = 2.0f32;
        let n = 200;
        let d = 1.0f32;
        let dt = d / n as f32;
        let samples: Vec<SamplePoint> = (0..n).map(|_| sp(sigma, 0.8, 0.4, 0.2)).collect();
        let dts = vec![dt; n];
        let out = composite(&samples, &dts);
        let expect = 1.0 - (-sigma * d).exp();
        assert!((out.color.x - 0.8 * expect).abs() < 1e-3);
        assert!((out.color.y - 0.4 * expect).abs() < 1e-3);
        assert!((out.background_weight - (-sigma * d).exp()).abs() < 1e-3);
    }

    #[test]
    fn weights_sum_with_background_to_one() {
        let samples = [
            sp(0.5, 1.0, 0.0, 0.0),
            sp(3.0, 0.0, 1.0, 0.0),
            sp(1.0, 0.0, 0.0, 1.0),
        ];
        let out = composite(&samples, &[0.3, 0.5, 0.2]);
        let total: f32 = out.weights.iter().sum::<f32>() + out.background_weight;
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transmittance_is_monotone_nonincreasing() {
        let mut rng = SmallRng::seed_from_u64(4);
        let samples: Vec<SamplePoint> = (0..32)
            .map(|_| sp(rng.gen_range(0.0..5.0), 0.5, 0.5, 0.5))
            .collect();
        let dts = vec![0.05f32; 32];
        let out = composite(&samples, &dts);
        let mut prev = 1.0f32;
        for &t in &out.transmittance_after {
            assert!(t <= prev + 1e-7);
            prev = t;
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 8;
        let samples: Vec<SamplePoint> = (0..n)
            .map(|_| sp(rng.gen_range(0.1..4.0), rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let dts: Vec<f32> = (0..n).map(|_| rng.gen_range(0.05..0.2)).collect();
        let d_out = Vec3::new(0.7, -1.3, 0.4);
        let out = composite(&samples, &dts);
        let grads = composite_backward(&samples, &dts, &out, d_out);

        let loss = |s: &[SamplePoint]| -> f32 {
            let o = composite(s, &dts);
            d_out.dot(o.color)
        };
        let eps = 1e-3;
        for i in 0..n {
            // Sigma gradient.
            let mut pert = samples.clone();
            pert[i].sigma += eps;
            let up = loss(&pert);
            pert[i].sigma -= 2.0 * eps;
            let down = loss(&pert);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.d_sigma[i]).abs() < 2e-2,
                "sigma {i}: numeric {numeric} vs analytic {}",
                grads.d_sigma[i]
            );
            // Color gradient (x channel).
            let mut pert = samples.clone();
            pert[i].color.x += eps;
            let up = loss(&pert);
            pert[i].color.x -= 2.0 * eps;
            let down = loss(&pert);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.d_color[i].x).abs() < 2e-2,
                "color {i}: numeric {numeric} vs analytic {}",
                grads.d_color[i].x
            );
        }
    }

    #[test]
    fn negative_density_clamped_with_zero_gradient() {
        let samples = [sp(-1.0, 1.0, 1.0, 1.0), sp(2.0, 0.5, 0.5, 0.5)];
        let dts = [0.1, 0.1];
        let out = composite(&samples, &dts);
        assert_eq!(out.weights[0], 0.0);
        let grads = composite_backward(&samples, &dts, &out, Vec3::ONE);
        assert_eq!(grads.d_sigma[0], 0.0);
        assert!(grads.d_sigma[1].abs() > 0.0);
    }

    #[test]
    fn uniform_variant_matches_vec_dts() {
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<SamplePoint> = (0..12)
            .map(|_| sp(rng.gen_range(0.0..4.0), rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let dt = 0.08f32;
        let reference = composite(&samples, &vec![dt; samples.len()]);
        let uniform = composite_uniform(&samples, dt);
        assert_eq!(reference, uniform);
        let d_out = Vec3::new(0.3, -0.2, 1.1);
        let g_ref = composite_backward(&samples, &vec![dt; samples.len()], &reference, d_out);
        let g_uni = composite_backward_uniform(&samples, dt, &uniform, d_out);
        assert_eq!(g_ref, g_uni);
    }

    #[test]
    fn spans_match_per_ray_composites() {
        // Three rays of different lengths in one flat SoA batch.
        let mut rng = SmallRng::seed_from_u64(19);
        let lens = [5usize, 1, 9];
        let n: usize = lens.iter().sum();
        let sigmas: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.5..5.0)).collect();
        let colors: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let mut spans = Vec::new();
        let mut start = 0;
        for (ri, &len) in lens.iter().enumerate() {
            spans.push(RaySpan {
                start,
                len,
                dt: 0.05 + 0.01 * ri as f32,
            });
            start += len;
        }
        let batch = RayBatch {
            sigmas: &sigmas,
            colors: &colors,
            spans: &spans,
            dts: None,
            sample_base: 0,
        };
        let mut ray_colors = vec![Vec3::ZERO; 3];
        let mut backgrounds = vec![0.0; 3];
        let mut weights = vec![0.0; n];
        let mut trans = vec![0.0; n];
        composite_spans(
            &batch,
            &mut ray_colors,
            &mut backgrounds,
            &mut weights,
            &mut trans,
        );

        let d_rays = [
            Vec3::ONE,
            Vec3::new(0.5, -1.0, 0.2),
            Vec3::new(-0.3, 0.7, 0.9),
        ];
        let mut d_sigmas = vec![0.0; n];
        let mut d_colors = vec![Vec3::ZERO; n];
        composite_backward_spans(
            &batch,
            &weights,
            &trans,
            &d_rays,
            &mut d_sigmas,
            &mut d_colors,
        );

        for (ri, span) in spans.iter().enumerate() {
            let samples: Vec<SamplePoint> = (span.start..span.start + span.len)
                .map(|i| SamplePoint {
                    sigma: sigmas[i],
                    color: colors[i],
                })
                .collect();
            let reference = composite_uniform(&samples, span.dt);
            assert_eq!(ray_colors[ri], reference.color, "ray {ri} color");
            assert_eq!(backgrounds[ri], reference.background_weight);
            assert_eq!(
                &weights[span.start..span.start + span.len],
                reference.weights.as_slice()
            );
            let g = composite_backward_uniform(&samples, span.dt, &reference, d_rays[ri]);
            assert_eq!(
                &d_sigmas[span.start..span.start + span.len],
                g.d_sigma.as_slice()
            );
            assert_eq!(
                &d_colors[span.start..span.start + span.len],
                g.d_color.as_slice()
            );
        }
    }

    #[test]
    fn spans_respect_sample_base_and_per_sample_dts() {
        // A chunked caller passes full input arrays but rebased outputs.
        let sigmas = [1.0f32, 2.0, 3.0, 0.5, 0.7];
        let colors = [Vec3::splat(0.2); 5];
        let dts = [0.1f32, 0.2, 0.1, 0.3, 0.2];
        // Chunk covering only the second ray (samples 2..5).
        let spans = [RaySpan {
            start: 2,
            len: 3,
            dt: f32::NAN, // must be ignored: per-sample dts take precedence
        }];
        let batch = RayBatch {
            sigmas: &sigmas,
            colors: &colors,
            spans: &spans,
            dts: Some(&dts),
            sample_base: 2,
        };
        let mut ray_colors = [Vec3::ZERO];
        let mut backgrounds = [0.0];
        let mut weights = [0.0; 3];
        let mut trans = [0.0; 3];
        composite_spans(
            &batch,
            &mut ray_colors,
            &mut backgrounds,
            &mut weights,
            &mut trans,
        );
        let samples: Vec<SamplePoint> = (2..5)
            .map(|i| SamplePoint {
                sigma: sigmas[i],
                color: colors[i],
            })
            .collect();
        let reference = composite(&samples, &dts[2..5]);
        assert_eq!(ray_colors[0], reference.color);
        assert_eq!(weights.as_slice(), reference.weights.as_slice());
    }

    #[test]
    fn wide_span_groups_match_per_ray_composites_bitwise() {
        // 11 equal-length rays exercise the 8-lane wide kernel (one full
        // group of 8 plus a leftover group of 3), on every available
        // backend; each ray must be bitwise-identical to the per-ray
        // scalar reference.
        let mut rng = SmallRng::seed_from_u64(77);
        let rays = 11usize;
        let len = 7usize;
        let n = rays * len;
        let sigmas: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.5..5.0)).collect();
        let colors: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let spans: Vec<RaySpan> = (0..rays)
            .map(|ri| RaySpan {
                start: ri * len,
                len,
                dt: 0.03 + 0.007 * ri as f32,
            })
            .collect();
        let batch = RayBatch {
            sigmas: &sigmas,
            colors: &colors,
            spans: &spans,
            dts: None,
            sample_base: 0,
        };
        for backend in inerf_simd::available_backends() {
            let prev = inerf_simd::force_backend(backend);
            let mut ray_colors = vec![Vec3::ZERO; rays];
            let mut backgrounds = vec![0.0; rays];
            let mut weights = vec![0.0; n];
            let mut trans = vec![0.0; n];
            composite_spans(
                &batch,
                &mut ray_colors,
                &mut backgrounds,
                &mut weights,
                &mut trans,
            );
            inerf_simd::force_backend(prev);
            for (ri, span) in spans.iter().enumerate() {
                let samples: Vec<SamplePoint> = (span.start..span.start + span.len)
                    .map(|i| SamplePoint {
                        sigma: sigmas[i],
                        color: colors[i],
                    })
                    .collect();
                let reference = composite_uniform(&samples, span.dt);
                let name = backend.name();
                assert_eq!(ray_colors[ri], reference.color, "{name} ray {ri} color");
                assert_eq!(
                    backgrounds[ri].to_bits(),
                    reference.background_weight.to_bits(),
                    "{name} ray {ri} background"
                );
                for i in 0..span.len {
                    assert_eq!(
                        weights[span.start + i].to_bits(),
                        reference.weights[i].to_bits(),
                        "{name} ray {ri} weight {i}"
                    );
                    assert_eq!(
                        trans[span.start + i].to_bits(),
                        reference.transmittance_after[i].to_bits(),
                        "{name} ray {ri} transmittance {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_kernel_honors_sample_base_and_per_sample_dts() {
        // Four equal-length rays (wide group) in a rebased chunk with
        // per-sample dts; span.dt must be ignored.
        let mut rng = SmallRng::seed_from_u64(41);
        let rays = 4usize;
        let len = 5usize;
        let base = 6usize; // samples before this chunk
        let n = base + rays * len;
        let sigmas: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
        let colors: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let dts: Vec<f32> = (0..n).map(|_| rng.gen_range(0.01..0.3)).collect();
        let spans: Vec<RaySpan> = (0..rays)
            .map(|ri| RaySpan {
                start: base + ri * len,
                len,
                dt: f32::NAN,
            })
            .collect();
        let batch = RayBatch {
            sigmas: &sigmas,
            colors: &colors,
            spans: &spans,
            dts: Some(&dts),
            sample_base: base,
        };
        let mut ray_colors = vec![Vec3::ZERO; rays];
        let mut backgrounds = vec![0.0; rays];
        let mut weights = vec![0.0; rays * len];
        let mut trans = vec![0.0; rays * len];
        composite_spans(
            &batch,
            &mut ray_colors,
            &mut backgrounds,
            &mut weights,
            &mut trans,
        );
        for (ri, span) in spans.iter().enumerate() {
            let samples: Vec<SamplePoint> = (span.start..span.start + span.len)
                .map(|i| SamplePoint {
                    sigma: sigmas[i],
                    color: colors[i],
                })
                .collect();
            let reference = composite(&samples, &dts[span.start..span.start + span.len]);
            assert_eq!(ray_colors[ri], reference.color, "ray {ri} color");
            let local = span.start - base;
            assert_eq!(
                &weights[local..local + span.len],
                reference.weights.as_slice()
            );
            assert_eq!(
                &trans[local..local + span.len],
                reference.transmittance_after.as_slice()
            );
        }
    }

    proptest! {
        #[test]
        fn color_stays_in_convex_hull(
            seed in 0u64..500, n in 1usize..24
        ) {
            // With colors in [0,1]^3 the composite is a sub-convex
            // combination, so output channels stay in [0,1].
            let mut rng = SmallRng::seed_from_u64(seed);
            let samples: Vec<SamplePoint> = (0..n)
                .map(|_| sp(rng.gen_range(0.0..10.0), rng.gen(), rng.gen(), rng.gen()))
                .collect();
            let dts: Vec<f32> = (0..n).map(|_| rng.gen_range(0.01..0.3)).collect();
            let out = composite(&samples, &dts);
            for ch in [out.color.x, out.color.y, out.color.z] {
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(&ch));
            }
            let wsum: f32 = out.weights.iter().sum();
            prop_assert!(wsum <= 1.0 + 1e-5);
            prop_assert!(out.background_weight >= -1e-6);
        }
    }
}
