//! The volume-rendering composite and its analytic gradient.

use inerf_geom::Vec3;
use serde::{Deserialize, Serialize};

/// One queried sample along a ray: the model's density and color outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Predicted density `σ_i ≥ 0`.
    pub sigma: f32,
    /// Predicted RGB color `c_i`.
    pub color: Vec3,
}

/// The result of compositing one ray.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeOutput {
    /// The rendered pixel color `Ĉ(r)`.
    pub color: Vec3,
    /// Per-sample blend weights `w_i = T_i α_i` (sum ≤ 1).
    pub weights: Vec<f32>,
    /// Transmittance *after* each sample: `T_{i+1} = Π_{j ≤ i} (1 - α_j)`.
    pub transmittance_after: Vec<f32>,
    /// Residual transmittance past the last sample (background weight).
    pub background_weight: f32,
}

/// Composites samples along a ray (paper Eq. 1).
///
/// `dts[i]` is the segment length `δ_i = t_{i+1} - t_i` attributed to sample
/// `i`. Negative densities are clamped to zero (the density head normally
/// guarantees non-negativity; the clamp keeps the renderer total).
///
/// # Panics
///
/// Panics if `samples` and `dts` differ in length.
pub fn composite(samples: &[SamplePoint], dts: &[f32]) -> CompositeOutput {
    assert_eq!(samples.len(), dts.len(), "samples/dts length mismatch");
    let n = samples.len();
    let mut color = Vec3::ZERO;
    let mut transmittance = 1.0f32;
    let mut weights = Vec::with_capacity(n);
    let mut trans_after = Vec::with_capacity(n);
    for (s, &dt) in samples.iter().zip(dts) {
        let sigma = s.sigma.max(0.0);
        let alpha = 1.0 - (-sigma * dt).exp();
        let w = transmittance * alpha;
        color += s.color * w;
        transmittance *= 1.0 - alpha;
        weights.push(w);
        trans_after.push(transmittance);
    }
    CompositeOutput {
        color,
        weights,
        transmittance_after: trans_after,
        background_weight: transmittance,
    }
}

/// Per-sample gradients of the composite.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeGradients {
    /// `∂L/∂σ_i`.
    pub d_sigma: Vec<f32>,
    /// `∂L/∂c_i`.
    pub d_color: Vec<Vec3>,
}

/// Backward pass of [`composite`]: given `d_color_out = ∂L/∂Ĉ`, returns the
/// gradients w.r.t. every sample's density and color.
///
/// Derivation: with `w_i = T_i α_i` and `T_{i+1} = T_i (1 - α_i)`,
///
/// ```text
/// ∂Ĉ/∂c_i = w_i
/// ∂Ĉ/∂σ_i = δ_i ( T_{i+1} c_i  −  Σ_{j>i} w_j c_j )
/// ```
///
/// The suffix sum is accumulated in a single reverse sweep, so the whole
/// backward is `O(n)`.
///
/// # Panics
///
/// Panics if the argument lengths disagree with `out`.
pub fn composite_backward(
    samples: &[SamplePoint],
    dts: &[f32],
    out: &CompositeOutput,
    d_color_out: Vec3,
) -> CompositeGradients {
    let n = samples.len();
    assert_eq!(dts.len(), n, "samples/dts length mismatch");
    assert_eq!(
        out.weights.len(),
        n,
        "composite output does not match samples"
    );
    let mut d_sigma = vec![0.0f32; n];
    let mut d_color = vec![Vec3::ZERO; n];
    // Suffix sum of w_j * c_j for j > i, per channel.
    let mut suffix = Vec3::ZERO;
    for i in (0..n).rev() {
        let w = out.weights[i];
        d_color[i] = d_color_out * w;
        let t_after = out.transmittance_after[i];
        let g = samples[i].color * t_after - suffix;
        // The clamp σ ← max(σ, 0) has zero slope for negative inputs.
        d_sigma[i] = if samples[i].sigma < 0.0 {
            0.0
        } else {
            dts[i] * d_color_out.dot(g)
        };
        suffix += samples[i].color * w;
    }
    CompositeGradients { d_sigma, d_color }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sp(sigma: f32, r: f32, g: f32, b: f32) -> SamplePoint {
        SamplePoint {
            sigma,
            color: Vec3::new(r, g, b),
        }
    }

    #[test]
    fn empty_ray_is_black_with_full_background() {
        let out = composite(&[], &[]);
        assert_eq!(out.color, Vec3::ZERO);
        assert_eq!(out.background_weight, 1.0);
    }

    #[test]
    fn opaque_first_sample_blocks_rest() {
        let samples = [sp(1e5, 1.0, 0.0, 0.0), sp(1e5, 0.0, 1.0, 0.0)];
        let out = composite(&samples, &[0.1, 0.1]);
        assert!(out.color.x > 0.999);
        assert!(out.color.y < 1e-4);
        assert!(out.background_weight < 1e-6);
    }

    #[test]
    fn zero_density_passes_through() {
        let samples = [sp(0.0, 1.0, 1.0, 1.0); 4];
        let out = composite(&samples, &[0.25; 4]);
        assert_eq!(out.color, Vec3::ZERO);
        assert!((out.background_weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matches_closed_form_for_uniform_medium() {
        // Uniform σ over total length D: C = c (1 - e^{-σD}).
        let sigma = 2.0f32;
        let n = 200;
        let d = 1.0f32;
        let dt = d / n as f32;
        let samples: Vec<SamplePoint> = (0..n).map(|_| sp(sigma, 0.8, 0.4, 0.2)).collect();
        let dts = vec![dt; n];
        let out = composite(&samples, &dts);
        let expect = 1.0 - (-sigma * d).exp();
        assert!((out.color.x - 0.8 * expect).abs() < 1e-3);
        assert!((out.color.y - 0.4 * expect).abs() < 1e-3);
        assert!((out.background_weight - (-sigma * d).exp()).abs() < 1e-3);
    }

    #[test]
    fn weights_sum_with_background_to_one() {
        let samples = [
            sp(0.5, 1.0, 0.0, 0.0),
            sp(3.0, 0.0, 1.0, 0.0),
            sp(1.0, 0.0, 0.0, 1.0),
        ];
        let out = composite(&samples, &[0.3, 0.5, 0.2]);
        let total: f32 = out.weights.iter().sum::<f32>() + out.background_weight;
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transmittance_is_monotone_nonincreasing() {
        let mut rng = SmallRng::seed_from_u64(4);
        let samples: Vec<SamplePoint> = (0..32)
            .map(|_| sp(rng.gen_range(0.0..5.0), 0.5, 0.5, 0.5))
            .collect();
        let dts = vec![0.05f32; 32];
        let out = composite(&samples, &dts);
        let mut prev = 1.0f32;
        for &t in &out.transmittance_after {
            assert!(t <= prev + 1e-7);
            prev = t;
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 8;
        let samples: Vec<SamplePoint> = (0..n)
            .map(|_| sp(rng.gen_range(0.1..4.0), rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let dts: Vec<f32> = (0..n).map(|_| rng.gen_range(0.05..0.2)).collect();
        let d_out = Vec3::new(0.7, -1.3, 0.4);
        let out = composite(&samples, &dts);
        let grads = composite_backward(&samples, &dts, &out, d_out);

        let loss = |s: &[SamplePoint]| -> f32 {
            let o = composite(s, &dts);
            d_out.dot(o.color)
        };
        let eps = 1e-3;
        for i in 0..n {
            // Sigma gradient.
            let mut pert = samples.clone();
            pert[i].sigma += eps;
            let up = loss(&pert);
            pert[i].sigma -= 2.0 * eps;
            let down = loss(&pert);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.d_sigma[i]).abs() < 2e-2,
                "sigma {i}: numeric {numeric} vs analytic {}",
                grads.d_sigma[i]
            );
            // Color gradient (x channel).
            let mut pert = samples.clone();
            pert[i].color.x += eps;
            let up = loss(&pert);
            pert[i].color.x -= 2.0 * eps;
            let down = loss(&pert);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.d_color[i].x).abs() < 2e-2,
                "color {i}: numeric {numeric} vs analytic {}",
                grads.d_color[i].x
            );
        }
    }

    #[test]
    fn negative_density_clamped_with_zero_gradient() {
        let samples = [sp(-1.0, 1.0, 1.0, 1.0), sp(2.0, 0.5, 0.5, 0.5)];
        let dts = [0.1, 0.1];
        let out = composite(&samples, &dts);
        assert_eq!(out.weights[0], 0.0);
        let grads = composite_backward(&samples, &dts, &out, Vec3::ONE);
        assert_eq!(grads.d_sigma[0], 0.0);
        assert!(grads.d_sigma[1].abs() > 0.0);
    }

    proptest! {
        #[test]
        fn color_stays_in_convex_hull(
            seed in 0u64..500, n in 1usize..24
        ) {
            // With colors in [0,1]^3 the composite is a sub-convex
            // combination, so output channels stay in [0,1].
            let mut rng = SmallRng::seed_from_u64(seed);
            let samples: Vec<SamplePoint> = (0..n)
                .map(|_| sp(rng.gen_range(0.0..10.0), rng.gen(), rng.gen(), rng.gen()))
                .collect();
            let dts: Vec<f32> = (0..n).map(|_| rng.gen_range(0.01..0.3)).collect();
            let out = composite(&samples, &dts);
            for ch in [out.color.x, out.color.y, out.color.z] {
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(&ch));
            }
            let wsum: f32 = out.weights.iter().sum();
            prop_assert!(wsum <= 1.0 + 1e-5);
            prop_assert!(out.background_weight >= -1e-6);
        }
    }
}
