//! Differentiable emission-absorption volume rendering.
//!
//! Implements Step (d) of the NeRF pipeline (paper Eq. 1):
//!
//! ```text
//! C(r) = Σ_i T_i (1 - exp(-σ_i δ_i)) c_i ,   T_i = Π_{j<i} (1 - α_j)
//! ```
//!
//! with the exact analytic backward pass needed for Steps (e)–(f): given
//! `∂L/∂C`, [`volume::composite_backward`] returns `∂L/∂σ_i` and `∂L/∂c_i`
//! for every sample, which the trainer chains into the MLP and hash-table
//! backward passes.
//!
//! # Example
//!
//! ```
//! use inerf_render::volume::{composite, SamplePoint};
//! use inerf_geom::Vec3;
//!
//! // One very dense red sample: the ray color saturates to red.
//! let samples = [SamplePoint { sigma: 1e4, color: Vec3::new(1.0, 0.0, 0.0) }];
//! let out = composite(&samples, &[0.1]);
//! assert!(out.color.x > 0.99);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod loss;
pub mod volume;

pub use loss::{l2_loss, l2_loss_into, L2Loss};
pub use volume::{
    composite, composite_backward, composite_backward_spans, composite_backward_uniform,
    composite_spans, composite_uniform, CompositeOutput, RayBatch, RaySpan, SamplePoint,
};
