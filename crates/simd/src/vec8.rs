//! The portable eight-lane `f32` vector.
//!
//! `f32x8` is an array-backed value type whose operations are plain
//! lane loops by default. Inside a [`crate::vectorize`] frame LLVM compiles
//! those loops with the frame's target features, so the same source runs as
//! AVX2/NEON vector code at runtime. When the *build itself* enables the
//! features (`-C target-feature=+avx` on x86-64, or any aarch64 target,
//! where NEON is baseline), the lane loops are replaced by explicit
//! `std::arch` intrinsic bodies — same API, same bitwise results.
//!
//! # Floating-point contract (every backend)
//!
//! * All ops are lane-wise IEEE 754 binary32.
//! * [`f32x8::madd`] performs **two roundings** — `round(round(a*b) + acc)`
//!   — matching the scalar `acc + a * b`. It must never lower to a fused
//!   multiply-add: the intrinsic bodies use separate multiply and add
//!   instructions, and rustc keeps LLVM fp contraction disabled, so the
//!   lane-loop form cannot be fused behind our back either.
//! * [`f32x8::max`]/[`f32x8::min`] follow the hardware `maxps`/`fmax`
//!   semantics and agree with `f32::max`/`f32::min` for non-NaN inputs;
//!   kernels must not feed NaN through them (the trainer never does —
//!   densities and weights are finite by construction).
//! * [`f32x8::exp_lanes`] is lane-serial `f32::exp` in every backend so
//!   transcendentals stay bitwise identical to the scalar engine.
//! * Division and [`f32x8::sqrt`] are IEEE-exact (correctly rounded) in
//!   every backend — `vdivps`/`vsqrtps` and `vdivq`/`vsqrtq` round
//!   exactly like the scalar `/` and `f32::sqrt` — so they carry the
//!   same bitwise guarantee as `+`/`-`/`*`. Kernels must not produce
//!   NaN lanes through them (`0/0`, `inf/inf`, `sqrt` of a negative):
//!   NaN *payloads* are the one place backends may legally differ.

/// Eight `f32` lanes with value semantics.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy)]
#[repr(transparent)]
pub struct f32x8([f32; 8]);

impl f32x8 {
    /// Lane count.
    pub const LANES: usize = 8;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        f32x8([v; 8])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        f32x8([0.0; 8])
    }

    /// Builds a vector from an array, lane `i` = `a[i]`.
    #[inline(always)]
    pub fn from_array(a: [f32; 8]) -> Self {
        f32x8(a)
    }

    /// Lane values as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        self.0
    }

    /// Loads the first eight elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < 8`.
    #[inline(always)]
    pub fn from_slice(s: &[f32]) -> Self {
        let mut a = [0.0f32; 8];
        a.copy_from_slice(&s[..8]);
        f32x8(a)
    }

    /// Stores the lanes into the first eight elements of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < 8`.
    #[inline(always)]
    pub fn write_to(self, out: &mut [f32]) {
        out[..8].copy_from_slice(&self.0);
    }

    /// Reads lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> f32 {
        self.0[i]
    }

    /// Two-rounding multiply-add: `self + a * b` per lane, with the product
    /// rounded before the sum exactly like the scalar expression. This is
    /// deliberately **not** a fused multiply-add; see the module docs.
    #[inline(always)]
    pub fn madd(self, a: Self, b: Self) -> Self {
        f32x8(imp::madd(self.0, a.0, b.0))
    }

    /// Lane-wise maximum (`f32::max` semantics for non-NaN inputs).
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        f32x8(imp::max(self.0, o.0))
    }

    /// Lane-wise minimum (`f32::min` semantics for non-NaN inputs).
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        f32x8(imp::min(self.0, o.0))
    }

    /// Branch-free whole-vector select: `on` if `cond`, else `off`,
    /// preserving every lane's exact bit pattern (`-0.0` signs, NaN
    /// payloads). Implemented with integer masking in every backend, so
    /// conditionally-skipped updates (`acc = select(c, acc.madd(..), acc)`)
    /// stay bitwise identical to a scalar `if` *without* a data-dependent
    /// branch — the pattern the batched backward kernels use to skip
    /// zero-gradient terms at full speed.
    #[inline(always)]
    pub fn select(cond: bool, on: Self, off: Self) -> Self {
        let m = (cond as u32).wrapping_neg();
        let mut o = [0.0f32; 8];
        for (i, lane) in o.iter_mut().enumerate() {
            *lane = f32::from_bits((on.0[i].to_bits() & m) | (off.0[i].to_bits() & !m));
        }
        f32x8(o)
    }

    /// Lane-serial `f32::exp` — intentionally scalar per lane in every
    /// backend so results stay bitwise identical to the scalar engine.
    #[inline(always)]
    pub fn exp_lanes(self) -> Self {
        let mut a = self.0;
        for v in &mut a {
            *v = v.exp();
        }
        f32x8(a)
    }

    /// Lane-wise square root — IEEE-exact, bitwise identical to
    /// `f32::sqrt` per lane in every backend. Lanes must be non-negative
    /// (see the module contract on NaN).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        f32x8(imp::sqrt(self.0))
    }
}

impl std::ops::Add for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn add(self, o: f32x8) -> f32x8 {
        f32x8(imp::add(self.0, o.0))
    }
}

impl std::ops::Sub for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn sub(self, o: f32x8) -> f32x8 {
        f32x8(imp::sub(self.0, o.0))
    }
}

impl std::ops::Mul for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn mul(self, o: f32x8) -> f32x8 {
        f32x8(imp::mul(self.0, o.0))
    }
}

impl std::ops::Div for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn div(self, o: f32x8) -> f32x8 {
        f32x8(imp::div(self.0, o.0))
    }
}

impl std::ops::Neg for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn neg(self) -> f32x8 {
        f32x8(imp::sub([0.0; 8], self.0))
    }
}

impl std::ops::AddAssign for f32x8 {
    #[inline(always)]
    fn add_assign(&mut self, o: f32x8) {
        *self = *self + o;
    }
}

impl std::ops::MulAssign for f32x8 {
    #[inline(always)]
    fn mul_assign(&mut self, o: f32x8) {
        *self = *self * o;
    }
}

/// Portable lane-loop bodies. These are the canonical semantics; the
/// intrinsic modules below must match them bitwise. Inside a `vectorize`
/// frame LLVM turns these loops into single vector instructions.
#[cfg_attr(
    any(
        all(target_arch = "x86_64", target_feature = "avx"),
        all(target_arch = "aarch64", target_feature = "neon"),
    ),
    allow(dead_code)
)]
mod scalar {
    #[inline(always)]
    pub fn add(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i] + b[i];
        }
        o
    }

    #[inline(always)]
    pub fn sub(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i] - b[i];
        }
        o
    }

    #[inline(always)]
    pub fn mul(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i] * b[i];
        }
        o
    }

    /// Two roundings: the product is a rounded f32 before the add.
    #[inline(always)]
    pub fn madd(acc: [f32; 8], a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = acc[i] + a[i] * b[i];
        }
        o
    }

    #[inline(always)]
    pub fn div(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i] / b[i];
        }
        o
    }

    #[inline(always)]
    pub fn sqrt(a: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i].sqrt();
        }
        o
    }

    #[inline(always)]
    pub fn max(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i].max(b[i]);
        }
        o
    }

    #[inline(always)]
    pub fn min(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for i in 0..8 {
            o[i] = a[i].min(b[i]);
        }
        o
    }
}

/// Explicit AVX `std::arch` bodies, active when the build statically
/// enables AVX (e.g. `RUSTFLAGS="-C target-cpu=native"`). Value intrinsics
/// are kept inside `unsafe` blocks with SAFETY comments uniformly, even
/// where the statically-enabled feature would make them safe to call, so
/// the audit story does not depend on rustc's safe-intrinsics rules.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[allow(unused_unsafe)]
mod avx {
    use std::arch::x86_64::*;

    #[inline(always)]
    fn load(a: &[f32; 8]) -> __m256 {
        // SAFETY: `a` points to 8 readable, initialized f32s; `loadu`
        // tolerates any alignment. AVX is statically enabled in this cfg.
        unsafe { _mm256_loadu_ps(a.as_ptr()) }
    }

    #[inline(always)]
    fn store(v: __m256) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        // SAFETY: `out` is 8 writable f32s; `storeu` tolerates any
        // alignment. AVX is statically enabled in this cfg.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr(), v) };
        out
    }

    #[inline(always)]
    pub fn add(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_add_ps(load(&a), load(&b)) })
    }

    #[inline(always)]
    pub fn sub(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_sub_ps(load(&a), load(&b)) })
    }

    #[inline(always)]
    pub fn mul(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_mul_ps(load(&a), load(&b)) })
    }

    /// Separate `vmulps` + `vaddps` — two roundings, never `vfmadd`.
    #[inline(always)]
    pub fn madd(acc: [f32; 8], a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsics).
        store(unsafe { _mm256_add_ps(load(&acc), _mm256_mul_ps(load(&a), load(&b))) })
    }

    /// `vdivps` is IEEE correctly rounded — bitwise the scalar `/`.
    #[inline(always)]
    pub fn div(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_div_ps(load(&a), load(&b)) })
    }

    /// `vsqrtps` is IEEE correctly rounded — bitwise `f32::sqrt`.
    #[inline(always)]
    pub fn sqrt(a: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_sqrt_ps(load(&a)) })
    }

    /// `vmaxps` returns the second operand when lanes compare unordered,
    /// matching `f32::max` only for non-NaN inputs (see module contract).
    #[inline(always)]
    pub fn max(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_max_ps(load(&a), load(&b)) })
    }

    #[inline(always)]
    pub fn min(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: AVX is statically enabled in this cfg (value intrinsic).
        store(unsafe { _mm256_min_ps(load(&a), load(&b)) })
    }
}

/// Explicit NEON `std::arch` bodies (two `float32x4_t` halves per vector).
/// NEON is baseline on aarch64 std targets, so this module is the default
/// there. Same uniform-unsafe policy as the AVX module.
#[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
#[allow(unused_unsafe)]
mod neon {
    use std::arch::aarch64::*;

    #[inline(always)]
    fn map2(
        a: [f32; 8],
        b: [f32; 8],
        f: impl Fn(float32x4_t, float32x4_t) -> float32x4_t,
    ) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        // SAFETY: both halves of `a`/`b` are 4 readable f32s and both
        // halves of `out` are 4 writable f32s; NEON is statically enabled.
        unsafe {
            let lo = f(vld1q_f32(a.as_ptr()), vld1q_f32(b.as_ptr()));
            let hi = f(vld1q_f32(a.as_ptr().add(4)), vld1q_f32(b.as_ptr().add(4)));
            vst1q_f32(out.as_mut_ptr(), lo);
            vst1q_f32(out.as_mut_ptr().add(4), hi);
        }
        out
    }

    #[inline(always)]
    pub fn add(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: NEON statically enabled (value intrinsic inside map2).
        map2(a, b, |x, y| unsafe { vaddq_f32(x, y) })
    }

    #[inline(always)]
    pub fn sub(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: NEON statically enabled (value intrinsic inside map2).
        map2(a, b, |x, y| unsafe { vsubq_f32(x, y) })
    }

    #[inline(always)]
    pub fn mul(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: NEON statically enabled (value intrinsic inside map2).
        map2(a, b, |x, y| unsafe { vmulq_f32(x, y) })
    }

    /// Separate `fmul` + `fadd` — deliberately **not** `vfmaq_f32`, which
    /// would fuse and break the two-rounding contract.
    #[inline(always)]
    pub fn madd(acc: [f32; 8], a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        add(acc, mul(a, b))
    }

    /// `fdiv` is IEEE correctly rounded — bitwise the scalar `/`.
    #[inline(always)]
    pub fn div(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: NEON statically enabled (value intrinsic inside map2).
        map2(a, b, |x, y| unsafe { vdivq_f32(x, y) })
    }

    /// `fsqrt` is IEEE correctly rounded — bitwise `f32::sqrt`.
    #[inline(always)]
    pub fn sqrt(a: [f32; 8]) -> [f32; 8] {
        let mut out = [0.0f32; 8];
        // SAFETY: both halves of `a` are 4 readable f32s and both halves
        // of `out` are 4 writable f32s; NEON is statically enabled.
        unsafe {
            vst1q_f32(out.as_mut_ptr(), vsqrtq_f32(vld1q_f32(a.as_ptr())));
            vst1q_f32(
                out.as_mut_ptr().add(4),
                vsqrtq_f32(vld1q_f32(a.as_ptr().add(4))),
            );
        }
        out
    }

    #[inline(always)]
    pub fn max(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: NEON statically enabled (value intrinsic inside map2).
        map2(a, b, |x, y| unsafe { vmaxnmq_f32(x, y) })
    }

    #[inline(always)]
    pub fn min(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        // SAFETY: NEON statically enabled (value intrinsic inside map2).
        map2(a, b, |x, y| unsafe { vminnmq_f32(x, y) })
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
use avx as imp;
#[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
use neon as imp;
#[cfg(not(any(
    all(target_arch = "x86_64", target_feature = "avx"),
    all(target_arch = "aarch64", target_feature = "neon"),
)))]
use scalar as imp;

#[cfg(test)]
mod tests {
    use super::*;

    /// Edge-heavy value pool: zeros of both signs, subnormals, huge and
    /// tiny magnitudes, and plain values. NaN is excluded — `max`/`min`
    /// only contract non-NaN inputs (see module docs).
    const POOL: [f32; 14] = [
        0.0, -0.0, 1.0, -1.0, 0.5, -2.75, 123.456, -9.8e-7, 1.0e-38,
        1.0e-45, // smallest positive subnormal
        -1.0e-45, 3.0e38, -3.0e38, 7.25,
    ];

    fn pairs() -> impl Iterator<Item = (f32, f32)> {
        POOL.iter().flat_map(|&a| POOL.iter().map(move |&b| (a, b)))
    }

    fn vec_of(base: f32) -> [f32; 8] {
        // Distinct lane values so lane-crossing bugs can't cancel out.
        let mut a = [0.0f32; 8];
        for (i, v) in a.iter_mut().enumerate() {
            *v = base + i as f32 * 0.125;
        }
        a
    }

    #[track_caller]
    fn assert_lanes_eq(got: f32x8, want: [f32; 8], what: &str) {
        for (i, w) in want.iter().enumerate() {
            assert_eq!(
                got.lane(i).to_bits(),
                w.to_bits(),
                "{what}: lane {i}: got {}, want {}",
                got.lane(i),
                w,
            );
        }
    }

    #[test]
    fn binary_ops_match_scalar_reference_bitwise() {
        for (a, b) in pairs() {
            let (va, vb) = (vec_of(a), vec_of(b));
            let (xa, xb) = (f32x8::from_array(va), f32x8::from_array(vb));
            let per_lane = |f: fn(f32, f32) -> f32| {
                let mut o = [0.0f32; 8];
                for i in 0..8 {
                    o[i] = f(va[i], vb[i]);
                }
                o
            };
            assert_lanes_eq(xa + xb, per_lane(|x, y| x + y), "add");
            assert_lanes_eq(xa - xb, per_lane(|x, y| x - y), "sub");
            assert_lanes_eq(xa * xb, per_lane(|x, y| x * y), "mul");
            assert_lanes_eq(xa.max(xb), per_lane(f32::max), "max");
            assert_lanes_eq(xa.min(xb), per_lane(f32::min), "min");
            // Division: 0/0 lanes would be NaN, whose payload is outside
            // the contract (see module docs) — skip only those pairs.
            if !(a == 0.0 && b == 0.0) {
                assert_lanes_eq(xa / xb, per_lane(|x, y| x / y), "div");
            }
        }
    }

    #[test]
    fn sqrt_matches_scalar_bitwise() {
        for &v in &POOL {
            // Negative lanes would be NaN (outside the contract): sqrt the
            // magnitudes, which still covers zeros and subnormals.
            let a = vec_of(v).map(f32::abs);
            let got = f32x8::from_array(a).sqrt();
            let mut want = [0.0f32; 8];
            for i in 0..8 {
                want[i] = a[i].sqrt();
            }
            assert_lanes_eq(got, want, "sqrt");
        }
    }

    #[test]
    fn madd_matches_two_rounding_scalar_bitwise() {
        for (a, b) in pairs() {
            for &c in &POOL {
                let (va, vb, vc) = (vec_of(a), vec_of(b), vec_of(c));
                let got = f32x8::from_array(vc).madd(f32x8::from_array(va), f32x8::from_array(vb));
                let mut want = [0.0f32; 8];
                for i in 0..8 {
                    want[i] = vc[i] + va[i] * vb[i];
                }
                assert_lanes_eq(got, want, "madd");
            }
        }
    }

    #[test]
    fn madd_is_not_fused() {
        // (1 + 2^-23)^2 = 1 + 2^-22 + 2^-46; the product rounds to
        // 1 + 2^-22 exactly, so the two-rounding result of
        // madd(-(1 + 2^-22), a, a) is exactly 0.0. A fused multiply-add
        // would keep the 2^-46 term and return it instead.
        let a = 1.0 + f32::EPSILON; // 1 + 2^-23
        let c = -(1.0 + 2.0 * f32::EPSILON); // -(1 + 2^-22)
        let fused = f32::mul_add(a, a, c);
        assert!(fused != 0.0, "sanity: an FMA would be non-zero");
        let got = f32x8::splat(c).madd(f32x8::splat(a), f32x8::splat(a));
        for i in 0..8 {
            assert_eq!(got.lane(i).to_bits(), 0.0f32.to_bits());
        }
    }

    #[test]
    fn select_preserves_exact_lane_bits() {
        for (a, b) in pairs() {
            let (va, vb) = (vec_of(a), vec_of(b));
            let (xa, xb) = (f32x8::from_array(va), f32x8::from_array(vb));
            assert_lanes_eq(f32x8::select(true, xa, xb), va, "select(true)");
            assert_lanes_eq(f32x8::select(false, xa, xb), vb, "select(false)");
        }
        // NaN payloads and zero signs must survive the bit masking in both
        // directions.
        let weird = f32x8::from_array([
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            -0.0,
            0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1.0e-45,
            -1.0e-45,
        ]);
        let other = f32x8::splat(7.0);
        for i in 0..8 {
            assert_eq!(
                f32x8::select(true, weird, other).lane(i).to_bits(),
                weird.lane(i).to_bits(),
                "select(true) lane {i} bits"
            );
            assert_eq!(
                f32x8::select(false, weird, other).lane(i).to_bits(),
                other.lane(i).to_bits(),
                "select(false) lane {i} bits"
            );
        }
    }

    #[test]
    fn exp_lanes_is_lane_serial_f32_exp() {
        for &v in &POOL {
            let a = vec_of(v);
            let got = f32x8::from_array(a).exp_lanes();
            let mut want = [0.0f32; 8];
            for i in 0..8 {
                want[i] = a[i].exp();
            }
            assert_lanes_eq(got, want, "exp");
        }
    }

    #[test]
    fn neg_and_assign_ops() {
        let a = f32x8::from_array(vec_of(1.5));
        assert_lanes_eq(-a, vec_of(1.5).map(|v| 0.0 - v), "neg");
        let mut acc = f32x8::splat(1.0);
        acc += a;
        assert_lanes_eq(acc, vec_of(1.5).map(|v| 1.0 + v), "add_assign");
        let mut prod = f32x8::splat(2.0);
        prod *= a;
        assert_lanes_eq(prod, vec_of(1.5).map(|v| 2.0 * v), "mul_assign");
    }

    #[test]
    fn slice_round_trip_and_splat() {
        let s: Vec<f32> = (0..12).map(|i| i as f32 * 0.5).collect();
        let v = f32x8::from_slice(&s);
        let mut out = vec![0.0f32; 10];
        v.write_to(&mut out);
        assert_eq!(&out[..8], &s[..8]);
        assert_eq!(out[8], 0.0);
        assert_eq!(f32x8::splat(3.25).to_array(), [3.25; 8]);
        assert_eq!(f32x8::zero().to_array(), [0.0; 8]);
        assert_eq!(v.lane(3), 1.5);
    }

    #[test]
    fn ops_bitwise_identical_across_backends() {
        let _guard = crate::tests::BACKEND_LOCK.lock().unwrap();
        let original = crate::backend();
        let inputs: Vec<(f32, f32)> = pairs().collect();
        let run = || {
            let mut bits = Vec::new();
            for &(a, b) in &inputs {
                let (xa, xb) = (f32x8::from_array(vec_of(a)), f32x8::from_array(vec_of(b)));
                let mut ops = vec![
                    xa + xb,
                    xa - xb,
                    xa * xb,
                    xa.max(xb),
                    xa.min(xb),
                    xb.madd(xa, xb),
                    (xa * xb).exp_lanes(),
                    (xa * xa).sqrt(),
                ];
                if !(a == 0.0 && b == 0.0) {
                    ops.push(xa / xb);
                }
                for v in ops {
                    bits.extend(v.to_array().map(f32::to_bits));
                }
            }
            bits
        };
        crate::force_backend(crate::Backend::Scalar);
        let reference = crate::vectorize(run);
        for b in crate::available_backends() {
            crate::force_backend(b);
            let got = crate::vectorize(run);
            assert_eq!(got, reference, "backend {:?} diverges", b);
        }
        crate::force_backend(original);
    }
}
