//! Explicit-SIMD execution layer for the batched training engine.
//!
//! The paper's accelerator wins by keeping the encode → MLP → composite
//! datapath wide and busy; the software spine mirrors that with an explicit
//! eight-lane vector type, [`f32x8`], and a runtime-selected [`Backend`].
//! Hot kernels in `inerf_mlp`, `inerf_encoding`, and `inerf_render` are
//! written against `f32x8` and wrapped in [`vectorize`], which dispatches
//! the whole kernel through a `#[target_feature]` frame so LLVM emits AVX2
//! (x86-64) or NEON (aarch64) code for the lane loops without the workspace
//! having to be compiled with non-portable target flags.
//!
//! # Backend selection
//!
//! The active backend is resolved once, from the `INERF_SIMD` environment
//! variable:
//!
//! | value                | meaning                                        |
//! |----------------------|------------------------------------------------|
//! | unset, `native`, `auto` | best backend the CPU supports               |
//! | `scalar`             | force the plain scalar lane loops              |
//! | `avx2`               | AVX2 frames (falls back to scalar if absent)   |
//! | `neon`               | NEON frames (falls back to scalar if absent)   |
//! | anything else        | hard error naming the offending value          |
//!
//! Tests may override the cached choice with [`force_backend`]; overrides
//! are clamped to what the CPU actually supports, so forcing `Avx2` on a
//! non-AVX2 host degrades to `Scalar` instead of hitting undefined
//! behaviour.
//!
//! # Determinism contract
//!
//! Every backend must produce **bitwise identical** results:
//!
//! * All `f32x8` operations are lane-wise IEEE 754 single-precision ops.
//!   [`f32x8::madd`] is an explicit **two-rounding** multiply-then-add —
//!   never a fused multiply-add. The dispatch frames enable only `avx2` /
//!   `neon` (not `fma`), and rustc keeps LLVM's floating-point contraction
//!   off, so the compiler cannot silently fuse them either.
//! * Reductions are never reassociated by lane width: kernels accumulate
//!   across lanes in the same fixed order as the scalar reference, exactly
//!   as the thread pool preserves order by fixed chunking.
//! * Transcendentals ([`f32x8::exp_lanes`]) are evaluated lane-serially
//!   with `f32::exp`; no polynomial vector approximations.
//!
//! `unsafe` is confined to this crate (the `simd-lane` lint rule rejects
//! raw `std::arch` usage anywhere else in the workspace).

#![deny(unsafe_op_in_unsafe_fn)]

mod vec8;

pub use vec8::f32x8;

use std::sync::atomic::{AtomicU8, Ordering};

/// Lane count of the one vector width this layer exposes.
pub const LANES: usize = 8;

/// Which dispatch frame [`vectorize`] routes kernels through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Backend {
    /// Plain lane loops, no target-feature frame. Always available.
    Scalar = 0,
    /// x86-64 AVX2 `#[target_feature]` frame (`std::arch` detection).
    Avx2 = 1,
    /// aarch64 NEON `#[target_feature]` frame.
    Neon = 2,
}

impl Backend {
    /// Stable lower-case name, as accepted by `INERF_SIMD` and reported in
    /// bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            // NEON is a mandatory feature of the aarch64 std targets.
            Backend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    fn from_raw(raw: u8) -> Backend {
        match raw {
            1 => Backend::Avx2,
            2 => Backend::Neon,
            _ => Backend::Scalar,
        }
    }
}

/// All backends the running CPU supports, `Scalar` first. Equivalence tests
/// sweep this list and pin every entry against the scalar engine.
pub fn available_backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

const BACKEND_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// Best backend the running CPU supports.
pub fn native_backend() -> Backend {
    if Backend::Avx2.is_available() {
        Backend::Avx2
    } else if Backend::Neon.is_available() {
        Backend::Neon
    } else {
        Backend::Scalar
    }
}

/// Resolves a raw `INERF_SIMD` value to a backend.
///
/// Unknown values are a *hard error* naming the offending string — a typo
/// like `INERF_SIMD=sclar` must not silently run a benchmark on the wrong
/// path. A recognized-but-unavailable backend (`avx2` on an aarch64 host)
/// still clamps to `Scalar`: the request is meaningful, the CPU just
/// cannot honor it, and every backend is bitwise identical by contract.
fn try_resolve(raw: Option<&str>) -> Result<Backend, String> {
    let requested = match raw {
        None => return Ok(native_backend()),
        Some(s) => s.trim().to_ascii_lowercase(),
    };
    match requested.as_str() {
        "" | "native" | "auto" => Ok(native_backend()),
        "scalar" => Ok(Backend::Scalar),
        "avx2" => Ok(if Backend::Avx2.is_available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }),
        "neon" => Ok(if Backend::Neon.is_available() {
            Backend::Neon
        } else {
            Backend::Scalar
        }),
        other => Err(format!(
            "INERF_SIMD={other:?} is not a recognized backend; \
             expected one of: scalar, avx2, neon, native, auto"
        )),
    }
}

/// The active backend, resolving `INERF_SIMD` on first use and caching the
/// result for the life of the process (unless a test calls
/// [`force_backend`]).
///
/// # Panics
///
/// Panics if `INERF_SIMD` is set to an unrecognized or non-Unicode value
/// (see `try_resolve`) — configuration typos fail loudly at startup.
pub fn backend() -> Backend {
    let raw = ACTIVE.load(Ordering::Relaxed);
    if raw != BACKEND_UNSET {
        return Backend::from_raw(raw);
    }
    let var = match std::env::var("INERF_SIMD") {
        Ok(v) => Some(v),
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("INERF_SIMD={v:?} is not valid Unicode")
        }
    };
    let resolved = match try_resolve(var.as_deref()) {
        Ok(b) => b,
        Err(msg) => panic!("{msg}"),
    };
    ACTIVE.store(resolved as u8, Ordering::Relaxed);
    resolved
}

/// Overrides the active backend (test hook for backend-sweep suites) and
/// returns the previously active one so callers can restore it.
///
/// The request is clamped to what the CPU supports: forcing an unavailable
/// backend selects `Scalar`. Callers that sweep backends should serialize
/// on a lock; a race is still *safe* (all backends are bitwise identical by
/// contract), it just muddies which backend a concurrent kernel used.
pub fn force_backend(requested: Backend) -> Backend {
    let previous = backend();
    let clamped = if requested.is_available() {
        requested
    } else {
        Backend::Scalar
    };
    ACTIVE.store(clamped as u8, Ordering::Relaxed);
    previous
}

/// Runs `kernel` inside the active backend's `#[target_feature]` frame.
///
/// The closure is monomorphized per call site and inlined into the frame,
/// so LLVM compiles its lane loops with the frame's feature set — this is
/// how the portable `f32x8` lane loops become AVX2/NEON code on a build
/// whose baseline target lacks those features. The frame enables only the
/// lane-width feature (never `fma`), preserving the two-rounding `madd`
/// contract documented on [`f32x8`].
#[inline]
pub fn vectorize<R>(kernel: impl FnOnce() -> R) -> R {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 is only ever stored into ACTIVE after
        // `is_x86_feature_detected!("avx2")` confirmed support (see
        // `Backend::is_available`, which both `try_resolve` and
        // `force_backend` clamp through), so the AVX2 frame cannot execute
        // on a CPU without AVX2.
        Backend::Avx2 => unsafe { frame_avx2(kernel) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a mandatory feature of aarch64 std targets;
        // Backend::Neon is only reachable on aarch64 (is_available clamps).
        Backend::Neon => unsafe { frame_neon(kernel) },
        _ => kernel(),
    }
}

/// AVX2 dispatch frame. Calling this on a CPU without AVX2 is undefined
/// behaviour, which is why it is `unsafe` and only reachable through
/// [`vectorize`]'s detection-guarded match arm.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe fn` by the target_feature contract — the caller must
// guarantee AVX2 support, which `vectorize` does via runtime detection.
unsafe fn frame_avx2<R>(kernel: impl FnOnce() -> R) -> R {
    kernel()
}

/// NEON dispatch frame; see [`frame_avx2`].
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// SAFETY: `unsafe fn` by the target_feature contract — NEON is mandatory
// on aarch64 std targets, and `vectorize` only reaches this on aarch64.
unsafe fn frame_neon<R>(kernel: impl FnOnce() -> R) -> R {
    kernel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global backend choice.
    pub(crate) static BACKEND_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn resolve_env_values() {
        assert_eq!(try_resolve(Some("scalar")), Ok(Backend::Scalar));
        assert_eq!(try_resolve(Some("SCALAR ")), Ok(Backend::Scalar));
        assert_eq!(try_resolve(None), Ok(native_backend()));
        assert_eq!(try_resolve(Some("native")), Ok(native_backend()));
        assert_eq!(try_resolve(Some("auto")), Ok(native_backend()));
        assert_eq!(try_resolve(Some("")), Ok(native_backend()));
        // Unavailable explicit requests clamp to scalar.
        if !Backend::Neon.is_available() {
            assert_eq!(try_resolve(Some("neon")), Ok(Backend::Scalar));
        }
        if !Backend::Avx2.is_available() {
            assert_eq!(try_resolve(Some("avx2")), Ok(Backend::Scalar));
        }
    }

    #[test]
    fn unknown_env_values_are_hard_errors_naming_the_value() {
        for bad in ["avx512", "wide", "sclar", "simd on"] {
            let err = try_resolve(Some(bad)).unwrap_err();
            assert!(
                err.contains("INERF_SIMD") && err.contains(bad.trim()),
                "error must name the variable and the offending value: {err}"
            );
        }
    }

    #[test]
    fn available_backends_starts_with_scalar() {
        let avail = available_backends();
        assert_eq!(avail[0], Backend::Scalar);
        for b in &avail {
            assert!(b.is_available());
        }
    }

    #[test]
    fn force_backend_round_trips_and_clamps() {
        let _guard = BACKEND_LOCK.lock().unwrap();
        let original = backend();
        for requested in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            force_backend(requested);
            let active = backend();
            if requested.is_available() {
                assert_eq!(active, requested);
            } else {
                assert_eq!(active, Backend::Scalar);
            }
        }
        force_backend(original);
        assert_eq!(backend(), original);
    }

    #[test]
    fn vectorize_runs_kernel_on_every_backend() {
        let _guard = BACKEND_LOCK.lock().unwrap();
        let original = backend();
        let reference: f32 = (0..64).map(|i| (i as f32).sin()).sum();
        for b in available_backends() {
            force_backend(b);
            let got = vectorize(|| (0..64).map(|i| (i as f32).sin()).sum::<f32>());
            assert_eq!(got.to_bits(), reference.to_bits(), "backend {:?}", b);
        }
        force_backend(original);
    }
}
