//! GPU device specifications (paper Tab. I).

use serde::{Deserialize, Serialize};

/// One device row of Tab. I plus a calibrated efficiency factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device name.
    pub name: String,
    /// Board power in watts.
    pub power_w: f64,
    /// Peak DRAM bandwidth in bytes/second.
    pub dram_bw: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Peak FP32 throughput in FLOP/s.
    pub fp32_flops: f64,
    /// Peak FP16 throughput in FLOP/s.
    pub fp16_flops: f64,
    /// Memory-system efficiency relative to XNX, calibrated from the
    /// measured per-scene training times in Tab. I (architecture
    /// generation, cache hierarchy and memory-controller differences that a
    /// bandwidth-only roofline cannot see).
    pub efficiency: f64,
    /// Training time per scene measured by the paper (Tab. I), used for
    /// validation; `None` where the paper reports N/A.
    pub paper_seconds_per_scene: Option<f64>,
}

impl GpuSpec {
    /// NVIDIA Jetson Xavier NX (XNX): 20 W, 59.7 GB/s, 512 KB L2.
    pub fn xnx() -> Self {
        GpuSpec {
            name: "XNX".into(),
            power_w: 20.0,
            dram_bw: 59.7e9,
            l2_bytes: 512 * 1024,
            fp32_flops: 885e9,
            fp16_flops: 1.69e12,
            efficiency: 1.0,
            paper_seconds_per_scene: Some(7088.0),
        }
    }

    /// NVIDIA Jetson TX2: 15 W, 25.6 GB/s, 512 KB L2.
    pub fn tx2() -> Self {
        GpuSpec {
            name: "TX2".into(),
            power_w: 15.0,
            dram_bw: 25.6e9,
            l2_bytes: 512 * 1024,
            fp32_flops: 750e9,
            fp16_flops: 1.50e12,
            // Tab. I: 44653 s vs the 16530 s a pure-bandwidth scaling of XNX
            // would predict → 0.37 relative efficiency (older Pascal cores).
            efficiency: 0.37,
            paper_seconds_per_scene: Some(44653.0),
        }
    }

    /// NVIDIA GeForce RTX 2080 Ti: 250 W, 616 GB/s, 5.5 MB L2.
    pub fn rtx2080ti() -> Self {
        GpuSpec {
            name: "2080Ti".into(),
            power_w: 250.0,
            dram_bw: 616e9,
            l2_bytes: 5632 * 1024,
            fp32_flops: 13.45e12,
            fp16_flops: 26.9e12,
            // Tab. I: 306 s vs the 687 s bandwidth scaling predicts → the
            // large L2 absorbs the coarse levels and raises efficiency.
            efficiency: 2.24,
            paper_seconds_per_scene: Some(306.0),
        }
    }

    /// Qualcomm Adreno 650 (Meta Quest Pro): 5 W, 44 GB/s, 1 MB cache.
    pub fn quest_pro() -> Self {
        GpuSpec {
            name: "Quest Pro".into(),
            power_w: 5.0,
            dram_bw: 44.0e9,
            l2_bytes: 1024 * 1024,
            fp32_flops: 955e9,
            fp16_flops: 1.85e12,
            efficiency: 0.8,
            paper_seconds_per_scene: None,
        }
    }

    /// All Tab. I devices.
    pub fn all() -> Vec<GpuSpec> {
        vec![
            Self::xnx(),
            Self::tx2(),
            Self::rtx2080ti(),
            Self::quest_pro(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_values() {
        let x = GpuSpec::xnx();
        assert_eq!(x.power_w, 20.0);
        assert_eq!(x.l2_bytes, 512 * 1024);
        let t = GpuSpec::tx2();
        assert!(t.dram_bw < x.dram_bw);
        let r = GpuSpec::rtx2080ti();
        assert!(r.dram_bw > 10.0 * x.dram_bw);
        assert_eq!(GpuSpec::all().len(), 4);
    }

    #[test]
    fn edge_gpus_have_small_caches() {
        // Sec. II-B: each 2 MB hash-table level exceeds the edge GPU cache.
        for spec in [GpuSpec::xnx(), GpuSpec::tx2(), GpuSpec::quest_pro()] {
            assert!(spec.l2_bytes < 2 * 1024 * 1024, "{}", spec.name);
        }
        assert!(GpuSpec::rtx2080ti().l2_bytes > 2 * 1024 * 1024);
    }
}
