//! Roofline-style kernel cost model calibrated to the paper's measurements.

use crate::specs::GpuSpec;
use inerf_trainer::workload::{step_ops, step_sizes, Step};
use inerf_trainer::ModelConfig;
use serde::{Deserialize, Serialize};

/// Fraction of total training time outside the six bottleneck steps
/// (Fig. 1(b): the bottleneck steps cover 76.4%, "other" is the rest).
pub const OTHER_FRACTION: f64 = 0.236;

/// GPU cache-transaction size for scattered gathers (one L2 line per
/// hash-table entry touched on a miss).
const GATHER_LINE_BYTES: u64 = 64;
/// Replay factor for the gather stream (TLB/coalescer replays), calibrated
/// against the Fig. 1(b) HT share.
const GATHER_REPLAY: f64 = 1.2;
/// Address-arithmetic INT32 ops accompanying each hash-index calculation on
/// a GPU (pointer math, bounds, lane bookkeeping) — absent on the
/// accelerator's dedicated hash unit.
const GPU_ADDRESSING_INT_OPS: u64 = 15;
/// nvprof reports per-issue-slot utilization; in memory-stalled kernels
/// roughly one in four issue slots of the FP pipe carries a useful MAC.
const ISSUE_SLOT_OVERHEAD: f64 = 4.0;

/// Paper-measured achieved DRAM utilization per step on the edge GPU
/// (Sec. II-B: HT 61.3%, MLPd/MLPc 47.5%, MLPd_b/MLPc_b 73.7%; HT_b is
/// reported "relatively low" from write-after-read idleness).
pub fn measured_dram_utilization(step: Step) -> f64 {
    match step {
        Step::Ht => 0.613,
        Step::MlpD | Step::MlpC => 0.475,
        Step::MlpDB | Step::MlpCB => 0.737,
        Step::HtB => 0.35,
    }
}

/// The DRAM traffic one step moves for a batch of `points`, in bytes.
///
/// HT gathers one cache line per entry touched (the 32-bit-entry-in-1KB-row
/// mismatch the paper highlights manifests on GPUs as a 64 B line per 4 B
/// entry); MLP steps spill activations through DRAM because the working set
/// exceeds the edge L2 (Tab. II vs Tab. I).
pub fn step_traffic_bytes(model: &ModelConfig, step: Step, points: u64) -> u64 {
    let sizes = step_sizes(model, step, points);
    let entry_touches = points * model.grid.levels as u64 * 8;
    match step {
        Step::Ht => {
            (entry_touches as f64 * GATHER_LINE_BYTES as f64 * GATHER_REPLAY) as u64
                + sizes.input_bytes
                + sizes.output_bytes
        }
        // Read-modify-write of each touched entry: a 32 B read transaction
        // plus the 8 B dirty write-back per entry.
        Step::HtB => entry_touches * (32 + 8) + sizes.input_bytes,
        // Forward MLPs stream activations in and out of DRAM; the color MLP
        // has two hidden layers (two intermediate round-trips).
        Step::MlpD => sizes.input_bytes + sizes.output_bytes + 2 * sizes.intermediate_bytes,
        Step::MlpC => sizes.input_bytes + sizes.output_bytes + 4 * sizes.intermediate_bytes,
        // Backward passes fuse better (the paper measures 73.7% utilization
        // and small shares): one intermediate round-trip.
        Step::MlpDB | Step::MlpCB => {
            sizes.input_bytes + sizes.output_bytes + sizes.intermediate_bytes
        }
    }
}

/// Cost of one step for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepCost {
    /// Which step.
    pub step: Step,
    /// Seconds per iteration.
    pub seconds: f64,
    /// DRAM traffic per iteration in bytes.
    pub traffic_bytes: u64,
    /// Achieved DRAM throughput in bytes/second.
    pub dram_throughput: f64,
    /// FP16 ALU utilization (iNGP runs MLP math in FP16).
    pub fp16_utilization: f64,
    /// INT32 ALU utilization (index calculation).
    pub int32_utilization: f64,
}

/// Full training cost on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCost {
    /// Device name.
    pub device: String,
    /// Per-step costs (one iteration).
    pub steps: Vec<StepCost>,
    /// Seconds per iteration including the "other" share.
    pub iteration_seconds: f64,
    /// Total training seconds (`iterations × iteration_seconds`).
    pub total_seconds: f64,
    /// Total training energy in joules.
    pub total_joules: f64,
}

impl TrainingCost {
    /// Estimates the training cost of `iterations` iterations at
    /// `points`-point batches. `scene_factor` scales the hash-table steps
    /// for scene-dependent access locality (1.0 = average scene).
    pub fn estimate(
        spec: &GpuSpec,
        model: &ModelConfig,
        points: u64,
        iterations: u64,
        scene_factor: f64,
    ) -> TrainingCost {
        let mut steps = Vec::with_capacity(Step::ALL.len());
        let mut bottleneck = 0.0f64;
        for &step in &Step::ALL {
            let traffic = step_traffic_bytes(model, step, points);
            let eff_bw = spec.dram_bw * measured_dram_utilization(step) * spec.efficiency;
            let ops = step_ops(model, step);
            let int_ops = if matches!(step, Step::Ht | Step::HtB) {
                // Each of the 8 vertex-index calculations per level also
                // pays GPU address arithmetic.
                (ops.int_ops + model.grid.levels as u64 * 8 * GPU_ADDRESSING_INT_OPS) * points
            } else {
                ops.int_ops * points
            };
            let fp_ops = ops.fp_ops * points;
            // Roofline: a kernel takes at least its memory time and at
            // least its compute time (FP16 math on tensor-capable pipes,
            // INT32 on the FP32/INT32 pipe, Tab. I).
            let mem_seconds = traffic as f64 / eff_bw;
            let fp_seconds = fp_ops as f64 / spec.fp16_flops;
            let int_seconds = int_ops as f64 / spec.fp32_flops;
            let mut seconds = mem_seconds.max(fp_seconds).max(int_seconds);
            if matches!(step, Step::Ht | Step::HtB) {
                seconds *= scene_factor;
            }
            // Reported utilizations follow nvprof's issue-slot convention.
            let fp16_util = fp_ops as f64 / (seconds * spec.fp16_flops) / ISSUE_SLOT_OVERHEAD;
            let int32_util = int_ops as f64 / (seconds * spec.fp32_flops) / ISSUE_SLOT_OVERHEAD;
            bottleneck += seconds;
            steps.push(StepCost {
                step,
                seconds,
                traffic_bytes: traffic,
                dram_throughput: traffic as f64 / seconds,
                fp16_utilization: fp16_util,
                int32_utilization: int32_util,
            });
        }
        let iteration_seconds = bottleneck / (1.0 - OTHER_FRACTION);
        let total_seconds = iteration_seconds * iterations as f64;
        TrainingCost {
            device: spec.name.clone(),
            steps,
            iteration_seconds,
            total_seconds,
            total_joules: total_seconds * spec.power_w,
        }
    }

    /// Fig. 1(b)-style percentage breakdown over the six bottleneck steps
    /// plus `Other`, in step order then other. Percentages sum to 100.
    pub fn breakdown_percent(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .steps
            .iter()
            .map(|s| {
                (
                    s.step.label().to_string(),
                    100.0 * s.seconds / self.iteration_seconds,
                )
            })
            .collect();
        let covered: f64 = out.iter().map(|(_, p)| p).sum();
        out.push(("Other".to_string(), 100.0 - covered));
        out
    }

    /// The cost entry of a given step.
    pub fn step(&self, step: Step) -> &StepCost {
        self.steps
            .iter()
            .find(|s| s.step == step)
            .expect("all steps are estimated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::HashFunction;

    const POINTS: u64 = 256 * 1024;
    const ITERS: u64 = 35_000;

    fn model() -> ModelConfig {
        ModelConfig::paper(HashFunction::Original)
    }

    fn xnx_cost() -> TrainingCost {
        TrainingCost::estimate(&GpuSpec::xnx(), &model(), POINTS, ITERS, 1.0)
    }

    #[test]
    fn xnx_total_matches_paper_band() {
        let c = xnx_cost();
        let paper = GpuSpec::xnx()
            .paper_seconds_per_scene
            .expect("XNX spec records the paper runtime");
        assert!(
            (c.total_seconds / paper - 1.0).abs() < 0.5,
            "XNX total {:.0} s should be within 50% of the paper's {paper} s",
            c.total_seconds
        );
    }

    #[test]
    fn tx2_and_2080ti_match_paper_bands() {
        let t = TrainingCost::estimate(&GpuSpec::tx2(), &model(), POINTS, ITERS, 1.0);
        let paper_t = GpuSpec::tx2()
            .paper_seconds_per_scene
            .expect("TX2 spec records the paper runtime");
        assert!(
            (t.total_seconds / paper_t - 1.0).abs() < 0.5,
            "TX2 {:.0} vs paper {paper_t}",
            t.total_seconds
        );
        let r = TrainingCost::estimate(&GpuSpec::rtx2080ti(), &model(), POINTS, ITERS, 1.0);
        let paper_r = GpuSpec::rtx2080ti()
            .paper_seconds_per_scene
            .expect("2080Ti spec records the paper runtime");
        assert!(
            (r.total_seconds / paper_r - 1.0).abs() < 0.5,
            "2080Ti {:.0} vs paper {paper_r}",
            r.total_seconds
        );
    }

    #[test]
    fn breakdown_shape_matches_fig1b() {
        // Fig. 1(b) on XNX: HT 34.1%, HT_b 30.5%, MLPc 6.5%, MLPd 2.8%,
        // MLPc_b 1.6%, MLPd_b 0.8%. Check ordering and coarse magnitudes.
        let c = xnx_cost();
        let pct = |s: Step| 100.0 * c.step(s).seconds / c.iteration_seconds;
        assert!(pct(Step::Ht) > pct(Step::HtB), "HT leads the breakdown");
        assert!(pct(Step::HtB) > pct(Step::MlpC));
        assert!(pct(Step::MlpC) > pct(Step::MlpD));
        assert!(pct(Step::MlpD) > pct(Step::MlpDB));
        assert!(
            (20.0..48.0).contains(&pct(Step::Ht)),
            "HT share {:.1}%",
            pct(Step::Ht)
        );
        assert!(
            (18.0..42.0).contains(&pct(Step::HtB)),
            "HT_b share {:.1}%",
            pct(Step::HtB)
        );
        let total: f64 = c.breakdown_percent().iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_observation_holds() {
        // Sec. II-B observation 1: DRAM utilization is far above ALU
        // utilization for the forward bottleneck steps (the paper reports
        // 5.24x–21.44x); the fused backward MLP kernels sit closer to the
        // roofline ridge but still keep DRAM busy.
        let c = xnx_cost();
        let spec = GpuSpec::xnx();
        for s in &c.steps {
            let dram_util = s.dram_throughput / spec.dram_bw;
            let alu = s.fp16_utilization.max(s.int32_utilization);
            match s.step {
                Step::Ht | Step::HtB | Step::MlpD | Step::MlpC => assert!(
                    dram_util > 3.0 * alu,
                    "{}: DRAM util {:.3} vs ALU util {:.3} — not memory-bound",
                    s.step.label(),
                    dram_util,
                    alu
                ),
                Step::MlpDB | Step::MlpCB => assert!(
                    dram_util > 0.1,
                    "{}: DRAM should stay busy, util {:.3}",
                    s.step.label(),
                    dram_util
                ),
            }
        }
    }

    #[test]
    fn int_dominates_fp_in_ht_kernels() {
        // Sec. II-B observation 3: index calculation makes INT32 the top
        // ALU consumer.
        let c = xnx_cost();
        let ht = c.step(Step::Ht);
        assert!(ht.int32_utilization > 4.0 * ht.fp16_utilization);
    }

    #[test]
    fn scene_factor_scales_ht_only() {
        let base = xnx_cost();
        let heavy = TrainingCost::estimate(&GpuSpec::xnx(), &model(), POINTS, ITERS, 1.5);
        assert!(heavy.total_seconds > base.total_seconds);
        assert_eq!(
            heavy.step(Step::MlpD).seconds,
            base.step(Step::MlpD).seconds,
            "MLP steps must not depend on the scene factor"
        );
        assert!((heavy.step(Step::Ht).seconds / base.step(Step::Ht).seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let c = xnx_cost();
        assert!((c.total_joules - 20.0 * c.total_seconds).abs() < 1e-6);
    }
}
