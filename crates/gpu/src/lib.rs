//! Analytical GPU cost model for iNGP training (the paper's baselines).
//!
//! The paper *measures* its GPU numbers with nvprof on real devices
//! (Sec. II-B); this crate re-derives them from a roofline-style model whose
//! per-step achieved utilizations and per-device efficiency factors are the
//! paper's published measurements (Fig. 4, Tab. I) used as calibration
//! constants — the standard substitution when the physical devices are
//! unavailable (see DESIGN.md).
//!
//! The model reproduces:
//!
//! * **Fig. 1(a)** — training time per scene on each device.
//! * **Fig. 1(b)** — the training-time breakdown over the bottleneck steps.
//! * **Fig. 4** — DRAM read/write throughput and FP32/FP16/INT32 ALU
//!   utilization per step.
//! * The Fig. 11 denominators (XNX / TX2 training time and energy).
//!
//! # Example
//!
//! ```
//! use inerf_gpu::{GpuSpec, TrainingCost};
//! use inerf_trainer::ModelConfig;
//! use inerf_encoding::HashFunction;
//!
//! let model = ModelConfig::paper(HashFunction::Original);
//! let cost = TrainingCost::estimate(&GpuSpec::xnx(), &model, 256 * 1024, 35_000, 1.0);
//! assert!(cost.total_seconds > 1000.0); // >1 hour on the edge GPU
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cost;
pub mod specs;

pub use cost::{StepCost, TrainingCost};
pub use specs::GpuSpec;
