//! Little-endian byte codec used by the snapshot format and its payloads.
//!
//! Writers append to a plain `Vec<u8>`; readers consume through
//! [`Reader`], which surfaces every overrun, length overflow or trailing
//! garbage as [`SnapshotError::Corrupt`] instead of panicking — the
//! no-panic-on-any-input invariant the byte-flip sweep relies on.
//!
//! Slices are encoded as a `u64` element count followed by the raw
//! little-endian elements; floats travel as their IEEE 754 bit patterns
//! so round-trips are bit-exact (including NaN payloads and signed
//! zeros — a resume must reproduce *bits*, not values).

use crate::error::SnapshotError;

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16`, little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` as its bit pattern, little-endian.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// Appends a length-prefixed `u16` slice.
pub fn put_u16_slice(out: &mut Vec<u8>, xs: &[u16]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u16(out, x);
    }
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32_slice(out: &mut Vec<u8>, xs: &[u32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u32(out, x);
    }
}

/// Appends a length-prefixed `u64` slice.
pub fn put_u64_slice(out: &mut Vec<u8>, xs: &[u64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x);
    }
}

/// Appends a length-prefixed `f32` slice (bit patterns).
pub fn put_f32_slice(out: &mut Vec<u8>, xs: &[f32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_f32(out, x);
    }
}

/// A bounds-checked cursor over an untrusted byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "record truncated: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length prefix, guarding against lengths that cannot fit
    /// in the remaining bytes (a corrupted prefix must not trigger a
    /// huge allocation before the bounds check catches it).
    fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let raw = self.u64()?;
        let n = usize::try_from(raw)
            .ok()
            .and_then(|n| n.checked_mul(elem_bytes).map(|total| (n, total)));
        match n {
            Some((n, total)) if total <= self.remaining() => Ok(n),
            _ => Err(SnapshotError::Corrupt(format!(
                "slice length {raw} overruns record ({} bytes remain)",
                self.remaining()
            ))),
        }
    }

    /// Reads a length-prefixed `u16` slice.
    pub fn u16_vec(&mut self) -> Result<Vec<u16>, SnapshotError> {
        let n = self.len_prefix(2)?;
        (0..n).map(|_| self.u16()).collect()
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len_prefix(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `f32` slice (bit patterns).
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.len_prefix(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Consumes the reader, failing if any bytes were left unread —
    /// trailing garbage means the record is not what the decoder thinks
    /// it is.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after record",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_slice_round_trip_bit_exact() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_f32(&mut buf, -0.0);
        put_f32_slice(&mut buf, &[f32::NAN, 1.5, -3.25]);
        put_u16_slice(&mut buf, &[1, 2, 3]);
        put_u32_slice(&mut buf, &[9, 8]);
        put_u64_slice(&mut buf, &[u64::MAX]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        let fs = r.f32_vec().unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].to_bits(), f32::NAN.to_bits());
        assert_eq!(fs[1], 1.5);
        assert_eq!(r.u16_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u32_vec().unwrap(), vec![9, 8]);
        assert_eq!(r.u64_vec().unwrap(), vec![u64::MAX]);
        r.finish().unwrap();
    }

    #[test]
    fn overrun_is_corrupt_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn huge_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claims ~1.8e19 elements
        let mut r = Reader::new(&buf);
        assert!(matches!(r.f32_vec(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = Reader::new(&[0]);
        assert!(matches!(r.finish(), Err(SnapshotError::Corrupt(_))));
    }
}
