//! The snapshot container: magic, version, checksummed section index.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"INERFSNP"
//! 8       4     format version (currently 1)
//! 12      4     section count S  (capped at 1024)
//! 16      24*S  index: per section { tag: [u8;8], payload len: u64,
//!                                    payload FNV-1a64: u64 }
//! 16+24S  8     FNV-1a64 of every byte above (header + index)
//! ...           the S payloads, concatenated in index order
//! ```
//!
//! Validation order matters: the index checksum is verified *before* any
//! payload length from the index is trusted, the total length must match
//! the sum of section lengths *exactly* (no trailing bytes — a torn
//! append or a concatenated pair of files is corruption, not slack), and
//! each payload is checksummed independently so the error names the
//! section that went bad. Under this scheme any single corrupted byte —
//! header, index, checksum field or payload — is detected (the FNV-1a
//! byte step is injective per byte, see [`crate::checksum`]), which the
//! byte-flip sweep in `tests/corruption.rs` verifies exhaustively.

use crate::checksum::fnv1a64;
use crate::codec::{put_u32, put_u64};
use crate::error::SnapshotError;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"INERFSNP";
/// Current container format version.
pub const VERSION: u32 = 1;
/// Upper bound on the section count — a corrupted count must not drive
/// a huge index allocation before checksum verification can run.
const MAX_SECTIONS: u32 = 1024;
const HEADER_BYTES: usize = 16;
const INDEX_ENTRY_BYTES: usize = 24;

/// An in-memory snapshot: an ordered list of tagged, independently
/// checksummed byte sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

fn tag8(tag: &str) -> [u8; 8] {
    debug_assert!(tag.len() <= 8, "section tag `{tag}` longer than 8 bytes");
    let mut t = [0u8; 8];
    let n = tag.len().min(8);
    t[..n].copy_from_slice(&tag.as_bytes()[..n]);
    t
}

fn tag_str(tag: &[u8; 8]) -> String {
    let end = tag.iter().position(|&b| b == 0).unwrap_or(8);
    String::from_utf8_lossy(&tag[..end]).into_owned()
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Tags are at most 8 bytes, zero-padded.
    pub fn push(&mut self, tag: &str, payload: Vec<u8>) {
        self.sections.push((tag8(tag), payload));
    }

    /// The payload of the section tagged `tag`, or `Corrupt` if the
    /// snapshot has no such section (a well-formed container missing a
    /// required record is still not loadable state).
    pub fn section(&self, tag: &str) -> Result<&[u8], SnapshotError> {
        let t = tag8(tag);
        self.sections
            .iter()
            .find(|(st, _)| *st == t)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing section `{tag}`")))
    }

    /// Section tags in file order (diagnostics and tests).
    pub fn tags(&self) -> Vec<String> {
        self.sections.iter().map(|(t, _)| tag_str(t)).collect()
    }

    /// Serializes the container.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            put_u64(&mut out, payload.len() as u64);
            put_u64(&mut out, fnv1a64(payload));
        }
        let index_crc = fnv1a64(&out);
        put_u64(&mut out, index_crc);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and fully validates a container. Any structural damage —
    /// truncation, trailing bytes, or a flipped bit anywhere in the file
    /// — yields a typed error, never a panic and never wrong data.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_BYTES {
            return Err(SnapshotError::Corrupt(format!(
                "file too short for header: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        if count > MAX_SECTIONS {
            return Err(SnapshotError::Corrupt(format!(
                "implausible section count {count}"
            )));
        }
        let index_end = HEADER_BYTES + count as usize * INDEX_ENTRY_BYTES;
        let payload_start = index_end + 8;
        if bytes.len() < payload_start {
            return Err(SnapshotError::Corrupt(format!(
                "file truncated inside section index: {} < {payload_start} bytes",
                bytes.len()
            )));
        }
        let stored_index_crc = u64::from_le_bytes(
            bytes[index_end..payload_start]
                .try_into()
                .map_err(|_| SnapshotError::Corrupt("index checksum unreadable".into()))?,
        );
        if fnv1a64(&bytes[..index_end]) != stored_index_crc {
            return Err(SnapshotError::Corrupt("index checksum mismatch".into()));
        }
        // The index is now trustworthy; lengths and checksums from it
        // can drive payload slicing.
        let mut entries = Vec::with_capacity(count as usize);
        let mut expected_total = payload_start as u64;
        for i in 0..count as usize {
            let e = HEADER_BYTES + i * INDEX_ENTRY_BYTES;
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&bytes[e..e + 8]);
            let len = u64::from_le_bytes(
                bytes[e + 8..e + 16]
                    .try_into()
                    .map_err(|_| SnapshotError::Corrupt("index entry unreadable".into()))?,
            );
            let crc = u64::from_le_bytes(
                bytes[e + 16..e + 24]
                    .try_into()
                    .map_err(|_| SnapshotError::Corrupt("index entry unreadable".into()))?,
            );
            expected_total = expected_total.checked_add(len).ok_or_else(|| {
                SnapshotError::Corrupt("section lengths overflow the file size".into())
            })?;
            entries.push((tag, len, crc));
        }
        if expected_total != bytes.len() as u64 {
            return Err(SnapshotError::Corrupt(format!(
                "file length {} does not match declared contents {expected_total}",
                bytes.len()
            )));
        }
        let mut sections = Vec::with_capacity(entries.len());
        let mut off = payload_start;
        for (tag, len, crc) in entries {
            let len = len as usize; // fits: expected_total == bytes.len()
            let payload = &bytes[off..off + len];
            if fnv1a64(payload) != crc {
                return Err(SnapshotError::Corrupt(format!(
                    "section `{}` checksum mismatch",
                    tag_str(&tag)
                )));
            }
            sections.push((tag, payload.to_vec()));
            off += len;
        }
        Ok(Snapshot { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.push("alpha", vec![1, 2, 3, 4]);
        s.push("beta", vec![]);
        s.push("gamma", (0u8..=255).collect());
        s
    }

    #[test]
    fn round_trip_preserves_sections_and_order() {
        let s = sample();
        let decoded = Snapshot::decode(&s.encode()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.tags(), vec!["alpha", "beta", "gamma"]);
        assert_eq!(decoded.section("gamma").unwrap().len(), 256);
        assert!(matches!(
            decoded.section("delta"),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = Snapshot::new();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = sample().encode();
        bytes[8] = 99;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_prefix_truncation_is_detected() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..n]).unwrap_err();
            assert!(err.is_detected_corruption(), "prefix {n}: {err}");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn implausible_section_count_is_rejected_cheaply() {
        let mut bytes = Snapshot::new().encode();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
