//! The typed error surface of the snapshot crate.
//!
//! Every failure mode a checkpoint store or load can hit is enumerated
//! here. Library code in this crate never panics on bad input or failed
//! IO — all failures surface as a [`SnapshotError`] (enforced by the
//! `snapshot-io` lint rule), so a corrupted artifact is always *detected*,
//! never silently loaded and never a crash.

use std::fmt;

/// Why a snapshot operation failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying IO operation failed (or a fault was injected).
    Io {
        /// Which [`SnapshotIo`](crate::io::SnapshotIo) operation failed.
        op: &'static str,
        /// The file the operation targeted.
        name: String,
        /// The underlying error, rendered as text.
        detail: String,
    },
    /// The file does not start with the snapshot magic — not a snapshot
    /// (or one whose very first bytes were destroyed).
    BadMagic,
    /// The container claims a format version newer than this build
    /// understands; loading would misinterpret the payload.
    UnsupportedVersion(u32),
    /// Structural or checksum validation failed; the payload cannot be
    /// trusted. The string names the first check that tripped.
    Corrupt(String),
    /// The snapshot was produced under a different training or model
    /// configuration; resuming would silently diverge from the original
    /// trajectory, so it is rejected instead.
    ConfigMismatch(String),
    /// No snapshot exists at the given location.
    NoSnapshot,
}

impl SnapshotError {
    /// Wraps a `std::io` failure with the operation and file it hit.
    pub fn io(op: &'static str, name: &str, err: &std::io::Error) -> Self {
        SnapshotError::Io {
            op,
            name: name.to_string(),
            detail: err.to_string(),
        }
    }

    /// True for the variants that mean "the artifact itself is bad"
    /// (as opposed to IO failures or a missing file). The fault sweeps
    /// assert that corruption is reported through these and only these.
    pub fn is_detected_corruption(&self) -> bool {
        matches!(
            self,
            SnapshotError::BadMagic
                | SnapshotError::UnsupportedVersion(_)
                | SnapshotError::Corrupt(_)
        )
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, name, detail } => {
                write!(f, "snapshot io: {op} `{name}`: {detail}")
            }
            SnapshotError::BadMagic => write!(f, "snapshot: bad magic (not a snapshot file)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot: unsupported format version {v}")
            }
            SnapshotError::Corrupt(detail) => write!(f, "snapshot: corrupt: {detail}"),
            SnapshotError::ConfigMismatch(detail) => {
                write!(f, "snapshot: config mismatch: {detail}")
            }
            SnapshotError::NoSnapshot => write!(f, "snapshot: no snapshot found"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_operation_and_file() {
        let e = SnapshotError::io(
            "append",
            "snap-1.inerf.tmp",
            &std::io::Error::other("disk gone"),
        );
        let s = e.to_string();
        assert!(s.contains("append"), "{s}");
        assert!(s.contains("snap-1.inerf.tmp"), "{s}");
        assert!(s.contains("disk gone"), "{s}");
    }

    #[test]
    fn corruption_classification() {
        assert!(SnapshotError::BadMagic.is_detected_corruption());
        assert!(SnapshotError::UnsupportedVersion(9).is_detected_corruption());
        assert!(SnapshotError::Corrupt("x".into()).is_detected_corruption());
        assert!(!SnapshotError::NoSnapshot.is_detected_corruption());
        assert!(!SnapshotError::ConfigMismatch("x".into()).is_detected_corruption());
    }
}
