//! Snapshot naming, the atomic write protocol, keep-last-K rotation,
//! and crash recovery.
//!
//! A checkpoint for step `S` is written as:
//!
//! 1. `create  snap-<S>.inerf.tmp`
//! 2. `append` the encoded container in bounded chunks
//! 3. `flush_sync` — the bytes are durable but the name is not live yet
//! 4. `rename  snap-<S>.inerf.tmp → snap-<S>.inerf` — the commit point
//! 5. prune: delete stale `.tmp` residue and snapshots beyond keep-last-K
//!
//! A crash strictly before step 4 leaves at worst a `.tmp` file the
//! recovery scan ignores; a crash during or after step 4 leaves either
//! the old set or the new snapshot — rename is the single atomic commit.
//! Recovery ([`load_latest`]) walks the surviving names newest-first and
//! returns the first container that passes *full* validation, so even a
//! non-atomic rename (torn metadata) degrades to "detected and skipped",
//! never to silently loading garbage.

use crate::error::SnapshotError;
use crate::format::Snapshot;
use crate::io::SnapshotIo;

/// Prefix of every snapshot file name.
pub const SNAPSHOT_PREFIX: &str = "snap-";
/// Suffix of every committed snapshot file name.
pub const SNAPSHOT_SUFFIX: &str = ".inerf";
/// Suffix marking an uncommitted write in progress.
pub const TMP_SUFFIX: &str = ".tmp";
/// Appends are bounded so a kill-point sweep exercises torn multi-chunk
/// writes on realistically sized snapshots.
const WRITE_CHUNK: usize = 64 * 1024;

/// File name of the snapshot for `step` (zero-padded so lexicographic
/// and numeric order agree).
pub fn snapshot_name(step: u64) -> String {
    format!("{SNAPSHOT_PREFIX}{step:020}{SNAPSHOT_SUFFIX}")
}

/// Parses a committed snapshot name back to its step, if it is one.
pub fn snapshot_step(name: &str) -> Option<u64> {
    name.strip_prefix(SNAPSHOT_PREFIX)?
        .strip_suffix(SNAPSHOT_SUFFIX)?
        .parse()
        .ok()
}

/// Writes `snap` for `step` through the atomic protocol, then prunes
/// old snapshots and stale temp files down to `keep_last` (minimum 1).
pub fn write_snapshot(
    io: &mut dyn SnapshotIo,
    step: u64,
    snap: &Snapshot,
    keep_last: usize,
) -> Result<(), SnapshotError> {
    let bytes = snap.encode();
    let name = snapshot_name(step);
    let tmp = format!("{name}{TMP_SUFFIX}");
    io.create(&tmp)?;
    for chunk in bytes.chunks(WRITE_CHUNK) {
        io.append(&tmp, chunk)?;
    }
    io.flush_sync(&tmp)?;
    io.rename(&tmp, &name)?;
    prune(io, keep_last.max(1))
}

/// Deletes stale `.tmp` residue and all but the newest `keep` snapshots.
fn prune(io: &mut dyn SnapshotIo, keep: usize) -> Result<(), SnapshotError> {
    let names = io.list()?;
    let mut steps: Vec<u64> = names.iter().filter_map(|n| snapshot_step(n)).collect();
    steps.sort_unstable_by(|a, b| b.cmp(a));
    for &s in steps.iter().skip(keep) {
        io.remove(&snapshot_name(s))?;
    }
    for n in names.iter().filter(|n| n.ends_with(TMP_SUFFIX)) {
        io.remove(n)?;
    }
    Ok(())
}

/// Steps of all committed snapshots, newest first.
pub fn list_snapshots(io: &dyn SnapshotIo) -> Result<Vec<u64>, SnapshotError> {
    let mut steps: Vec<u64> = io.list()?.iter().filter_map(|n| snapshot_step(n)).collect();
    steps.sort_unstable_by(|a, b| b.cmp(a));
    Ok(steps)
}

/// Recovers the newest loadable snapshot.
///
/// Scans committed names newest-first and returns the first container
/// that passes full validation; torn or corrupted files (crash residue)
/// are skipped. Returns [`SnapshotError::NoSnapshot`] if none exist, or
/// the last validation error if snapshots exist but none load.
pub fn load_latest(io: &dyn SnapshotIo) -> Result<(u64, Snapshot), SnapshotError> {
    let mut last_err = SnapshotError::NoSnapshot;
    for s in list_snapshots(io)? {
        match io
            .read(&snapshot_name(s))
            .and_then(|b| Snapshot::decode(&b))
        {
            Ok(snap) => return Ok((s, snap)),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    fn snap(marker: u8) -> Snapshot {
        let mut s = Snapshot::new();
        s.push("payload", vec![marker; 100]);
        s
    }

    #[test]
    fn names_round_trip_and_sort_numerically() {
        assert_eq!(snapshot_step(&snapshot_name(0)), Some(0));
        assert_eq!(snapshot_step(&snapshot_name(u64::MAX)), Some(u64::MAX));
        assert!(snapshot_name(9) < snapshot_name(10)); // lexicographic == numeric
        assert_eq!(snapshot_step("snap-5.inerf.tmp"), None);
        assert_eq!(snapshot_step("other.bin"), None);
    }

    #[test]
    fn rotation_keeps_last_k_and_clears_tmp_residue() {
        let mut io = MemIo::new();
        io.insert("stale.inerf.tmp", vec![0; 3]);
        for step in 1..=5 {
            write_snapshot(&mut io, step, &snap(step as u8), 2).unwrap();
        }
        assert_eq!(list_snapshots(&io).unwrap(), vec![5, 4]);
        assert!(io.list().unwrap().iter().all(|n| !n.ends_with(TMP_SUFFIX)));
        let (step, loaded) = load_latest(&io).unwrap();
        assert_eq!(step, 5);
        assert_eq!(loaded.section("payload").unwrap(), &[5u8; 100][..]);
    }

    #[test]
    fn recovery_skips_a_corrupted_newest_snapshot() {
        let mut io = MemIo::new();
        write_snapshot(&mut io, 1, &snap(1), 3).unwrap();
        write_snapshot(&mut io, 2, &snap(2), 3).unwrap();
        // Corrupt the newest committed file in place.
        let name = snapshot_name(2);
        let mut bytes = io.read(&name).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        io.insert(&name, bytes);
        let (step, loaded) = load_latest(&io).unwrap();
        assert_eq!(step, 1);
        assert_eq!(loaded.section("payload").unwrap(), &[1u8; 100][..]);
    }

    #[test]
    fn empty_store_reports_no_snapshot() {
        let io = MemIo::new();
        assert!(matches!(load_latest(&io), Err(SnapshotError::NoSnapshot)));
    }

    #[test]
    fn all_corrupt_reports_the_validation_error() {
        let mut io = MemIo::new();
        io.insert(&snapshot_name(7), vec![0; 4]); // far too short
        assert!(matches!(load_latest(&io), Err(SnapshotError::Corrupt(_))));
    }
}
