//! The injectable IO layer behind the atomic write protocol.
//!
//! Everything the snapshot store does to storage goes through the
//! [`SnapshotIo`] trait — create, append, flush, rename, remove, list,
//! read — so the fault-injection harness ([`crate::fault::FaultIo`]) can
//! kill a "process" at any IO boundary and the recovery sweep can prove
//! the protocol safe. [`StdIo`] is the real filesystem backend;
//! [`MemIo`] is the in-memory backend the tests drive (its state after a
//! simulated crash is exactly what a kill at that boundary would leave
//! on disk: partially appended temp files stay visible).

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::SnapshotError;

/// Minimal storage interface the snapshot protocol is written against.
///
/// Names are flat (no directory components); the backend decides where
/// they live. All operations return the crate's typed error — backends
/// must not panic on IO failure.
pub trait SnapshotIo {
    /// Creates (or truncates) `name` and opens it for appending.
    fn create(&mut self, name: &str) -> Result<(), SnapshotError>;
    /// Appends `data` to a file previously opened with [`Self::create`].
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), SnapshotError>;
    /// Flushes buffered writes of `name` down to durable storage.
    fn flush_sync(&mut self, name: &str) -> Result<(), SnapshotError>;
    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), SnapshotError>;
    /// Deletes `name`.
    fn remove(&mut self, name: &str) -> Result<(), SnapshotError>;
    /// All file names currently present, sorted.
    fn list(&self) -> Result<Vec<String>, SnapshotError>;
    /// The full contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, SnapshotError>;
}

/// Real-filesystem backend: every name lives under one root directory.
#[derive(Debug)]
pub struct StdIo {
    root: PathBuf,
    open: BTreeMap<String, fs::File>,
}

impl StdIo {
    /// A backend rooted at `root` (created on first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        StdIo {
            root: root.into(),
            open: BTreeMap::new(),
        }
    }

    /// The directory this backend writes into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl SnapshotIo for StdIo {
    fn create(&mut self, name: &str) -> Result<(), SnapshotError> {
        fs::create_dir_all(&self.root).map_err(|e| SnapshotError::io("create", name, &e))?;
        let f =
            fs::File::create(self.path(name)).map_err(|e| SnapshotError::io("create", name, &e))?;
        self.open.insert(name.to_string(), f);
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), SnapshotError> {
        let f = self.open.get_mut(name).ok_or_else(|| SnapshotError::Io {
            op: "append",
            name: name.to_string(),
            detail: "file not open".to_string(),
        })?;
        f.write_all(data)
            .map_err(|e| SnapshotError::io("append", name, &e))
    }

    fn flush_sync(&mut self, name: &str) -> Result<(), SnapshotError> {
        let f = self.open.get_mut(name).ok_or_else(|| SnapshotError::Io {
            op: "flush",
            name: name.to_string(),
            detail: "file not open".to_string(),
        })?;
        f.flush()
            .map_err(|e| SnapshotError::io("flush", name, &e))?;
        f.sync_all()
            .map_err(|e| SnapshotError::io("sync", name, &e))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SnapshotError> {
        // Close the handle first; some platforms refuse to rename an
        // open file.
        self.open.remove(from);
        fs::rename(self.path(from), self.path(to))
            .map_err(|e| SnapshotError::io("rename", from, &e))
    }

    fn remove(&mut self, name: &str) -> Result<(), SnapshotError> {
        self.open.remove(name);
        fs::remove_file(self.path(name)).map_err(|e| SnapshotError::io("remove", name, &e))
    }

    fn list(&self) -> Result<Vec<String>, SnapshotError> {
        if !self.root.exists() {
            return Ok(Vec::new());
        }
        let entries = fs::read_dir(&self.root).map_err(|e| SnapshotError::io("list", ".", &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SnapshotError::io("list", ".", &e))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, SnapshotError> {
        fs::read(self.path(name)).map_err(|e| SnapshotError::io("read", name, &e))
    }
}

/// In-memory backend for tests and fault sweeps.
///
/// Semantics deliberately mirror a crashed filesystem: a file created
/// and partially appended is visible with exactly the bytes that landed
/// before the crash — there is no hidden buffering to hide a torn write.
#[derive(Debug, Clone, Default)]
pub struct MemIo {
    files: BTreeMap<String, Vec<u8>>,
}

impl MemIo {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a file directly (test setup).
    pub fn insert(&mut self, name: &str, bytes: Vec<u8>) {
        self.files.insert(name.to_string(), bytes);
    }

    /// Direct view of the stored files (test assertions).
    pub fn files(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.files
    }

    fn get_mut(&mut self, op: &'static str, name: &str) -> Result<&mut Vec<u8>, SnapshotError> {
        self.files.get_mut(name).ok_or_else(|| SnapshotError::Io {
            op,
            name: name.to_string(),
            detail: "no such file".to_string(),
        })
    }
}

impl SnapshotIo for MemIo {
    fn create(&mut self, name: &str) -> Result<(), SnapshotError> {
        self.files.insert(name.to_string(), Vec::new());
        Ok(())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), SnapshotError> {
        self.get_mut("append", name)?.extend_from_slice(data);
        Ok(())
    }

    fn flush_sync(&mut self, name: &str) -> Result<(), SnapshotError> {
        self.get_mut("flush", name).map(|_| ())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SnapshotError> {
        let bytes = self.files.remove(from).ok_or_else(|| SnapshotError::Io {
            op: "rename",
            name: from.to_string(),
            detail: "no such file".to_string(),
        })?;
        self.files.insert(to.to_string(), bytes);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), SnapshotError> {
        self.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SnapshotError::Io {
                op: "remove",
                name: name.to_string(),
                detail: "no such file".to_string(),
            })
    }

    fn list(&self) -> Result<Vec<String>, SnapshotError> {
        Ok(self.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, SnapshotError> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| SnapshotError::Io {
                op: "read",
                name: name.to_string(),
                detail: "no such file".to_string(),
            })
    }
}

/// Atomically replaces `path` with `bytes`: write to `<path>.tmp` in the
/// same directory, flush and sync, then rename over the target.
///
/// An interrupted writer leaves either the previous file intact or a
/// `.tmp` residue next to it — never a truncated target. This is the
/// same protocol the snapshot store uses, exposed plainly so the bench
/// harness JSON records and similar artifacts can share it.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_os = path.as_os_str().to_owned();
    tmp_os.push(".tmp");
    let tmp = PathBuf::from(tmp_os);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memio_mirrors_crash_visible_state() {
        let mut io = MemIo::new();
        io.create("a.tmp").unwrap();
        io.append("a.tmp", &[1, 2]).unwrap();
        io.append("a.tmp", &[3]).unwrap();
        // A crash here must leave the partial bytes visible.
        assert_eq!(io.read("a.tmp").unwrap(), vec![1, 2, 3]);
        io.flush_sync("a.tmp").unwrap();
        io.rename("a.tmp", "a").unwrap();
        assert_eq!(io.list().unwrap(), vec!["a"]);
        io.remove("a").unwrap();
        assert!(io.list().unwrap().is_empty());
        assert!(io.read("a").is_err());
        assert!(io.append("a", &[0]).is_err());
        assert!(io.remove("a").is_err());
    }

    #[test]
    fn stdio_round_trips_on_disk() {
        let root = std::env::temp_dir().join(format!("inerf-snap-io-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let mut io = StdIo::new(&root);
        io.create("x.tmp").unwrap();
        io.append("x.tmp", b"hello ").unwrap();
        io.append("x.tmp", b"world").unwrap();
        io.flush_sync("x.tmp").unwrap();
        io.rename("x.tmp", "x").unwrap();
        assert_eq!(io.read("x").unwrap(), b"hello world");
        assert_eq!(io.list().unwrap(), vec!["x"]);
        io.remove("x").unwrap();
        assert!(io.list().unwrap().is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn atomic_write_file_replaces_without_residue() {
        let root = std::env::temp_dir().join(format!("inerf-snap-aw-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        let target = root.join("report.json");
        atomic_write_file(&target, b"{\"v\":1}").unwrap();
        atomic_write_file(&target, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":2}");
        // No temp residue after a clean write.
        let names: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names, vec![std::ffi::OsString::from("report.json")]);
        fs::remove_dir_all(&root).unwrap();
    }
}
