//! Crash-safe training snapshots.
//!
//! A training run that can be killed at any byte boundary and resume
//! with a bit-identical loss trajectory needs three things, and this
//! crate provides exactly those, with no dependencies beyond `std`:
//!
//! * **A validated container** ([`Snapshot`], [`mod@format`]) — versioned,
//!   magic-tagged, with an FNV-1a-checksummed section index and
//!   per-section payload checksums. Any flipped bit, truncation or
//!   trailing garbage anywhere in the file is *detected* and reported as
//!   a typed [`SnapshotError`]; decoding never panics and never returns
//!   wrong data.
//! * **An atomic write protocol** ([`rotate`]) — temp file → flush →
//!   rename, with keep-last-K rotation and stale-temp cleanup. The
//!   rename is the single commit point, so a crash leaves either the
//!   previous checkpoint set or the new one, never a half-written
//!   artifact under a live name.
//! * **An injectable IO seam** ([`SnapshotIo`], [`io`], [`fault`]) —
//!   every storage touch goes through a trait, so the fault harness can
//!   simulate a kill at every create/append/flush/rename/remove
//!   boundary (including torn appends) and the test suite can prove the
//!   protocol safe instead of asserting it.
//!
//! The trainer-facing state capture (parameter stores, Adam moments,
//! RNG, config fingerprint) lives in `inerf_trainer::checkpoint`, which
//! encodes through [`codec`] into this container.
//!
//! # Example
//!
//! ```
//! use inerf_snapshot::{load_latest, write_snapshot, MemIo, Snapshot};
//!
//! let mut io = MemIo::new();
//! let mut snap = Snapshot::new();
//! snap.push("params", vec![1, 2, 3]);
//! write_snapshot(&mut io, 100, &snap, 2).unwrap();
//! let (step, loaded) = load_latest(&io).unwrap();
//! assert_eq!(step, 100);
//! assert_eq!(loaded.section("params").unwrap(), &[1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod checksum;
pub mod codec;
pub mod error;
pub mod fault;
pub mod format;
pub mod io;
pub mod rotate;

pub use error::SnapshotError;
pub use fault::FaultIo;
pub use format::{Snapshot, MAGIC, VERSION};
pub use io::{atomic_write_file, MemIo, SnapshotIo, StdIo};
pub use rotate::{
    list_snapshots, load_latest, snapshot_name, snapshot_step, write_snapshot, SNAPSHOT_PREFIX,
    SNAPSHOT_SUFFIX, TMP_SUFFIX,
};
