//! FNV-1a 64-bit checksum.
//!
//! Chosen over a table-driven CRC for implementation transparency: the
//! per-byte step `h' = (h ^ b) * PRIME` is injective in `b` for any fixed
//! `h` (the prime is odd, hence invertible mod 2^64), so corrupting any
//! single byte — including flipping a single bit — always changes the
//! digest. That is exactly the property the byte-flip sweep in
//! `tests/corruption.rs` pins end to end.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        let base: Vec<u8> = (0u8..=255).collect();
        let clean = fnv1a64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), clean, "flip byte {i} bit {bit}");
            }
        }
    }
}
