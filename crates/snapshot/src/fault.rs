//! Fault injection for the atomic write protocol.
//!
//! [`FaultIo`] wraps any [`SnapshotIo`] and fails the N-th mutating
//! operation, optionally landing a prefix of the failing append first (a
//! torn write — exactly what a power cut mid-`write(2)` leaves behind).
//! The crash-point sweep in `tests/fault_injection.rs` first dry-runs a
//! checkpoint write with [`FaultIo::counting`] to learn how many IO
//! boundaries it crosses, then replays it once per boundary, proving
//! recovery never sees silent corruption and never panics.
//!
//! Read-side operations (`list`, `read`) are passed through un-gated:
//! they model the *recovery* process, which runs after the crash.

use crate::error::SnapshotError;
use crate::io::SnapshotIo;

/// A `SnapshotIo` wrapper that injects one failure at a chosen
/// operation index.
#[derive(Debug)]
pub struct FaultIo<I> {
    inner: I,
    ops: u64,
    fail_at: Option<u64>,
    torn_prefix: Option<usize>,
}

impl<I: SnapshotIo> FaultIo<I> {
    /// Never fails; counts mutating operations (the dry-run mode).
    pub fn counting(inner: I) -> Self {
        FaultIo {
            inner,
            ops: 0,
            fail_at: None,
            torn_prefix: None,
        }
    }

    /// Fails the `op`-th mutating operation (0-based) and every
    /// operation after it — a crashed process does not come back.
    pub fn failing_at(inner: I, op: u64) -> Self {
        FaultIo {
            inner,
            ops: 0,
            fail_at: Some(op),
            torn_prefix: None,
        }
    }

    /// If the failing operation is an append, land the first `keep`
    /// bytes before failing (a torn write).
    pub fn with_torn_prefix(mut self, keep: usize) -> Self {
        self.torn_prefix = Some(keep);
        self
    }

    /// Mutating operations attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The wrapped backend — i.e. the storage state "after the crash".
    pub fn into_inner(self) -> I {
        self.inner
    }

    fn tripped(&mut self) -> bool {
        let n = self.ops;
        self.ops += 1;
        self.fail_at.is_some_and(|f| n >= f)
    }

    fn injected(op: &'static str, name: &str) -> SnapshotError {
        SnapshotError::Io {
            op,
            name: name.to_string(),
            detail: "injected fault".to_string(),
        }
    }
}

impl<I: SnapshotIo> SnapshotIo for FaultIo<I> {
    fn create(&mut self, name: &str) -> Result<(), SnapshotError> {
        if self.tripped() {
            return Err(Self::injected("create", name));
        }
        self.inner.create(name)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), SnapshotError> {
        if self.tripped() {
            if let Some(keep) = self.torn_prefix {
                let keep = keep.min(data.len());
                if keep > 0 {
                    self.inner.append(name, &data[..keep])?;
                }
            }
            return Err(Self::injected("append", name));
        }
        self.inner.append(name, data)
    }

    fn flush_sync(&mut self, name: &str) -> Result<(), SnapshotError> {
        if self.tripped() {
            return Err(Self::injected("flush", name));
        }
        self.inner.flush_sync(name)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), SnapshotError> {
        if self.tripped() {
            return Err(Self::injected("rename", from));
        }
        self.inner.rename(from, to)
    }

    fn remove(&mut self, name: &str) -> Result<(), SnapshotError> {
        if self.tripped() {
            return Err(Self::injected("remove", name));
        }
        self.inner.remove(name)
    }

    fn list(&self) -> Result<Vec<String>, SnapshotError> {
        self.inner.list()
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, SnapshotError> {
        self.inner.read(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    #[test]
    fn counting_mode_counts_without_failing() {
        let mut io = FaultIo::counting(MemIo::new());
        io.create("a").unwrap();
        io.append("a", &[1]).unwrap();
        io.flush_sync("a").unwrap();
        assert_eq!(io.ops(), 3);
    }

    #[test]
    fn fails_at_the_chosen_op_and_stays_down() {
        let mut io = FaultIo::failing_at(MemIo::new(), 1);
        io.create("a").unwrap();
        assert!(io.append("a", &[1]).is_err());
        // A crashed process never succeeds again.
        assert!(io.flush_sync("a").is_err());
        assert!(io.into_inner().read("a").unwrap().is_empty());
    }

    #[test]
    fn torn_prefix_lands_partial_bytes() {
        let mut io = FaultIo::failing_at(MemIo::new(), 1).with_torn_prefix(2);
        io.create("a").unwrap();
        assert!(io.append("a", &[1, 2, 3, 4]).is_err());
        assert_eq!(io.into_inner().read("a").unwrap(), vec![1, 2]);
    }
}
