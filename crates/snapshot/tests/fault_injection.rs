//! The crash-point sweep: kill the writer at every IO boundary and
//! prove recovery is always safe.
//!
//! For a checkpoint write on top of an existing checkpoint, every
//! injected fault must leave storage in one of exactly two recoverable
//! states: the *previous* snapshot loads clean (the write never
//! committed), or the *new* snapshot loads clean (the crash hit after
//! the rename commit point). Never silent corruption, never a panic.

use inerf_snapshot::{
    load_latest, snapshot_name, write_snapshot, FaultIo, MemIo, Snapshot, SnapshotError,
};

fn snapshot_with(tag_byte: u8, len: usize) -> Snapshot {
    let mut s = Snapshot::new();
    s.push("config", vec![tag_byte; 32]);
    s.push(
        "params",
        (0..len).map(|i| (i as u8).wrapping_mul(tag_byte)).collect(),
    );
    s
}

/// Number of mutating IO operations one checkpoint write performs.
fn count_write_ops(base: &MemIo, step: u64, snap: &Snapshot, keep: usize) -> u64 {
    let mut io = FaultIo::counting(base.clone());
    write_snapshot(&mut io, step, snap, keep).expect("dry run must succeed");
    io.ops()
}

/// Runs the full kill-point sweep for one torn-write configuration.
/// Returns the number of crash points exercised.
fn sweep(torn_prefix: Option<usize>) -> u64 {
    // Storage already holds a valid checkpoint at step 10 plus stale
    // temp residue from an earlier crash — the realistic starting state.
    let mut base = MemIo::new();
    write_snapshot(&mut base, 10, &snapshot_with(3, 1000), 2).expect("seed checkpoint");
    base.insert("snap-00000000000000000009.inerf.tmp", vec![0xAB; 17]);

    let old = snapshot_with(3, 1000);
    let new = snapshot_with(7, 1000);
    let total_ops = count_write_ops(&base, 20, &new, 2);
    assert!(total_ops >= 4, "protocol must cross several IO boundaries");

    for kill_at in 0..total_ops {
        let mut io = FaultIo::failing_at(base.clone(), kill_at);
        if let Some(keep) = torn_prefix {
            io = io.with_torn_prefix(keep);
        }
        let result = write_snapshot(&mut io, 20, &new, 2);
        assert!(
            matches!(result, Err(SnapshotError::Io { .. })),
            "kill point {kill_at}: injected fault must surface as a typed IO error"
        );
        // The "process" is dead; recovery runs over whatever survived.
        let survivor = io.into_inner();
        let (step, loaded) = load_latest(&survivor)
            .unwrap_or_else(|e| panic!("kill point {kill_at}: no checkpoint recoverable: {e}"));
        match step {
            10 => assert_eq!(
                loaded, old,
                "kill point {kill_at}: previous checkpoint mutated"
            ),
            20 => assert_eq!(
                loaded, new,
                "kill point {kill_at}: committed checkpoint wrong"
            ),
            other => panic!("kill point {kill_at}: recovered unexpected step {other}"),
        }
    }
    total_ops
}

#[test]
fn kill_at_every_io_boundary_clean_failure() {
    // The failing append lands nothing: crash strictly between writes.
    let points = sweep(Some(0));
    assert!(points > 0);
}

#[test]
fn kill_at_every_io_boundary_with_torn_append() {
    // The failing append lands a partial prefix: a torn write. Sweep a
    // few representative tear sizes.
    for keep in [1, 7, 64] {
        sweep(Some(keep));
    }
}

#[test]
fn crash_after_commit_keeps_the_new_snapshot() {
    // Killing during prune (after the rename) must leave the *new*
    // snapshot live even though old files were not yet cleaned up.
    let mut base = MemIo::new();
    write_snapshot(&mut base, 1, &snapshot_with(1, 200), 1).unwrap();
    let new = snapshot_with(2, 200);
    let total_ops = count_write_ops(&base, 2, &new, 1);
    // The last mutating op is the prune's remove of the old snapshot;
    // kill right before it.
    let mut io = FaultIo::failing_at(base, total_ops - 1);
    assert!(write_snapshot(&mut io, 2, &new, 1).is_err());
    let survivor = io.into_inner();
    let (step, loaded) = load_latest(&survivor).unwrap();
    assert_eq!((step, &loaded), (2, &new));
    // Both generations still on disk (prune never ran) — and the next
    // successful write cleans up.
    let mut survivor = survivor;
    write_snapshot(&mut survivor, 3, &snapshot_with(3, 200), 1).unwrap();
    assert_eq!(inerf_snapshot::list_snapshots(&survivor).unwrap(), vec![3]);
}

#[test]
fn truncation_at_every_length_is_detected_or_recovered() {
    // Simulate a torn committed file: for every possible truncation
    // length of the newest snapshot, recovery must either fall back to
    // the previous checkpoint or (at full length) load the new one.
    let mut base = MemIo::new();
    write_snapshot(&mut base, 1, &snapshot_with(5, 300), 2).unwrap();
    write_snapshot(&mut base, 2, &snapshot_with(9, 300), 2).unwrap();
    let old = snapshot_with(5, 300);
    let new = snapshot_with(9, 300);
    let name = snapshot_name(2);
    let full = base.read_file(&name);
    for cut in 0..=full.len() {
        let mut io = base.clone();
        io.insert(&name, full[..cut].to_vec());
        let (step, loaded) =
            load_latest(&io).unwrap_or_else(|e| panic!("cut {cut}: nothing recoverable: {e}"));
        if cut == full.len() {
            assert_eq!((step, &loaded), (2, &new), "cut {cut}");
        } else {
            assert_eq!(
                (step, &loaded),
                (1, &old),
                "cut {cut}: truncated file not skipped"
            );
        }
    }
}

/// Test-side convenience: read a file out of a `MemIo`.
trait ReadFile {
    fn read_file(&self, name: &str) -> Vec<u8>;
}
impl ReadFile for MemIo {
    fn read_file(&self, name: &str) -> Vec<u8> {
        use inerf_snapshot::SnapshotIo as _;
        self.read(name).expect("file present")
    }
}
