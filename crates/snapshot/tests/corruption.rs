//! The exhaustive corruption sweep (satellite: fuzz-style byte flips).
//!
//! Flip every byte of a small snapshot — one at a time, every bit of
//! every byte — and assert the loader always returns a checksum/format
//! error: never a panic, never a successful load of wrong data.

use inerf_snapshot::Snapshot;

fn small_snapshot() -> Snapshot {
    let mut s = Snapshot::new();
    s.push("config", vec![0x5A; 24]);
    s.push("rng", vec![1, 2, 3, 4, 5, 6, 7, 8]);
    s.push("params", (0u8..64).collect());
    s.push("empty", vec![]);
    s
}

#[test]
fn every_single_byte_flip_is_detected() {
    let clean = small_snapshot();
    let bytes = clean.encode();
    let mut checked = 0usize;
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << bit;
            match Snapshot::decode(&bad) {
                Err(e) if e.is_detected_corruption() => checked += 1,
                Err(e) => panic!("byte {i} bit {bit}: wrong error class: {e}"),
                Ok(loaded) => panic!(
                    "byte {i} bit {bit}: corrupted snapshot loaded silently \
                     (equal to clean: {})",
                    loaded == clean
                ),
            }
        }
    }
    assert_eq!(checked, bytes.len() * 8, "sweep must cover every bit");
}

#[test]
fn every_whole_byte_corruption_is_detected() {
    // Same sweep with the byte replaced by its complement — a different
    // corruption model than a single-bit flip.
    let bytes = small_snapshot().encode();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] = !bad[i];
        let err = Snapshot::decode(&bad)
            .err()
            .unwrap_or_else(|| panic!("byte {i}: complemented byte loaded silently"));
        assert!(err.is_detected_corruption(), "byte {i}: {err}");
    }
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic pseudo-garbage of many lengths: the decoder must
    // return typed errors (or, astronomically unlikely, a valid file),
    // but never panic. xorshift keeps the sweep reproducible.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut rand_byte = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 56) as u8
    };
    for len in 0..512 {
        let garbage: Vec<u8> = (0..len).map(|_| rand_byte()).collect();
        if let Err(e) = Snapshot::decode(&garbage) {
            assert!(
                e.is_detected_corruption(),
                "len {len}: garbage produced non-corruption error {e}"
            );
        }
    }
}
