//! The trainable multi-resolution hash table (iNGP Steps (1)–(3)).

use crate::config::HashGridConfig;
use crate::hash::{cube_level_indices, level_index};
use crate::sink::TraceSink;
use crate::trace::{CubeLookup, LookupTrace};
use inerf_geom::grid::GridLevel;
use inerf_geom::morton::morton_encode;
use inerf_geom::Vec3;
use inerf_mlp::{ParamStore, Precision};
use inerf_simd::f32x8;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The multi-resolution hash grid of trainable embedding vectors.
///
/// Stores `L × T × F` parameters behind a [`ParamStore`] (f32, or fp16
/// with f32 master weights — the paper's hardware storage format) plus an
/// f32 gradient buffer of the same shape. `encode*` implements the
/// forward pass (hash → gather → trilinear interpolation → concatenate);
/// [`HashGrid::backward`] scatter-adds the output gradient back into the
/// embedding gradients (the paper's "HT_b" step).
///
/// # Example
///
/// ```
/// use inerf_encoding::{HashGrid, HashGridConfig, HashFunction};
/// use inerf_geom::Vec3;
///
/// let mut grid = HashGrid::new(HashGridConfig::tiny(HashFunction::Morton), 1);
/// let p = Vec3::new(0.3, 0.6, 0.9);
/// let features = grid.encode(p);
/// // Backward of a unit output gradient accumulates into the table.
/// let ones = vec![1.0; features.len()];
/// grid.backward(p, &ones);
/// assert!(grid.gradients().iter().any(|&g| g != 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct HashGrid {
    config: HashGridConfig,
    levels: Vec<GridLevel>,
    store: ParamStore,
    gradients: Vec<f32>,
    /// Per-iteration touched-entry tracking for the sparse optimizer path
    /// (`None` in the dense reference mode).
    touch: Option<TouchTracking>,
}

/// Deduplicated touched-entry bookkeeping of one training iteration, at
/// *entry* granularity (global id `level * T + entry`; all `F` feature
/// scalars of an entry move together).
///
/// Dedup uses an epoch-stamp array instead of a hash set: `stamp[id] ==
/// epoch` ⇔ already collected this batch, O(1) per corner with no
/// clearing between batches (the epoch bump invalidates every stamp).
#[derive(Debug, Clone)]
struct TouchTracking {
    /// `L × T` per-entry epoch stamps.
    stamp: Vec<u32>,
    /// Current batch epoch; 0 = no batch begun yet.
    epoch: u32,
    /// Touched global entry ids, deduplicated, in collection order until
    /// [`HashGrid::finalize_touched`] sorts them ascending.
    entries: Vec<u32>,
    /// Prefix of `entries` already replayed by the lazy optimizer.
    synced: usize,
    /// Ascending scalar-index expansion of the sorted `entries`
    /// (`entry * F + k`), built by `finalize_touched`.
    scalars: Vec<u32>,
    /// Scratch for per-sync fp16 commit index lists.
    scratch: Vec<u32>,
}

/// Cached corner lookups of an encoded point batch: for each point and
/// level, the eight corner entry indices and trilinear weights, in corner
/// order. Produced by [`HashGrid::encode_batch_cached`], consumed by
/// [`HashGrid::backward_batch_cached`]; buffers are reused across batches.
#[derive(Debug, Clone, Default)]
pub struct LookupCache {
    levels: usize,
    points: usize,
    /// `points × levels × 8` entry indices.
    entries: Vec<u32>,
    /// `points × levels × 8` trilinear weights (0.0 = corner skipped).
    weights: Vec<f32>,
}

impl LookupCache {
    /// Number of cached points.
    pub fn point_count(&self) -> usize {
        self.points
    }

    fn reset(&mut self, levels: usize, points: usize) {
        self.levels = levels;
        self.points = points;
        let n = points * levels * 8;
        // Plain resize, no clear: the encode overwrites every element, so
        // zeroing the retained prefix would be a redundant memset of the
        // hot path's largest buffers.
        self.entries.resize(n, 0);
        self.weights.resize(n, 0.0);
    }
}

/// The eight trilinear corner weights of a cube, one [`f32x8`] lane per
/// corner index (bit 0 → +x, bit 1 → +y, bit 2 → +z). Each lane multiplies
/// `(wx * wy) * wz` in the same left-associated order as
/// [`GridLevel::corner_weight`], so every lane is bitwise-identical to the
/// scalar reference for its corner.
#[inline]
fn corner_weights8(frac: Vec3) -> f32x8 {
    let (x0, x1) = (1.0 - frac.x, frac.x);
    let (y0, y1) = (1.0 - frac.y, frac.y);
    let (z0, z1) = (1.0 - frac.z, frac.z);
    let wx = f32x8::from_array([x0, x1, x0, x1, x0, x1, x0, x1]);
    let wy = f32x8::from_array([y0, y0, y1, y1, y0, y0, y1, y1]);
    let wz = f32x8::from_array([z0, z0, z0, z0, z1, z1, z1, z1]);
    (wx * wy) * wz
}

impl HashGrid {
    /// Creates an f32-stored grid with iNGP's uniform init in
    /// `[-1e-4, 1e-4]` (the pre-mixed-precision behavior, bit-identical).
    pub fn new(config: HashGridConfig, seed: u64) -> Self {
        Self::with_precision(config, seed, Precision::F32)
    }

    /// [`HashGrid::new`] with the embedding table stored at `precision`.
    /// The initialization draws are identical; an fp16 grid quantizes them
    /// into its working copy and keeps the exact f32 master weights for
    /// the optimizer.
    pub fn with_precision(config: HashGridConfig, seed: u64, precision: Precision) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = config.parameter_count();
        let embeddings = (0..n).map(|_| rng.gen_range(-1e-4f32..1e-4)).collect();
        HashGrid {
            config,
            levels: config.build_levels(),
            store: ParamStore::new(precision, embeddings),
            gradients: vec![0.0; n],
            touch: None,
        }
    }

    /// The configuration this grid was built with.
    pub fn config(&self) -> &HashGridConfig {
        &self.config
    }

    /// The storage precision of the embedding table.
    pub fn precision(&self) -> Precision {
        self.store.precision()
    }

    /// Modeled bytes of the stored table at this grid's precision — the
    /// footprint the DRAM-traffic and table-size models consume. Half the
    /// f32 value for fp16 grids.
    pub fn storage_bytes(&self) -> usize {
        self.store.storage_bytes()
    }

    /// Modeled bytes of one table entry (`F` features at this precision),
    /// the row-geometry parameter of the DRAM request models.
    pub fn entry_bytes(&self) -> u32 {
        self.config.entry_bytes(self.precision())
    }

    /// Per-level grid descriptors.
    pub fn levels(&self) -> &[GridLevel] {
        &self.levels
    }

    /// The working parameter values compute reads (row-major: level,
    /// entry, feature) — quantized for fp16 grids.
    pub fn parameters(&self) -> &[f32] {
        self.store.values()
    }

    /// The parameter store (master weights + precision backend).
    pub fn parameter_store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store, for direct edits outside the optimizer
    /// path (tests, tooling).
    pub fn parameter_store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Accumulated gradients, same layout as [`HashGrid::parameters`].
    pub fn gradients(&self) -> &[f32] {
        &self.gradients
    }

    /// Master weights and gradients together, for an optimizer step that
    /// needs simultaneous mutable/shared access. Callers must follow the
    /// sweep with [`HashGrid::commit_parameters`] so fp16 grids
    /// re-quantize their working copy (a no-op for f32 grids).
    pub fn parameters_and_gradients_mut(&mut self) -> (&mut [f32], &[f32]) {
        (self.store.master_mut(), &self.gradients)
    }

    /// Re-quantizes the working copy after a master-weight sweep (RNE
    /// through the fp16 storage path); no-op for f32 grids.
    pub fn commit_parameters(&mut self) {
        self.store.commit();
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gradients.fill(0.0);
    }

    // --- Touched-entry tracking (sparse optimizer path) -------------------

    /// Switches the grid into touched-entry tracking mode for the sparse
    /// optimizer path. Callers then bracket each iteration with
    /// [`HashGrid::begin_touch_batch`], collect the read set via
    /// [`HashGrid::collect_touched_batch`] /
    /// [`HashGrid::collect_touched_point`] *before* encoding, and drive the
    /// optimizer through [`HashGrid::finalize_touched`] and the touched
    /// accessors.
    pub fn enable_touch_tracking(&mut self) {
        let entries_total = self.levels.len() * self.config.table_size() as usize;
        self.touch = Some(TouchTracking {
            stamp: vec![0; entries_total],
            epoch: 0,
            entries: Vec::new(),
            synced: 0,
            scalars: Vec::new(),
            scratch: Vec::new(),
        });
    }

    /// Whether touched-entry tracking is enabled.
    pub fn touch_tracking_enabled(&self) -> bool {
        self.touch.is_some()
    }

    /// Starts a new tracked iteration: zeroes the gradient slots of the
    /// *previous* iteration's touched entries (the backward scatter only
    /// ever writes corners of encoded points, and every such corner is in
    /// the collected read set — so this is bitwise-equivalent to a full
    /// [`HashGrid::zero_grad`] at O(touched) cost) and resets the touch
    /// list. Falls back to the full memset when tracking is disabled.
    pub fn begin_touch_batch(&mut self) {
        let f = self.config.features as usize;
        let HashGrid {
            touch, gradients, ..
        } = self;
        let Some(tr) = touch.as_mut() else {
            gradients.fill(0.0);
            return;
        };
        for &gid in &tr.entries {
            let base = gid as usize * f;
            gradients[base..base + f].fill(0.0);
        }
        tr.entries.clear();
        tr.scalars.clear();
        tr.synced = 0;
        if tr.epoch == u32::MAX {
            // Epoch wrap: every stamp value is stale-valid, so reset them.
            tr.stamp.fill(0);
            tr.epoch = 1;
        } else {
            tr.epoch += 1;
        }
    }

    /// Records the eight corner entries of every level of `p` into the
    /// touched set (deduplicated). This is exactly the read set of
    /// [`HashGrid::encode_into`] for `p` — a superset of the backward
    /// scatter's write set, which skips zero-weight corners. No-op when
    /// tracking is disabled.
    pub fn collect_touched_point(&mut self, p: Vec3) {
        let t = self.config.table_size();
        let hash = self.config.hash;
        let HashGrid { touch, levels, .. } = self;
        let Some(tr) = touch.as_mut() else { return };
        debug_assert!(tr.epoch > 0, "collect before begin_touch_batch");
        for (li, level) in levels.iter().enumerate() {
            let (base, _) = level.cube_of(p);
            let entries = cube_level_indices(hash, level, base, t);
            let level_base = li * t as usize;
            for &e in &entries {
                let gid = level_base + e as usize;
                if tr.stamp[gid] != tr.epoch {
                    tr.stamp[gid] = tr.epoch;
                    tr.entries.push(gid as u32);
                }
            }
        }
    }

    /// [`HashGrid::collect_touched_point`] over a point slice.
    pub fn collect_touched_batch(&mut self, points: &[Vec3]) {
        for &p in points {
            self.collect_touched_point(p);
        }
    }

    /// Computes every corner entry and trilinear weight of `points` into
    /// `cache` *without* gathering features — the batched engine's sparse
    /// prepass. The cache slots are bitwise-identical to what
    /// [`HashGrid::encode_batch_cached`] would record, so a later
    /// gather-only encode ([`HashGrid::encode_tile_bt_from_cache`]) and
    /// the backward scatter can both replay it. Unlike the encode this
    /// reads no table values, so it may run *before* the lazy optimizer
    /// has replayed the batch's entries.
    pub fn fill_cache(&self, points: &[Vec3], cache: &mut LookupCache) {
        cache.reset(self.levels.len(), points.len());
        let t = self.config.table_size();
        let hash = self.config.hash;
        inerf_simd::vectorize(|| {
            for (pi, &p) in points.iter().enumerate() {
                for (li, level) in self.levels.iter().enumerate() {
                    let (base, frac) = level.cube_of(p);
                    let entries = cube_level_indices(hash, level, base, t);
                    let corner_base = (pi * self.levels.len() + li) * 8;
                    corner_weights8(frac)
                        .write_to(&mut cache.weights[corner_base..corner_base + 8]);
                    cache.entries[corner_base..corner_base + 8].copy_from_slice(&entries);
                }
            }
        });
    }

    /// [`HashGrid::collect_touched_point`] driven by a pre-filled
    /// [`LookupCache`] instead of re-deriving cube geometry and hashes:
    /// scans the cached corner entries in point order, so the collected
    /// (deduplicated) entry sequence is identical to
    /// [`HashGrid::collect_touched_batch`] over the same points. No-op
    /// when tracking is disabled.
    pub fn collect_touched_cache(&mut self, cache: &LookupCache) {
        let t = self.config.table_size() as usize;
        let HashGrid { touch, levels, .. } = self;
        let Some(tr) = touch.as_mut() else { return };
        debug_assert_eq!(cache.levels, levels.len(), "cache level mismatch");
        debug_assert!(tr.epoch > 0, "collect before begin_touch_batch");
        let mut slot = 0usize;
        for _ in 0..cache.points {
            for li in 0..cache.levels {
                let level_base = li * t;
                for &e in &cache.entries[slot..slot + 8] {
                    let gid = level_base + e as usize;
                    if tr.stamp[gid] != tr.epoch {
                        tr.stamp[gid] = tr.epoch;
                        tr.entries.push(gid as u32);
                    }
                }
                slot += 8;
            }
        }
    }

    /// The touched entries collected since the last sync cursor advance,
    /// together with the mutable master weights — the inputs of a lazy
    /// optimizer replay. Follow with [`HashGrid::mark_touched_synced`].
    pub fn unsynced_touched_and_master(&mut self) -> (&[u32], &mut [f32]) {
        let HashGrid { touch, store, .. } = self;
        match touch.as_ref() {
            Some(tr) => (&tr.entries[tr.synced..], store.master_mut()),
            None => (&[], store.master_mut()),
        }
    }

    /// Advances the sync cursor past every collected entry and, for fp16
    /// grids, re-quantizes the working copy of exactly those entries (the
    /// replay may have moved their master weights, and the forward pass is
    /// about to read them).
    pub fn mark_touched_synced(&mut self) {
        let f = self.config.features as usize;
        let HashGrid { touch, store, .. } = self;
        let Some(tr) = touch.as_mut() else { return };
        tr.scratch.clear();
        for &gid in &tr.entries[tr.synced..] {
            let base = gid as usize * f;
            for k in 0..f {
                tr.scratch.push((base + k) as u32);
            }
        }
        store.commit_indices(&tr.scratch);
        tr.synced = tr.entries.len();
    }

    /// Freezes this iteration's touched set for the optimizer step: sorts
    /// the entry list ascending and expands it into ascending scalar
    /// indices. Ascending order makes a touched-only clip-norm sweep
    /// accumulate in exactly the dense index order (the skipped terms are
    /// exact `+0.0` contributions).
    pub fn finalize_touched(&mut self) {
        let f = self.config.features as usize;
        let Some(tr) = self.touch.as_mut() else {
            return;
        };
        debug_assert_eq!(
            tr.synced,
            tr.entries.len(),
            "finalize with unsynced entries: the forward read stale values"
        );
        // Ascending order is load-bearing (the clip-norm f64 accumulation
        // order must match the dense sweep), but how we get there is not:
        // above ~1/16 occupancy a sequential scan of the stamp array beats
        // sorting the collection-order list and yields the same set in the
        // same ascending order.
        if tr.entries.len() >= tr.stamp.len() / 16 {
            tr.entries.clear();
            let epoch = tr.epoch;
            tr.entries.extend(
                tr.stamp
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s == epoch)
                    .map(|(id, _)| id as u32),
            );
            tr.synced = tr.entries.len();
        } else {
            tr.entries.sort_unstable();
        }
        tr.scalars.clear();
        for &gid in &tr.entries {
            let base = gid as usize * f;
            for k in 0..f {
                tr.scalars.push((base + k) as u32);
            }
        }
    }

    /// This iteration's touched entry ids (sorted after
    /// [`HashGrid::finalize_touched`], collection order before).
    pub fn touched_entries(&self) -> &[u32] {
        match &self.touch {
            Some(tr) => &tr.entries,
            None => &[],
        }
    }

    /// The ascending touched scalar indices plus the master-weight and
    /// gradient buffers — everything a sparse optimizer step needs.
    /// Call after [`HashGrid::finalize_touched`].
    pub fn touched_scalars_master_grads(&mut self) -> (&[u32], &mut [f32], &[f32]) {
        let HashGrid {
            touch,
            store,
            gradients,
            ..
        } = self;
        match touch.as_ref() {
            Some(tr) => (&tr.scalars, store.master_mut(), &gradients[..]),
            None => (&[], store.master_mut(), &gradients[..]),
        }
    }

    /// [`HashGrid::touched_scalars_master_grads`] with the whole
    /// [`ParamStore`] instead of just the master slice, for fused
    /// optimizer steps ([`inerf_mlp::AdamState::step_sparse_store`]) that
    /// re-quantize each fp16 working scalar inside the update loop rather
    /// than in a separate [`HashGrid::commit_touched`] pass.
    pub fn touched_scalars_store_grads(&mut self) -> (&[u32], &mut ParamStore, &[f32]) {
        let HashGrid {
            touch,
            store,
            gradients,
            ..
        } = self;
        match touch.as_ref() {
            Some(tr) => (&tr.scalars, store, &gradients[..]),
            None => (&[], store, &gradients[..]),
        }
    }

    /// Re-quantizes the fp16 working copy of this iteration's touched
    /// scalars after the optimizer step (no-op for f32 grids).
    pub fn commit_touched(&mut self) {
        let HashGrid { touch, store, .. } = self;
        if let Some(tr) = touch.as_ref() {
            store.commit_indices(&tr.scalars);
        }
    }

    #[inline]
    fn base_offset(&self, level: u32, entry: u32) -> usize {
        let t = self.config.table_size() as usize;
        let f = self.config.features as usize;
        ((level as usize * t) + entry as usize) * f
    }

    /// Encodes a point in `[0,1]^3` into `L*F` features.
    pub fn encode(&self, p: Vec3) -> Vec<f32> {
        let mut out = vec![0.0; self.config.feature_dim()];
        self.encode_into(p, &mut out);
        out
    }

    /// Encodes into a caller-provided buffer of length `L*F`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != feature_dim()`.
    pub fn encode_into(&self, p: Vec3, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.config.feature_dim(),
            "output buffer size mismatch"
        );
        let f = self.config.features as usize;
        let t = self.config.table_size();
        let emb = self.store.values();
        for (li, level) in self.levels.iter().enumerate() {
            let (base, frac) = level.cube_of(p);
            let slot = &mut out[li * f..(li + 1) * f];
            slot.fill(0.0);
            for c in 0..8u8 {
                let w = GridLevel::corner_weight(frac, c);
                if w == 0.0 {
                    continue;
                }
                let entry = level_index(self.config.hash, level, base.corner(c), t);
                let off = self.base_offset(li as u32, entry);
                for (k, s) in slot.iter_mut().enumerate() {
                    *s += w * emb[off + k];
                }
            }
        }
    }

    /// Encodes a batch of points into a caller-owned row-major feature
    /// matrix of `points.len() × feature_dim()` values. Row `i` is exactly
    /// [`HashGrid::encode_into`] of `points[i]`, so the batched path is
    /// bitwise-identical to the scalar reference.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != points.len() * feature_dim()`.
    pub fn encode_batch(&self, points: &[Vec3], out: &mut [f32]) {
        let dim = self.config.feature_dim();
        assert_eq!(
            out.len(),
            points.len() * dim,
            "feature matrix size mismatch"
        );
        for (p, row) in points.iter().zip(out.chunks_exact_mut(dim)) {
            self.encode_into(*p, row);
        }
    }

    /// [`HashGrid::encode_batch`] that also appends each point's cube
    /// lookups to `trace`, in point order — the same stream a scalar
    /// [`HashGrid::encode_with_trace`] loop would record.
    pub fn encode_batch_with_trace(
        &self,
        points: &[Vec3],
        out: &mut [f32],
        trace: &mut LookupTrace,
    ) {
        self.encode_batch_with_sink(points, out, trace);
    }

    /// [`HashGrid::encode_batch`] that streams each point's cube lookups
    /// into `sink`, in point order, at constant memory. Does *not* emit
    /// `end_batch` — the caller owns iteration boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != points.len() * feature_dim()`.
    pub fn encode_batch_with_sink(
        &self,
        points: &[Vec3],
        out: &mut [f32],
        sink: &mut (impl TraceSink + ?Sized),
    ) {
        let dim = self.config.feature_dim();
        assert_eq!(
            out.len(),
            points.len() * dim,
            "feature matrix size mismatch"
        );
        for (p, row) in points.iter().zip(out.chunks_exact_mut(dim)) {
            self.encode_with_sink(*p, row, sink);
        }
    }

    /// Batched backward pass: scatter-adds row `i` of the `n × feature_dim`
    /// gradient matrix `d_features` for `points[i]`, in point order. The
    /// scatter is kept sequential on purpose: a fixed accumulation order
    /// makes training bitwise-deterministic regardless of how many threads
    /// computed `d_features`.
    ///
    /// # Panics
    ///
    /// Panics if `d_features.len() != points.len() * feature_dim()`.
    pub fn backward_batch(&mut self, points: &[Vec3], d_features: &[f32]) {
        let dim = self.config.feature_dim();
        assert_eq!(
            d_features.len(),
            points.len() * dim,
            "gradient matrix size mismatch"
        );
        for (p, row) in points.iter().zip(d_features.chunks_exact(dim)) {
            self.backward(*p, row);
        }
    }

    /// [`HashGrid::encode_batch`] that additionally records every corner's
    /// table entry and trilinear weight in `cache`, so the backward scatter
    /// can skip re-deriving cube geometry and re-hashing all 8·L corners
    /// per point (the index calculation the paper's accelerator dedicates
    /// INT32 PEs to). Features and lookups are identical to the plain
    /// batched/scalar paths.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != points.len() * feature_dim()`.
    pub fn encode_batch_cached(&self, points: &[Vec3], out: &mut [f32], cache: &mut LookupCache) {
        let dim = self.config.feature_dim();
        assert_eq!(
            out.len(),
            points.len() * dim,
            "feature matrix size mismatch"
        );
        cache.reset(self.levels.len(), points.len());
        inerf_simd::vectorize(|| {
            for (pi, (p, row)) in points.iter().zip(out.chunks_exact_mut(dim)).enumerate() {
                self.encode_point_cached(pi, *p, row, cache);
            }
        });
    }

    /// Sizes `cache` for a `points`-point batch that will be filled tile by
    /// tile through [`HashGrid::encode_tile_bt_cached`].
    pub fn prepare_cache(&self, cache: &mut LookupCache, points: usize) {
        cache.reset(self.levels.len(), points);
    }

    /// Fused-forward building block: encodes points
    /// `tile_base..tile_base + bn` into their rows of the full feature
    /// matrix `out` *and* scatters the same values into a block-transposed
    /// `feature_dim × lane_stride` GEMM tile (`tile[i * lane_stride + p]` =
    /// feature `i` of point `tile_base + p`) while the freshly computed row
    /// is still cache-hot — this is how encoded features stream straight
    /// into the first MLP GEMM without a chunk-sized SoA round-trip.
    ///
    /// `cache` must have been sized with [`HashGrid::prepare_cache`] for
    /// the whole batch. Rows and cache slots written here are
    /// bitwise-identical to [`HashGrid::encode_batch_cached`]. Callers are
    /// expected to run this inside an [`inerf_simd::vectorize`] frame (the
    /// fused MLP driver does); it is dispatch-free itself.
    ///
    /// # Panics
    ///
    /// Panics if the tile, row range, or cache shape is too small.
    #[allow(clippy::too_many_arguments)]
    pub fn encode_tile_bt_cached(
        &self,
        points: &[Vec3],
        tile_base: usize,
        bn: usize,
        lane_stride: usize,
        out: &mut [f32],
        tile: &mut [f32],
        cache: &mut LookupCache,
    ) {
        let dim = self.config.feature_dim();
        assert!(bn <= lane_stride, "tile narrower than the block");
        assert!(tile.len() >= dim * lane_stride, "tile buffer too small");
        for p in 0..bn {
            let pi = tile_base + p;
            let row = &mut out[pi * dim..(pi + 1) * dim];
            self.encode_point_cached(pi, points[pi], row, cache);
            for (i, &v) in row.iter().enumerate() {
                tile[i * lane_stride + p] = v;
            }
        }
    }

    /// [`HashGrid::encode_tile_bt_cached`] driven by a cache that was
    /// already filled by [`HashGrid::fill_cache`]: gathers and
    /// interpolates from the recorded corner entries/weights without
    /// re-deriving cube geometry or hashes. Rows and tiles are
    /// bitwise-identical to the computing variant — same corner order,
    /// same zero-weight skip, same accumulation shape.
    ///
    /// # Panics
    ///
    /// Panics if the tile, row range, or cache shape is too small.
    pub fn encode_tile_bt_from_cache(
        &self,
        tile_base: usize,
        bn: usize,
        lane_stride: usize,
        out: &mut [f32],
        tile: &mut [f32],
        cache: &LookupCache,
    ) {
        let dim = self.config.feature_dim();
        assert_eq!(cache.levels, self.levels.len(), "cache level mismatch");
        assert!(bn <= lane_stride, "tile narrower than the block");
        assert!(tile.len() >= dim * lane_stride, "tile buffer too small");
        for p in 0..bn {
            let pi = tile_base + p;
            let row = &mut out[pi * dim..(pi + 1) * dim];
            self.encode_point_from_cache(pi, row, cache);
            for (i, &v) in row.iter().enumerate() {
                tile[i * lane_stride + p] = v;
            }
        }
    }

    /// Gather-only counterpart of [`HashGrid::encode_point_cached`]: reads
    /// the cached corner entries/weights of point `pi` and accumulates
    /// `row` with the exact corner order, zero-weight skip, and
    /// register/slot accumulation shape of the computing path, so the row
    /// is bitwise-identical to it.
    #[inline]
    fn encode_point_from_cache(&self, pi: usize, row: &mut [f32], cache: &LookupCache) {
        let f = self.config.features as usize;
        let emb = self.store.values();
        for li in 0..cache.levels {
            let corner_base = (pi * cache.levels + li) * 8;
            let entries = &cache.entries[corner_base..corner_base + 8];
            let weights = &cache.weights[corner_base..corner_base + 8];
            let slot = &mut row[li * f..(li + 1) * f];
            slot.fill(0.0);
            if f == 2 {
                // Same F = 2 register fast path as the computing encode.
                let (mut s0, mut s1) = (0.0f32, 0.0f32);
                for (c, &entry) in entries.iter().enumerate() {
                    let w = weights[c];
                    if w == 0.0 {
                        continue;
                    }
                    let off = self.base_offset(li as u32, entry);
                    s0 += w * emb[off];
                    s1 += w * emb[off + 1];
                }
                slot[0] = s0;
                slot[1] = s1;
                continue;
            }
            for (c, &entry) in entries.iter().enumerate() {
                let w = weights[c];
                if w == 0.0 {
                    continue;
                }
                let off = self.base_offset(li as u32, entry);
                for (k, s) in slot.iter_mut().enumerate() {
                    *s += w * emb[off + k];
                }
            }
        }
    }

    /// Per-point core of the cached encode: interpolates `row` and records
    /// corner entries/weights in `cache` at point index `pi`. The eight
    /// corner weights are computed as one [`f32x8`] (lane = corner); the
    /// feature accumulation stays corner-ordered and scalar, so the row is
    /// bitwise-identical to [`HashGrid::encode_into`].
    #[inline]
    fn encode_point_cached(&self, pi: usize, p: Vec3, row: &mut [f32], cache: &mut LookupCache) {
        let f = self.config.features as usize;
        for (li, level) in self.levels.iter().enumerate() {
            self.encode_level_cached(pi, p, li, level, &mut row[li * f..(li + 1) * f], cache);
        }
    }

    /// One `(point, level)` slot of the cached encode: the level-major and
    /// point-major drivers both bottom out here, so their outputs are
    /// bitwise-identical by construction.
    #[inline]
    fn encode_level_cached(
        &self,
        pi: usize,
        p: Vec3,
        li: usize,
        level: &GridLevel,
        slot: &mut [f32],
        cache: &mut LookupCache,
    ) {
        let t = self.config.table_size();
        let emb = self.store.values();
        let (base, frac) = level.cube_of(p);
        let entries = cube_level_indices(self.config.hash, level, base, t);
        slot.fill(0.0);
        let corner_base = (pi * self.levels.len() + li) * 8;
        let weights = corner_weights8(frac);
        weights.write_to(&mut cache.weights[corner_base..corner_base + 8]);
        cache.entries[corner_base..corner_base + 8].copy_from_slice(&entries);
        if slot.len() == 2 {
            // F = 2 fast path (the paper's layout): both feature sums live
            // in registers across the eight corners instead of
            // read-modify-writing the slot per corner, which removes a
            // store-to-load chain from the gather loop. Corner order and
            // the zero-weight skip are unchanged, so the sums are
            // bitwise-identical to the generic loop below.
            let (mut s0, mut s1) = (0.0f32, 0.0f32);
            for (c, &entry) in entries.iter().enumerate() {
                let w = weights.lane(c);
                if w == 0.0 {
                    // Zero weight skips the corner in the scatter
                    // exactly like the reference backward pass.
                    continue;
                }
                let off = self.base_offset(li as u32, entry);
                s0 += w * emb[off];
                s1 += w * emb[off + 1];
            }
            slot[0] = s0;
            slot[1] = s1;
            return;
        }
        for (c, &entry) in entries.iter().enumerate() {
            let w = weights.lane(c);
            if w == 0.0 {
                // Zero weight skips the corner in the scatter
                // exactly like the reference backward pass.
                continue;
            }
            let off = self.base_offset(li as u32, entry);
            for (k, s) in slot.iter_mut().enumerate() {
                *s += w * emb[off + k];
            }
        }
    }

    /// Backward scatter driven by a [`LookupCache`] from
    /// [`HashGrid::encode_batch_cached`]: identical accumulation (same
    /// entries, weights, and order) to [`HashGrid::backward_batch`], minus
    /// the geometry/hash recomputation.
    ///
    /// # Panics
    ///
    /// Panics if the cache shape or gradient matrix disagrees with this
    /// grid.
    pub fn backward_batch_cached(&mut self, cache: &LookupCache, d_features: &[f32]) {
        let dim = self.config.feature_dim();
        assert_eq!(cache.levels, self.levels.len(), "cache level mismatch");
        assert_eq!(
            d_features.len(),
            cache.points * dim,
            "gradient matrix size mismatch"
        );
        inerf_simd::vectorize(|| {
            for pi in 0..cache.points {
                self.scatter_point_cached(cache, d_features, pi);
            }
        });
    }

    /// [`HashGrid::backward_batch_cached`] restricted to the given
    /// ascending point indices. Used by the compacted engine to skip rows
    /// whose gradient is exactly zero (samples after the transmittance hit
    /// 0.0): scattering a zero row only adds `w * ±0.0` into gradient
    /// slots, which never changes them (slots cannot be `-0.0` — they start
    /// at `+0.0` and IEEE addition of `±0.0` to any slot value preserves
    /// it), so skipping those rows is bitwise-identical to the dense
    /// scatter.
    ///
    /// # Panics
    ///
    /// Panics if the cache shape or gradient matrix disagrees with this
    /// grid, or a row index is out of range.
    pub fn backward_batch_cached_rows(
        &mut self,
        cache: &LookupCache,
        d_features: &[f32],
        rows: &[u32],
    ) {
        let dim = self.config.feature_dim();
        assert_eq!(cache.levels, self.levels.len(), "cache level mismatch");
        assert_eq!(
            d_features.len(),
            cache.points * dim,
            "gradient matrix size mismatch"
        );
        inerf_simd::vectorize(|| {
            for &pi in rows {
                self.scatter_point_cached(cache, d_features, pi as usize);
            }
        });
    }

    /// Per-point core of the cached scatter. The per-corner products
    /// `w * d` are computed as [`f32x8`] lanes (corner-major) for the
    /// paper's `F = 2` layout; the accumulation into the gradient table
    /// stays corner-ordered and scalar, so the result is bitwise-identical
    /// to [`HashGrid::backward`].
    #[inline]
    fn scatter_point_cached(&mut self, cache: &LookupCache, d_features: &[f32], pi: usize) {
        let f = self.config.features as usize;
        let t = self.config.table_size() as usize;
        let dim = self.config.feature_dim();
        let row = &d_features[pi * dim..(pi + 1) * dim];
        for li in 0..cache.levels {
            let dslot = &row[li * f..(li + 1) * f];
            let corner_base = (pi * cache.levels + li) * 8;
            let weights = f32x8::from_slice(&cache.weights[corner_base..corner_base + 8]);
            if f == 2 {
                // All 16 products in two vector multiplies; `w * d` rounds
                // exactly once either way, so lanes match the scalar path.
                let p0 = weights * f32x8::splat(dslot[0]);
                let p1 = weights * f32x8::splat(dslot[1]);
                for c in 0..8 {
                    if weights.lane(c) == 0.0 {
                        continue;
                    }
                    let entry = cache.entries[corner_base + c] as usize;
                    let off = (li * t + entry) * f;
                    self.gradients[off] += p0.lane(c);
                    self.gradients[off + 1] += p1.lane(c);
                }
            } else {
                for c in 0..8 {
                    let w = weights.lane(c);
                    if w == 0.0 {
                        continue;
                    }
                    let entry = cache.entries[corner_base + c] as usize;
                    let off = (li * t + entry) * f;
                    for (k, d) in dslot.iter().enumerate() {
                        self.gradients[off + k] += w * d;
                    }
                }
            }
        }
    }

    /// Encodes a point while appending its cube lookups to `trace`.
    pub fn encode_with_trace(&self, p: Vec3, out: &mut [f32], trace: &mut LookupTrace) {
        self.encode_with_sink(p, out, trace);
    }

    /// Encodes a point while streaming its cube lookups into `sink`
    /// (one `push_cube` per level plus one `end_point`), without any
    /// per-point allocation.
    pub fn encode_with_sink(&self, p: Vec3, out: &mut [f32], sink: &mut (impl TraceSink + ?Sized)) {
        self.encode_into(p, out);
        self.stream_point(p, sink);
    }

    /// The cube lookup of `p` at level index `li` — the building block of
    /// every trace path.
    #[inline]
    fn cube_lookup_at(&self, li: usize, p: Vec3) -> CubeLookup {
        let t = self.config.table_size();
        let level = &self.levels[li];
        let (base, _) = level.cube_of(p);
        let mut entries = [0u32; 8];
        for (c, e) in entries.iter_mut().enumerate() {
            *e = level_index(self.config.hash, level, base.corner(c as u8), t);
        }
        CubeLookup {
            level: level.index,
            entries,
            cube_id: morton_encode(base.x, base.y, base.z) | ((level.index as u64) << 58),
        }
    }

    /// Streams one point's cube lookups into `sink` without allocating:
    /// `push_cube` per level (in level order), then `end_point`.
    pub fn stream_point(&self, p: Vec3, sink: &mut (impl TraceSink + ?Sized)) {
        for li in 0..self.levels.len() {
            sink.push_cube(&self.cube_lookup_at(li, p));
        }
        sink.end_point();
    }

    /// Streams a whole point batch through `sink` in point order. Does
    /// *not* emit `end_batch` — the caller owns iteration boundaries.
    pub fn stream_batch(&self, points: &[Vec3], sink: &mut (impl TraceSink + ?Sized)) {
        for &p in points {
            self.stream_point(p, sink);
        }
    }

    /// Computes the per-level cube lookups (entry indices) of a point without
    /// touching the embedding data — the address stream of the HT step.
    pub fn cube_lookups(&self, p: Vec3) -> Vec<CubeLookup> {
        let mut out = Vec::with_capacity(self.levels.len());
        self.cube_lookups_into(p, &mut out);
        out
    }

    /// [`HashGrid::cube_lookups`] into a caller-owned buffer (cleared and
    /// refilled), so a point loop reuses one allocation for its lifetime.
    pub fn cube_lookups_into(&self, p: Vec3, out: &mut Vec<CubeLookup>) {
        out.clear();
        out.extend((0..self.levels.len()).map(|li| self.cube_lookup_at(li, p)));
    }

    /// Backward pass ("HT_b"): scatter-adds `d_features` (length `L*F`) into
    /// the embedding gradients at the entries that contributed to `p`.
    ///
    /// # Panics
    ///
    /// Panics if `d_features.len() != feature_dim()`.
    pub fn backward(&mut self, p: Vec3, d_features: &[f32]) {
        assert_eq!(
            d_features.len(),
            self.config.feature_dim(),
            "gradient size mismatch"
        );
        let f = self.config.features as usize;
        let t = self.config.table_size();
        for (li, level) in self.levels.iter().enumerate() {
            let (base, frac) = level.cube_of(p);
            let dslot = &d_features[li * f..(li + 1) * f];
            for c in 0..8u8 {
                let w = GridLevel::corner_weight(frac, c);
                if w == 0.0 {
                    continue;
                }
                let entry = level_index(self.config.hash, level, base.corner(c), t);
                let off = ((li * t as usize) + entry as usize) * f;
                for (k, d) in dslot.iter().enumerate() {
                    self.gradients[off + k] += w * d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashFunction;
    use proptest::prelude::*;

    fn grid(hash: HashFunction) -> HashGrid {
        HashGrid::new(HashGridConfig::tiny(hash), 7)
    }

    #[test]
    fn encode_dimension_and_finiteness() {
        let g = grid(HashFunction::Morton);
        let f = g.encode(Vec3::new(0.1, 0.5, 0.9));
        assert_eq!(f.len(), g.config().feature_dim());
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encode_is_continuous_across_small_steps() {
        let g = grid(HashFunction::Morton);
        let a = g.encode(Vec3::new(0.5, 0.5, 0.5));
        let b = g.encode(Vec3::new(0.5 + 1e-4, 0.5, 0.5));
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff < 1e-3, "encoding should be continuous, diff = {diff}");
    }

    #[test]
    fn encode_at_vertex_returns_vertex_embedding() {
        // At an exact lattice vertex of the coarsest level, only one corner
        // contributes per level (weights collapse to a delta).
        let mut g = grid(HashFunction::Morton);
        // Manually set a recognizable value at the level-0 entry of the cube
        // corner nearest to origin.
        let p = Vec3::new(0.0, 0.0, 0.0);
        let lookups = g.cube_lookups(p);
        let entry = lookups[0].entries[0];
        let f = g.config().features as usize;
        let off = entry as usize * f; // level 0 offset
        g.store.set(off, 0.5);
        g.store.set(off + 1, -0.25);
        let feats = g.encode(p);
        assert!((feats[0] - 0.5).abs() < 1e-6);
        assert!((feats[1] + 0.25).abs() < 1e-6);
    }

    #[test]
    fn backward_scatters_weighted_gradients() {
        let mut g = grid(HashFunction::Original);
        let p = Vec3::new(0.37, 0.51, 0.73);
        let dim = g.config().feature_dim();
        let dout = vec![1.0f32; dim];
        g.backward(p, &dout);
        // Per level, the 8 corner weights sum to 1, so the total scattered
        // gradient per feature channel per level is 1 (barring hash
        // collisions which still conserve the sum).
        let total: f32 = g.gradients().iter().sum();
        let expected = dim as f32; // L levels * F features * weight-sum 1
        assert!(
            (total - expected).abs() < 1e-4,
            "total {total} vs {expected}"
        );
        g.zero_grad();
        assert!(g.gradients().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // d(feature_k)/d(embedding_j) computed by backward must match the
        // finite-difference slope of encode().
        let mut g = grid(HashFunction::Morton);
        let p = Vec3::new(0.31, 0.62, 0.17);
        let dim = g.config().feature_dim();
        // Probe output channel 3 (level 1, feature 1 in tiny config).
        let k = 3;
        let mut dout = vec![0.0f32; dim];
        dout[k] = 1.0;
        g.zero_grad();
        g.backward(p, &dout);
        // Pick the first nonzero-gradient parameter and check numerically.
        let j = g
            .gradients()
            .iter()
            .position(|&v| v.abs() > 1e-6)
            .expect("some gradient");
        let analytic = g.gradients()[j];
        let eps = 1e-3f32;
        let orig = g.parameters()[j];
        g.store.set(j, orig + eps);
        let up = g.encode(p)[k];
        g.store.set(j, orig - eps);
        let down = g.encode(p)[k];
        g.store.set(j, orig);
        let numeric = (up - down) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-3,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn trace_records_one_cube_per_level() {
        let g = grid(HashFunction::Morton);
        let mut trace = LookupTrace::new();
        let mut buf = vec![0.0; g.config().feature_dim()];
        g.encode_with_trace(Vec3::splat(0.4), &mut buf, &mut trace);
        g.encode_with_trace(Vec3::splat(0.6), &mut buf, &mut trace);
        assert_eq!(trace.point_count(), 2);
        assert_eq!(trace.cubes().len(), 2 * g.config().levels as usize);
    }

    #[test]
    fn nearby_points_share_cube_id_at_coarse_level() {
        let g = grid(HashFunction::Morton);
        // Tiny config: coarsest level res 4 (cell 0.25), finest res 32
        // (cell ~0.031); a 0.05 step stays in the coarse cube but crosses a
        // fine cell boundary.
        let a = g.cube_lookups(Vec3::new(0.50, 0.50, 0.50));
        let b = g.cube_lookups(Vec3::new(0.55, 0.50, 0.50));
        // Coarsest level: same cube. Finest level: typically different.
        assert_eq!(a[0].cube_id, b[0].cube_id);
        let (a_last, b_last) = (
            a.last().expect("trace a is nonempty"),
            b.last().expect("trace b is nonempty"),
        );
        assert_ne!(a_last.cube_id, b_last.cube_id);
    }

    #[test]
    fn encode_batch_matches_scalar_bitwise() {
        let g = grid(HashFunction::Morton);
        let dim = g.config().feature_dim();
        let points: Vec<Vec3> = (0..23)
            .map(|i| {
                let t = i as f32 / 23.0;
                Vec3::new(t, (t * 7.3).fract(), (t * 3.1).fract())
            })
            .collect();
        let mut batch = vec![0.0; points.len() * dim];
        g.encode_batch(&points, &mut batch);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(
                &batch[i * dim..(i + 1) * dim],
                g.encode(*p).as_slice(),
                "point {i} diverged"
            );
        }
    }

    #[test]
    fn encode_batch_trace_identical_to_scalar_trace() {
        // The batched encode must generate the exact same lookup stream —
        // and therefore the same DRAM request counts — as a scalar loop.
        let g = grid(HashFunction::Original);
        let dim = g.config().feature_dim();
        let points: Vec<Vec3> = (0..31)
            .map(|i| {
                let t = i as f32 * 0.03;
                Vec3::new(t, 1.0 - t, (t * 5.7).fract())
            })
            .collect();
        let mut scalar_trace = LookupTrace::new();
        let mut row = vec![0.0; dim];
        for p in &points {
            g.encode_with_trace(*p, &mut row, &mut scalar_trace);
        }
        let mut batch_trace = LookupTrace::new();
        let mut batch = vec![0.0; points.len() * dim];
        g.encode_batch_with_trace(&points, &mut batch, &mut batch_trace);
        assert_eq!(scalar_trace, batch_trace);
        let levels = g.config().levels;
        let s = crate::requests::replay_with_register_cache(&scalar_trace, levels);
        let b = crate::requests::replay_with_register_cache(&batch_trace, levels);
        assert_eq!(s.total_row_requests(), b.total_row_requests());
    }

    #[test]
    fn cached_encode_and_scatter_match_reference_bitwise() {
        let mut plain = grid(HashFunction::Morton);
        let mut cached = grid(HashFunction::Morton);
        let dim = plain.config().feature_dim();
        let points: Vec<Vec3> = (0..29)
            .map(|i| {
                let t = i as f32 + 0.25;
                Vec3::new((t * 0.19).fract(), (t * 0.31).fract(), (t * 0.47).fract())
            })
            .collect();
        let mut f_plain = vec![0.0; points.len() * dim];
        let mut f_cached = vec![0.0; points.len() * dim];
        plain.encode_batch(&points, &mut f_plain);
        let mut cache = LookupCache::default();
        cached.encode_batch_cached(&points, &mut f_cached, &mut cache);
        assert_eq!(f_plain, f_cached);
        assert_eq!(cache.point_count(), points.len());
        let d: Vec<f32> = (0..points.len() * dim)
            .map(|i| (i as f32 * 0.07).cos())
            .collect();
        plain.backward_batch(&points, &d);
        cached.backward_batch_cached(&cache, &d);
        assert_eq!(plain.gradients(), cached.gradients());
    }

    #[test]
    fn tile_encode_matches_batched_encode_bitwise() {
        let g = grid(HashFunction::Morton);
        let dim = g.config().feature_dim();
        let points: Vec<Vec3> = (0..21)
            .map(|i| {
                let t = i as f32 + 0.125;
                Vec3::new((t * 0.23).fract(), (t * 0.37).fract(), (t * 0.53).fract())
            })
            .collect();
        let mut f_ref = vec![0.0; points.len() * dim];
        let mut cache_ref = LookupCache::default();
        g.encode_batch_cached(&points, &mut f_ref, &mut cache_ref);
        // Tile path: 16-point tiles plus a ragged tail, stale-lane tile.
        let stride = 16;
        let mut f_tile = vec![0.0; points.len() * dim];
        let mut cache_tile = LookupCache::default();
        g.prepare_cache(&mut cache_tile, points.len());
        let mut tile = vec![f32::NAN; dim * stride];
        let mut base = 0;
        while base < points.len() {
            let bn = stride.min(points.len() - base);
            g.encode_tile_bt_cached(
                &points,
                base,
                bn,
                stride,
                &mut f_tile,
                &mut tile,
                &mut cache_tile,
            );
            // The tile is the exact transpose of the freshly written rows.
            for p in 0..bn {
                for i in 0..dim {
                    assert_eq!(
                        tile[i * stride + p].to_bits(),
                        f_tile[(base + p) * dim + i].to_bits()
                    );
                }
            }
            base += bn;
        }
        assert_eq!(f_ref, f_tile);
        assert_eq!(cache_ref.entries, cache_tile.entries);
        assert_eq!(cache_ref.weights, cache_tile.weights);
    }

    #[test]
    fn rows_scatter_skipping_zero_rows_matches_dense_scatter() {
        let mut dense = grid(HashFunction::Morton);
        let mut sparse = grid(HashFunction::Morton);
        let dim = dense.config().feature_dim();
        let points: Vec<Vec3> = (0..19)
            .map(|i| {
                let t = i as f32 + 0.75;
                Vec3::new((t * 0.11).fract(), (t * 0.43).fract(), (t * 0.61).fract())
            })
            .collect();
        let mut feats = vec![0.0; points.len() * dim];
        let mut cache = LookupCache::default();
        dense.encode_batch_cached(&points, &mut feats, &mut cache);
        // Gradient matrix with a mix of live rows and exactly-zero rows
        // (including negative zeros, as the compacted backward produces).
        let mut d = vec![0.0f32; points.len() * dim];
        let live: Vec<u32> = (0..points.len() as u32).filter(|i| i % 3 != 1).collect();
        for &r in &live {
            for k in 0..dim {
                d[r as usize * dim + k] = ((r as usize * dim + k) as f32 * 0.29).sin();
            }
        }
        for i in (0..points.len()).filter(|i| i % 3 == 1) {
            for k in 0..dim {
                d[i * dim + k] = if k % 2 == 0 { 0.0 } else { -0.0 };
            }
        }
        dense.backward_batch_cached(&cache, &d);
        sparse.backward_batch_cached_rows(&cache, &d, &live);
        let (dg, sg) = (dense.gradients(), sparse.gradients());
        for i in 0..dg.len() {
            assert_eq!(dg[i].to_bits(), sg[i].to_bits(), "gradient {i}");
        }
    }

    #[test]
    fn fp16_grid_quantizes_storage_and_halves_modeled_bytes() {
        let full = grid(HashFunction::Morton);
        let half = HashGrid::with_precision(
            HashGridConfig::tiny(HashFunction::Morton),
            7,
            Precision::Fp16,
        );
        assert_eq!(half.precision(), Precision::Fp16);
        // Same init draws; the working copy is the RNE fp16 image.
        for (i, (&f, &h)) in full.parameters().iter().zip(half.parameters()).enumerate() {
            assert_eq!(h, inerf_mlp::fp16::quantize_f16(f), "entry {i}");
        }
        // The modeled storage and entry width are exactly half.
        assert_eq!(2 * half.storage_bytes(), full.storage_bytes());
        assert_eq!(full.entry_bytes(), 8); // F=2 x 4 B
        assert_eq!(half.entry_bytes(), 4); // F=2 x 2 B, the paper's width
                                           // Encoding still interpolates the (quantized) table sensibly.
        let p = Vec3::new(0.3, 0.6, 0.9);
        let ff = full.encode(p);
        let hf = half.encode(p);
        for (a, b) in ff.iter().zip(&hf) {
            assert!((a - b).abs() <= 2.0f32.powi(-11) * a.abs().max(1e-4));
        }
    }

    #[test]
    fn fp16_grid_master_weights_accumulate_small_updates() {
        let mut g = HashGrid::with_precision(
            HashGridConfig::tiny(HashFunction::Morton),
            3,
            Precision::Fp16,
        );
        // Pin the slot to an exactly fp16-representable value: at 0.5 the
        // fp16 ulp is 2^-12, so 50 steps of 1e-6 stay below the rounding
        // tie and must not commit, while their master-side sum survives.
        g.parameter_store_mut().set(0, 0.5);
        let before = g.parameters()[0];
        assert_eq!(before, 0.5);
        for _ in 0..50 {
            let (params, _) = g.parameters_and_gradients_mut();
            params[0] += 1e-6;
            g.commit_parameters();
        }
        assert_eq!(
            g.parameters()[0],
            before,
            "sub-resolution steps commit late"
        );
        assert!(g.parameter_store().master()[0] > 0.5);
        for _ in 0..1_000 {
            let (params, _) = g.parameters_and_gradients_mut();
            params[0] += 1e-6;
        }
        g.commit_parameters();
        assert!(
            g.parameters()[0] > before,
            "accumulated master updates must eventually surface"
        );
    }

    #[test]
    fn backward_batch_matches_scalar_bitwise() {
        let mut scalar = grid(HashFunction::Morton);
        let mut batched = grid(HashFunction::Morton);
        let dim = scalar.config().feature_dim();
        let points: Vec<Vec3> = (0..17)
            .map(|i| {
                let t = i as f32 + 0.5;
                Vec3::new((t * 0.17).fract(), (t * 0.29).fract(), (t * 0.41).fract())
            })
            .collect();
        let d: Vec<f32> = (0..points.len() * dim)
            .map(|i| (i as f32 * 0.13).sin())
            .collect();
        for (i, p) in points.iter().enumerate() {
            scalar.backward(*p, &d[i * dim..(i + 1) * dim]);
        }
        batched.backward_batch(&points, &d);
        assert_eq!(scalar.gradients(), batched.gradients());
    }

    #[test]
    fn touched_set_covers_scatter_writes_and_dedups() {
        let mut g = grid(HashFunction::Morton);
        g.enable_touch_tracking();
        let dim = g.config().feature_dim();
        let f = g.config().features as usize;
        let points: Vec<Vec3> = (0..37)
            .map(|i| {
                let t = i as f32 + 0.5;
                Vec3::new((t * 0.13).fract(), (t * 0.27).fract(), (t * 0.59).fract())
            })
            .collect();
        g.begin_touch_batch();
        g.collect_touched_batch(&points);
        // Deduplicated: no entry id appears twice.
        let mut seen = g.touched_entries().to_vec();
        let collected = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), collected, "touched list has duplicates");
        // Scatter a dense gradient batch: every nonzero gradient slot must
        // belong to a touched entry (write set ⊆ collected read set).
        let mut feats = vec![0.0; points.len() * dim];
        let mut cache = LookupCache::default();
        g.encode_batch_cached(&points, &mut feats, &mut cache);
        let d: Vec<f32> = (0..points.len() * dim)
            .map(|i| (i as f32 * 0.21).sin() + 0.05)
            .collect();
        g.backward_batch_cached(&cache, &d);
        g.mark_touched_synced();
        g.finalize_touched();
        for (i, &grad) in g.gradients().iter().enumerate() {
            if grad != 0.0 {
                let gid = (i / f) as u32;
                assert!(
                    seen.binary_search(&gid).is_ok(),
                    "gradient at scalar {i} outside the touched set"
                );
            }
        }
        // finalize sorts entries and expands scalars in ascending order.
        let entries = g.touched_entries().to_vec();
        assert!(entries.windows(2).all(|w| w[0] < w[1]));
        let (scalars, _, _) = g.touched_scalars_master_grads();
        assert_eq!(scalars.len(), entries.len() * f);
        assert!(scalars.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn begin_touch_batch_zeroes_exactly_like_zero_grad() {
        let mut g = grid(HashFunction::Original);
        g.enable_touch_tracking();
        let dim = g.config().feature_dim();
        let points: Vec<Vec3> = (0..11)
            .map(|i| {
                let t = i as f32 + 0.25;
                Vec3::new((t * 0.33).fract(), (t * 0.71).fract(), (t * 0.49).fract())
            })
            .collect();
        g.begin_touch_batch();
        g.collect_touched_batch(&points);
        let mut feats = vec![0.0; points.len() * dim];
        let mut cache = LookupCache::default();
        g.encode_batch_cached(&points, &mut feats, &mut cache);
        let d = vec![0.5f32; points.len() * dim];
        g.backward_batch_cached(&cache, &d);
        g.mark_touched_synced();
        g.finalize_touched();
        assert!(g.gradients().iter().any(|&x| x != 0.0));
        // The next begin must leave the gradient table all-zero — i.e.
        // exactly what zero_grad produces — by clearing only touched slots.
        g.begin_touch_batch();
        assert!(g.gradients().iter().all(|&x| x == 0.0));
        assert!(g.touched_entries().is_empty());
    }

    proptest! {
        #[test]
        fn encode_bounded_by_weight_one_combination(
            px in 0.0f32..1.0, py in 0.0f32..1.0, pz in 0.0f32..1.0
        ) {
            // Each output feature is a convex combination of 8 embeddings,
            // all initialized in [-1e-4, 1e-4], so outputs stay in range.
            let g = grid(HashFunction::Morton);
            let f = g.encode(Vec3::new(px, py, pz));
            for v in f {
                prop_assert!(v.abs() <= 1e-4 + 1e-6);
            }
        }

        #[test]
        fn lookups_in_table_range(
            px in -0.2f32..1.2, py in -0.2f32..1.2, pz in -0.2f32..1.2
        ) {
            let g = grid(HashFunction::Original);
            let t = g.config().table_size();
            for cube in g.cube_lookups(Vec3::new(px, py, pz)) {
                for e in cube.entries {
                    prop_assert!(e < t);
                }
            }
        }
    }
}
