//! Locality statistics behind the paper's Fig. 6 and Fig. 7(a).
//!
//! [`LocalitySink`] accumulates both statistics online from the streaming
//! trace bus; [`index_distance_histogram`] and
//! [`points_sharing_cube_per_level`] are the materialized-trace wrappers
//! (bit-identical: they feed the trace through the same sink).

use crate::sink::TraceSink;
use crate::trace::{CubeLookup, LookupTrace};

/// Histogram bucket labels used by Fig. 6 (index distance between two
/// neighbouring vertices of one 3D cube).
pub const DISTANCE_BUCKET_LABELS: [&str; 5] = ["1~4", "4~16", "16~256", "256~5000", ">5000"];

/// Upper bounds (inclusive) of the first four Fig. 6 buckets.
const DISTANCE_BUCKET_BOUNDS: [u32; 4] = [4, 16, 256, 5000];

/// Buckets a single index distance per Fig. 6.
#[inline]
pub fn distance_bucket(dist: u32) -> usize {
    DISTANCE_BUCKET_BOUNDS
        .iter()
        .position(|&b| dist <= b)
        .unwrap_or(4)
}

/// The 12 edges of a cube expressed as corner-index pairs (corners that
/// differ in exactly one coordinate bit).
pub fn cube_edges() -> impl Iterator<Item = (usize, usize)> {
    (0..8usize).flat_map(|c| {
        [1usize, 2, 4].into_iter().filter_map(move |bit| {
            if c & bit == 0 {
                Some((c, c | bit))
            } else {
                None
            }
        })
    })
}

/// Per-level cube-run state of [`LocalitySink`].
#[derive(Debug, Clone, Copy, Default)]
struct LevelRuns {
    runs: u64,
    points: u64,
    last_id: Option<u64>,
}

/// Streaming accumulator of the Fig. 6 index-distance histogram and the
/// Fig. 7(a) consecutive-cube-sharing statistic.
///
/// Consumes the trace bus online at constant memory; the materialized
/// wrappers below replay a [`LookupTrace`] through it, so both paths are
/// bit-identical by construction.
#[derive(Debug, Clone)]
pub struct LocalitySink {
    counts: [u64; 5],
    levels: Vec<LevelRuns>,
}

impl LocalitySink {
    /// Creates a sink tracking cube sharing for `levels` hash-table levels
    /// (cubes at higher levels still count toward the histogram).
    pub fn new(levels: u32) -> Self {
        LocalitySink {
            counts: [0; 5],
            levels: vec![LevelRuns::default(); levels as usize],
        }
    }

    /// The Fig. 6 breakdown: percentage of cube-edge index distances per
    /// bucket (sums to ~100; all zeros before any cube arrived).
    pub fn histogram(&self) -> [f64; 5] {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, c) in out.iter_mut().zip(self.counts) {
            *o = 100.0 * c as f64 / total as f64;
        }
        out
    }

    /// Fig. 7(a): per level, the mean number of consecutive points sharing
    /// one interpolation cube under the streamed order.
    pub fn sharing_per_level(&self) -> Vec<f64> {
        self.levels
            .iter()
            .map(|l| {
                if l.runs == 0 {
                    0.0
                } else {
                    l.points as f64 / l.runs as f64
                }
            })
            .collect()
    }
}

impl TraceSink for LocalitySink {
    fn push_cube(&mut self, cube: &CubeLookup) {
        for (a, b) in cube_edges() {
            let d = cube.entries[a].abs_diff(cube.entries[b]);
            self.counts[distance_bucket(d)] += 1;
        }
        if let Some(l) = self.levels.get_mut(cube.level as usize) {
            l.points += 1;
            if l.last_id != Some(cube.cube_id) {
                l.runs += 1;
                l.last_id = Some(cube.cube_id);
            }
        }
    }
}

/// Computes the Fig. 6 breakdown: the percentage of cube-edge index
/// distances falling into each bucket, over all cubes in the trace.
///
/// Returns percentages summing to ~100 (all zeros for an empty trace).
pub fn index_distance_histogram(trace: &LookupTrace) -> [f64; 5] {
    let mut sink = LocalitySink::new(0);
    for cube in trace.cubes() {
        sink.push_cube(cube);
    }
    sink.histogram()
}

/// Fig. 7(a): for each level, the mean number of *consecutive* points that
/// share the same interpolation cube, under the trace's streaming order.
///
/// A value of `k` means that on average `k` successive points hit the same
/// cube before the stream moves on — exactly the register-reuse opportunity
/// the ray-first streaming order creates.
pub fn points_sharing_cube_per_level(trace: &LookupTrace, levels: u32) -> Vec<f64> {
    let mut sink = LocalitySink::new(levels);
    for cube in trace.cubes() {
        sink.push_cube(cube);
    }
    sink.sharing_per_level()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HashGridConfig;
    use crate::hash::HashFunction;
    use crate::table::HashGrid;
    use crate::trace::{CubeLookup, LookupTrace};
    use inerf_geom::Vec3;

    #[test]
    fn cube_edges_count_is_twelve() {
        assert_eq!(cube_edges().count(), 12);
        // Every pair differs in exactly one bit.
        for (a, b) in cube_edges() {
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(distance_bucket(0), 0);
        assert_eq!(distance_bucket(4), 0);
        assert_eq!(distance_bucket(5), 1);
        assert_eq!(distance_bucket(16), 1);
        assert_eq!(distance_bucket(256), 2);
        assert_eq!(distance_bucket(5000), 3);
        assert_eq!(distance_bucket(5001), 4);
    }

    /// Streams points along straight rays through the unit cube — the
    /// ray-first order — and returns the trace.
    fn ray_first_trace(grid: &HashGrid, rays: usize, samples: usize) -> LookupTrace {
        let mut trace = LookupTrace::new();
        for r in 0..rays {
            let y = 0.1 + 0.8 * (r as f32 / rays.max(1) as f32);
            for s in 0..samples {
                let t = (s as f32 + 0.5) / samples as f32;
                let p = Vec3::new(t, y, 0.5);
                trace.push_point(&grid.cube_lookups(p));
            }
        }
        trace
    }

    #[test]
    fn morton_keeps_more_neighbours_close_than_original() {
        // The core Fig. 6 claim: Morton pushes mass into the small-distance
        // buckets and empties the >5000 bucket.
        let morton = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 1);
        let original = HashGrid::new(HashGridConfig::paper(HashFunction::Original), 1);
        let tm = ray_first_trace(&morton, 8, 32);
        let to = ray_first_trace(&original, 8, 32);
        let hm = index_distance_histogram(&tm);
        let ho = index_distance_histogram(&to);
        let close_m = hm[0] + hm[1];
        let close_o = ho[0] + ho[1];
        assert!(
            close_m > close_o + 10.0,
            "Morton close-bucket share {close_m:.1}% should clearly beat original {close_o:.1}%"
        );
        assert!(
            hm[4] < ho[4],
            "Morton far bucket {:.1}% should be below original {:.1}%",
            hm[4],
            ho[4]
        );
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let grid = HashGrid::new(HashGridConfig::tiny(HashFunction::Original), 3);
        let t = ray_first_trace(&grid, 4, 16);
        let h = index_distance_histogram(&t);
        let sum: f64 = h.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn empty_trace_histogram_is_zero() {
        let h = index_distance_histogram(&LookupTrace::new());
        assert_eq!(h, [0.0; 5]);
    }

    #[test]
    fn sharing_decreases_with_level() {
        // Fig. 7(a): coarse levels share cubes across many consecutive
        // points; fine levels share almost none.
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 1);
        let t = ray_first_trace(&grid, 4, 128);
        let sharing = points_sharing_cube_per_level(&t, grid.config().levels);
        assert!(
            sharing[0] > 4.0,
            "coarsest level sharing {} too low",
            sharing[0]
        );
        assert!(
            *sharing.last().expect("per-level sharing is nonempty") < 2.0,
            "finest level sharing {} too high",
            sharing.last().expect("per-level sharing is nonempty")
        );
        // Broadly decreasing: first level shares at least as much as the last.
        assert!(sharing[0] > *sharing.last().expect("per-level sharing is nonempty"));
    }

    #[test]
    fn sharing_counts_runs_not_global_matches() {
        // Construct a synthetic trace: ids A A B A — the final A is a new
        // run, so mean run length is 4 points / 3 runs.
        let mk = |id: u64| CubeLookup {
            level: 0,
            entries: [0; 8],
            cube_id: id,
        };
        let mut t = LookupTrace::new();
        for id in [7u64, 7, 9, 7] {
            t.push_point(&[mk(id)]);
        }
        let s = points_sharing_cube_per_level(&t, 1);
        assert!((s[0] - 4.0 / 3.0).abs() < 1e-9);
    }
}
