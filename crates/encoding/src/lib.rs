//! Multi-resolution hash encoding — the iNGP scene representation plus the
//! paper's locality-sensitive variant.
//!
//! This crate implements Steps (1)–(3) of iNGP's replacement for the vanilla
//! NeRF MLP query (paper Fig. 3):
//!
//! 1. **Hashing of cube vertices** — [`hash::HashFunction`] offers both the
//!    original iNGP spatial hash and the paper's Morton-code
//!    locality-sensitive hash (Eq. 2).
//! 2. **Lookup of embedding vectors** — [`table::HashGrid`] stores `L` levels
//!    × `T` entries × `F` features of trainable embeddings.
//! 3. **Trilinear interpolation** — forward and backward (gradient
//!    scatter-add) passes.
//!
//! It also implements the measurement machinery behind the paper's
//! characterization figures:
//!
//! * [`sink`] — the streaming trace bus ([`TraceSink`]): the online
//!   event interface between the algorithm and every hardware consumer.
//! * [`locality`] — index-distance histograms between cube-neighbour
//!   vertices (Fig. 6) and cube-sharing statistics along rays (Fig. 7a),
//!   available as streaming sinks.
//! * [`requests`] — DRAM row-granularity memory-request counting (the
//!   1.58-vs-4.02 requests/cube statistic and Fig. 7b), available as
//!   streaming sinks.
//! * [`trace`] — materialized lookup traces (the buffered reference path).
//!
//! # Example
//!
//! ```
//! use inerf_encoding::{HashGridConfig, HashGrid, HashFunction};
//! use inerf_geom::Vec3;
//!
//! let config = HashGridConfig::tiny(HashFunction::Morton);
//! let mut grid = HashGrid::new(config, 42);
//! let features = grid.encode(Vec3::splat(0.5));
//! assert_eq!(features.len(), config.feature_dim());
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod hash;
pub mod locality;
pub mod requests;
pub mod sink;
pub mod table;
pub mod trace;

pub use config::HashGridConfig;
pub use hash::HashFunction;
pub use requests::EntryLayout;
pub use sink::{BatchBufferSink, BufferSink, CountingSink, TraceSink};
pub use table::{HashGrid, LookupCache};
pub use trace::{LookupEvent, LookupTrace};

// The mixed-precision parameter backend the embedding table sits behind,
// re-exported so hardware-model crates can name the storage precision
// without depending on `inerf_mlp` directly.
pub use inerf_mlp::{ParamStore, Precision};
