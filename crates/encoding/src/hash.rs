//! Hash mapping functions: original iNGP vs the paper's Morton variant.

use inerf_geom::grid::{GridCoord, GridLevel};
use inerf_geom::morton::morton_encode;
use serde::{Deserialize, Serialize};

/// iNGP's spatial-hash prime multipliers (Müller et al. 2022).
const PRIME_Y: u32 = 2_654_435_761;
const PRIME_Z: u32 = 805_459_861;

/// The hash mapping function used to index the embedding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashFunction {
    /// The original iNGP spatial hash:
    /// `(x ⊕ y·2654435761 ⊕ z·805459861) mod T`.
    ///
    /// Scatters neighbouring vertices across the table — good uniformity,
    /// poor locality.
    Original,
    /// The paper's locality-sensitive Morton hash (Eq. 2):
    /// `(f(x) + (f(y)≪1) + (f(z)≪2)) mod T`, i.e. `morton(x,y,z) mod T`.
    ///
    /// Maps neighbouring vertices to nearby entries, enabling row-buffer
    /// locality in the NMP accelerator.
    Morton,
}

impl HashFunction {
    /// Hashes a lattice vertex into a table of `table_size` entries.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `table_size` is zero.
    #[inline]
    pub fn index(&self, v: GridCoord, table_size: u32) -> u32 {
        debug_assert!(table_size > 0);
        // Table sizes are 2^table_size_log2 throughout, so the modulo
        // reduces to a mask — a hardware division per corner lookup (64 per
        // encoded point) would otherwise dominate the index calculation.
        // The non-power-of-two fallback keeps the documented semantics for
        // arbitrary sizes.
        match self {
            HashFunction::Original => {
                let h = v.x ^ v.y.wrapping_mul(PRIME_Y) ^ v.z.wrapping_mul(PRIME_Z);
                if table_size.is_power_of_two() {
                    h & (table_size - 1)
                } else {
                    h % table_size
                }
            }
            HashFunction::Morton => {
                let m = morton_encode(v.x, v.y, v.z);
                if table_size.is_power_of_two() {
                    (m & (table_size as u64 - 1)) as u32
                } else {
                    (m % table_size as u64) as u32
                }
            }
        }
    }

    /// Short display label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            HashFunction::Original => "Org.",
            HashFunction::Morton => "Ours",
        }
    }
}

/// Computes the table index of vertex `v` at `level`.
///
/// The original iNGP design indexes coarse levels whose dense lattice fits
/// the table directly (row-major) and hashes the rest. The paper's Eq. (2)
/// applies the Morton mapping uniformly — that is what lets *every* level's
/// neighbouring vertices land in neighbouring entries (Fig. 6's 82%-within-16
/// statistic covers all levels).
#[inline]
pub fn level_index(hash: HashFunction, level: &GridLevel, v: GridCoord, table_size: u32) -> u32 {
    match hash {
        HashFunction::Morton => hash.index(v, table_size),
        HashFunction::Original => {
            let verts = level.vertices_per_axis() as u64;
            if verts * verts * verts <= table_size as u64 {
                // Dense level: row-major linear index.
                ((v.z as u64 * verts + v.y as u64) * verts + v.x as u64) as u32
            } else {
                hash.index(v, table_size)
            }
        }
    }
}

/// Table indices of all eight corners of the cube at `base` — equal,
/// corner for corner, to calling [`level_index`] on `base.corner(c)`, but
/// amortizing the per-axis work across the four corners that share each
/// coordinate: the Morton mapping needs six bit spreads instead of
/// twenty-four. This is the hot path of the batched encode.
#[inline]
pub fn cube_level_indices(
    hash: HashFunction,
    level: &GridLevel,
    base: GridCoord,
    table_size: u32,
) -> [u32; 8] {
    let mut out = [0u32; 8];
    match hash {
        HashFunction::Morton => {
            use inerf_geom::morton::spread_bits;
            let sx = [spread_bits(base.x), spread_bits(base.x + 1)];
            let sy = [spread_bits(base.y) << 1, spread_bits(base.y + 1) << 1];
            let sz = [spread_bits(base.z) << 2, spread_bits(base.z + 1) << 2];
            if table_size.is_power_of_two() {
                let mask = table_size as u64 - 1;
                for (c, o) in out.iter_mut().enumerate() {
                    *o = ((sx[c & 1] | sy[(c >> 1) & 1] | sz[(c >> 2) & 1]) & mask) as u32;
                }
            } else {
                for (c, o) in out.iter_mut().enumerate() {
                    *o = ((sx[c & 1] | sy[(c >> 1) & 1] | sz[(c >> 2) & 1]) % table_size as u64)
                        as u32;
                }
            }
        }
        // The original hash is two multiplies per vertex — nothing worth
        // amortizing; reuse the reference path.
        HashFunction::Original => {
            for (c, o) in out.iter_mut().enumerate() {
                *o = level_index(hash, level, base.corner(c as u8), table_size);
            }
        }
    }
    out
}

/// The number of INT32 operations the index calculation costs on the
/// accelerator, per vertex.
///
/// The paper observes the hash mapping dominates INT32 ALU utilization
/// (Sec. II-B, observation 3); the accelerator provisions dedicated INT32
/// PEs for it. The Morton spread uses shift/or stages; the original hash
/// uses two multiplies and two XORs plus the modulo.
pub fn index_int_ops(hash: HashFunction) -> u32 {
    match hash {
        // 2 mul + 2 xor + 1 mod
        HashFunction::Original => 5,
        // 3 coordinates × 5 shift/mask stages × 2 ops + 2 shifts + 2 adds + 1 mod
        HashFunction::Morton => 35,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const T: u32 = 1 << 14;

    #[test]
    fn original_matches_reference_formula() {
        let v = GridCoord::new(12, 34, 56);
        let expect = (12u32 ^ 34u32.wrapping_mul(PRIME_Y) ^ 56u32.wrapping_mul(PRIME_Z)) % T;
        assert_eq!(HashFunction::Original.index(v, T), expect);
    }

    #[test]
    fn morton_matches_eq2() {
        use inerf_geom::morton::spread_bits;
        let v = GridCoord::new(5, 9, 3);
        let eq2 = (spread_bits(5) + (spread_bits(9) << 1) + (spread_bits(3) << 2)) % T as u64;
        assert_eq!(HashFunction::Morton.index(v, T) as u64, eq2);
    }

    #[test]
    fn morton_neighbours_are_close() {
        // Neighbouring vertices in an aligned octant differ by < 8 in index
        // (when no modulo wrap occurs).
        let a = GridCoord::new(10, 20, 30);
        let ia = HashFunction::Morton.index(a, 1 << 30);
        for c in 1..8u8 {
            let ib = HashFunction::Morton.index(a.corner(c), 1 << 30);
            assert!(ib > ia && ib - ia < 8, "corner {c}: {ia} vs {ib}");
        }
    }

    #[test]
    fn original_neighbours_scatter() {
        // With the original hash most neighbours land far apart.
        let a = GridCoord::new(100, 200, 300);
        let ia = HashFunction::Original.index(a, T);
        let far = (1..8u8)
            .filter(|&c| {
                let ib = HashFunction::Original.index(a.corner(c), T);
                ia.abs_diff(ib) > 256
            })
            .count();
        assert!(far >= 4, "expected most neighbours to scatter, {far}/7 did");
    }

    #[test]
    fn dense_level_uses_linear_index_for_original_only() {
        let level = GridLevel::new(0, 7); // 8^3 = 512 vertices <= T
        let idx = level_index(HashFunction::Original, &level, GridCoord::new(1, 2, 3), T);
        assert_eq!(idx, (3 * 8 + 2) * 8 + 1);
        // The Morton mapping applies uniformly (Eq. 2), so it differs here.
        let idx2 = level_index(HashFunction::Morton, &level, GridCoord::new(1, 2, 3), T);
        assert_eq!(idx2, HashFunction::Morton.index(GridCoord::new(1, 2, 3), T));
    }

    #[test]
    fn sparse_level_uses_hash() {
        let level = GridLevel::new(10, 512); // 513^3 >> T
        let v = GridCoord::new(100, 200, 300);
        assert_eq!(
            level_index(HashFunction::Original, &level, v, T),
            HashFunction::Original.index(v, T)
        );
    }

    #[test]
    fn int_ops_morton_heavier() {
        assert!(index_int_ops(HashFunction::Morton) > index_int_ops(HashFunction::Original));
    }

    proptest! {
        #[test]
        fn cube_level_indices_match_per_corner_reference(
            x in 0u32..100_000, y in 0u32..100_000, z in 0u32..100_000,
            res_log2 in 2u32..18, log2 in 4u32..22
        ) {
            let level = GridLevel::new(0, 1 << res_log2);
            let t = 1u32 << log2;
            let base = GridCoord::new(x, y, z);
            for hash in [HashFunction::Original, HashFunction::Morton] {
                let fast = cube_level_indices(hash, &level, base, t);
                for c in 0..8u8 {
                    prop_assert_eq!(
                        fast[c as usize],
                        level_index(hash, &level, base.corner(c), t),
                        "hash {:?} corner {}", hash, c
                    );
                }
            }
        }

        #[test]
        fn index_always_in_range(
            x in 0u32..100_000, y in 0u32..100_000, z in 0u32..100_000,
            log2 in 4u32..22
        ) {
            let t = 1u32 << log2;
            let v = GridCoord::new(x, y, z);
            prop_assert!(HashFunction::Original.index(v, t) < t);
            prop_assert!(HashFunction::Morton.index(v, t) < t);
        }

        #[test]
        fn eq2_neighbouring_vertices_map_to_nearby_codes(
            x in 0u32..(1 << 20), y in 0u32..(1 << 20), z in 0u32..(1 << 20),
            log2 in 10u32..20
        ) {
            // Eq. 2's locality property: within any aligned 2x2x2 block the
            // eight vertices take eight *consecutive* Morton codes, so
            // their table indices sit within a circular distance of 7 of
            // each other for every power-of-two table size.
            let t = 1u32 << log2;
            let base = GridCoord::new(x & !1, y & !1, z & !1);
            let ib = HashFunction::Morton.index(base, t);
            for c in 1..8u8 {
                let ic = HashFunction::Morton.index(base.corner(c), t);
                let fwd = ic.wrapping_sub(ib) % t;
                let bwd = ib.wrapping_sub(ic) % t;
                prop_assert!(
                    fwd.min(bwd) <= 7,
                    "corner {c}: {ib} vs {ic} (T = 2^{log2})"
                );
            }
        }

        #[test]
        fn original_hash_spreads_uniformly(seed in 0u64..1000) {
            // Coarse uniformity check: hash 4096 vertices into 16 buckets of
            // a 2^14 table; no bucket should hold more than 3x the mean.
            let mut counts = [0u32; 16];
            let mut s = seed.wrapping_add(0x9E37_79B9_97F4_A7C5); // never zero
            for _ in 0..4096 {
                // xorshift for test-local determinism
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                let v = GridCoord::new((s & 0x3ff) as u32, ((s >> 10) & 0x3ff) as u32, ((s >> 20) & 0x3ff) as u32);
                let idx = HashFunction::Original.index(v, T);
                counts[(idx / (T / 16)) as usize] += 1;
            }
            let mean = 4096 / 16;
            for c in counts {
                prop_assert!(c < 3 * mean, "bucket count {c} too large");
            }
        }
    }
}
