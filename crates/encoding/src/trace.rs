//! Lookup traces: the memory-access record consumed by the simulators.
//!
//! Every encoded point touches `L` cubes (one per level), each with eight
//! vertex entries. A [`LookupTrace`] records those entry indices in
//! processing order so the DRAM/accelerator models can replay the exact
//! access stream the algorithm generates.

use serde::{Deserialize, Serialize};

/// A single hash-table entry access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupEvent {
    /// Hash-table level.
    pub level: u32,
    /// Entry index within the level (`< T`).
    pub entry: u32,
}

/// The eight vertex lookups of one point at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeLookup {
    /// Hash-table level.
    pub level: u32,
    /// Entry indices of the cube's eight corners (corner order: bit 0 → +x,
    /// bit 1 → +y, bit 2 → +z).
    pub entries: [u32; 8],
    /// Base vertex Morton code — used to detect cube reuse between
    /// consecutive points without re-deriving coordinates.
    pub cube_id: u64,
}

/// An ordered record of cube lookups produced while encoding a point stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupTrace {
    cubes: Vec<CubeLookup>,
    points: usize,
}

impl LookupTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the cube lookups of one more point. `cubes_for_point` must
    /// hold exactly one [`CubeLookup`] per level, in level order.
    pub fn push_point(&mut self, cubes_for_point: &[CubeLookup]) {
        self.cubes.extend_from_slice(cubes_for_point);
        self.points += 1;
    }

    /// Appends one cube of the current point (streaming form of
    /// [`LookupTrace::push_point`]; pair with [`LookupTrace::end_point`]).
    pub fn push_cube(&mut self, cube: &CubeLookup) {
        self.cubes.push(*cube);
    }

    /// Marks the current point's cubes complete (streaming form).
    pub fn end_point(&mut self) {
        self.points += 1;
    }

    /// Approximate heap bytes held by the materialized trace — the
    /// quantity the streaming trace bus exists to eliminate.
    pub fn heap_bytes(&self) -> usize {
        self.cubes.capacity() * std::mem::size_of::<CubeLookup>()
    }

    /// All recorded cube lookups, in processing order.
    pub fn cubes(&self) -> &[CubeLookup] {
        &self.cubes
    }

    /// Number of points recorded.
    pub fn point_count(&self) -> usize {
        self.points
    }

    /// Total entry accesses (8 per cube).
    pub fn entry_access_count(&self) -> usize {
        self.cubes.len() * 8
    }

    /// Iterates over the cubes of a single level, preserving order.
    pub fn level_cubes(&self, level: u32) -> impl Iterator<Item = &CubeLookup> {
        self.cubes.iter().filter(move |c| c.level == level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(level: u32, base: u32) -> CubeLookup {
        let mut entries = [0u32; 8];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = base + i as u32;
        }
        CubeLookup {
            level,
            entries,
            cube_id: base as u64,
        }
    }

    #[test]
    fn push_and_count() {
        let mut t = LookupTrace::new();
        t.push_point(&[cube(0, 0), cube(1, 100)]);
        t.push_point(&[cube(0, 8), cube(1, 100)]);
        assert_eq!(t.point_count(), 2);
        assert_eq!(t.cubes().len(), 4);
        assert_eq!(t.entry_access_count(), 32);
    }

    #[test]
    fn level_filter() {
        let mut t = LookupTrace::new();
        t.push_point(&[cube(0, 0), cube(1, 100)]);
        t.push_point(&[cube(0, 8), cube(1, 100)]);
        let lvl1: Vec<_> = t.level_cubes(1).collect();
        assert_eq!(lvl1.len(), 2);
        assert!(lvl1.iter().all(|c| c.level == 1));
    }
}
