//! Hash grid configuration.

use crate::hash::HashFunction;
use inerf_geom::grid::{build_levels, GridLevel};
use inerf_mlp::Precision;
use serde::{Deserialize, Serialize};

/// Configuration of the multi-resolution hash grid.
///
/// Defaults follow the iNGP/paper setup: `L = 16` levels, `T = 2^19` entries
/// per level, `F = 2` features per entry, base resolution 16 growing
/// geometrically to 512.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashGridConfig {
    /// Number of resolution levels `L`.
    pub levels: u32,
    /// log2 of the table size `T` per level.
    pub table_size_log2: u32,
    /// Features per entry `F`.
    pub features: u32,
    /// Coarsest resolution (cells per axis).
    pub n_min: u32,
    /// Finest resolution (cells per axis).
    pub n_max: u32,
    /// Which hash mapping function indexes the table.
    pub hash: HashFunction,
}

impl HashGridConfig {
    /// The paper's configuration: `L=16, T=2^19, F=2`, resolutions 16→512.
    ///
    /// Each level is `T * F * 4B = 4 MB` of f32 training state; with the
    /// paper's 32-bit (FP16×2) inference entries a level is 2 MB, matching
    /// the "each individual level of the hash table is 2 MB" observation in
    /// Sec. II-B.
    pub fn paper(hash: HashFunction) -> Self {
        HashGridConfig {
            levels: 16,
            table_size_log2: 19,
            features: 2,
            n_min: 16,
            n_max: 512,
            hash,
        }
    }

    /// A small configuration for fast unit tests and examples.
    pub fn tiny(hash: HashFunction) -> Self {
        HashGridConfig {
            levels: 4,
            table_size_log2: 12,
            features: 2,
            n_min: 4,
            n_max: 32,
            hash,
        }
    }

    /// Table entries per level, `T`.
    #[inline]
    pub const fn table_size(&self) -> u32 {
        1 << self.table_size_log2
    }

    /// Output feature dimension of the encoding, `L * F`.
    #[inline]
    pub const fn feature_dim(&self) -> usize {
        (self.levels * self.features) as usize
    }

    /// Total number of trainable embedding scalars, `L * T * F`.
    #[inline]
    pub const fn parameter_count(&self) -> usize {
        (self.levels as usize) * (self.table_size() as usize) * (self.features as usize)
    }

    /// Size in bytes of one level's table at the given bytes-per-entry
    /// (paper: 4 B per entry — one 32-bit vector of two FP16 features).
    #[inline]
    pub const fn level_bytes(&self, bytes_per_entry: usize) -> usize {
        self.table_size() as usize * bytes_per_entry
    }

    /// Bytes of one table entry (`F` features) stored at `precision`:
    /// 4 B for the paper's fp16 pairs, 8 B for f32 storage.
    #[inline]
    pub const fn entry_bytes(&self, precision: Precision) -> u32 {
        self.features * precision.bytes_per_param() as u32
    }

    /// Builds the per-level grid descriptors.
    pub fn build_levels(&self) -> Vec<GridLevel> {
        build_levels(self.n_min, self.n_max, self.levels)
    }

    /// Whether a level's dense vertex grid fits in the table without hashing
    /// (iNGP indexes such coarse levels directly).
    pub fn level_is_dense(&self, level: &GridLevel) -> bool {
        level.dense_vertex_count() <= self.table_size() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_sizes() {
        let c = HashGridConfig::paper(HashFunction::Morton);
        assert_eq!(c.table_size(), 1 << 19);
        assert_eq!(c.feature_dim(), 32);
        assert_eq!(c.parameter_count(), 16 * (1 << 19) * 2);
        // 2 MB per level at the paper's 4-byte entries.
        assert_eq!(c.level_bytes(4), 2 * 1024 * 1024);
    }

    #[test]
    fn paper_hash_table_total_matches_tab2() {
        // Tab. II: hash table parameters are 25 MB for HT (FP16 entries,
        // minus the dense coarse levels stored compactly). Our f32 total:
        let c = HashGridConfig::paper(HashFunction::Morton);
        let fp16_bytes: usize = c
            .build_levels()
            .iter()
            .map(|l| {
                let entries = (l.dense_vertex_count() as usize).min(c.table_size() as usize);
                entries * c.features as usize * 2 // FP16
            })
            .sum();
        let mb = fp16_bytes as f64 / (1024.0 * 1024.0);
        assert!(
            (20.0..30.0).contains(&mb),
            "hash table should be ~25 MB as in Tab. II, got {mb:.1} MB"
        );
    }

    #[test]
    fn tiny_config_levels() {
        let c = HashGridConfig::tiny(HashFunction::Original);
        let levels = c.build_levels();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0].resolution, 4);
        assert!(levels[3].resolution >= 30);
    }

    #[test]
    fn dense_level_detection() {
        let c = HashGridConfig::paper(HashFunction::Morton);
        let levels = c.build_levels();
        // 16^3 = 4096 vertices — dense. 512^3 — hashed.
        assert!(c.level_is_dense(&levels[0]));
        assert!(!c.level_is_dense(&levels[15]));
    }
}
