//! The streaming trace bus: the algorithm→hardware event interface.
//!
//! The hash-grid forward pass produces one [`CubeLookup`] per level per
//! point — the address stream every hardware model consumes. Historically
//! that stream was materialized into a [`LookupTrace`] vector and replayed
//! offline, which costs `O(points × levels)` memory and caps co-simulation
//! at small point batches. The [`TraceSink`] trait turns the boundary into
//! an online event bus instead: producers ([`crate::table::HashGrid`], the
//! trainer engines) push cube events as they are generated, and every
//! consumer — locality statistics, register-cache replay, DRAM request
//! generation, the cycle-level simulator — runs incrementally at constant
//! memory.
//!
//! Event protocol, per training iteration:
//!
//! 1. `push_cube` once per `(point, level)` cube, in processing order
//!    (level-major within a point, points in streaming order);
//! 2. `end_point` after each point's last cube;
//! 3. `end_batch` after the iteration's last point — the hook where
//!    batch-scoped consumers (e.g. the HT_b write-back drain) flush.
//!
//! Sinks compose: `(&mut a, &mut b)` fans one stream out to two consumers,
//! and `&mut dyn TraceSink` lets producers stay object-safe. The
//! materialized path is still available — [`LookupTrace`] itself is a sink
//! ([`BufferSink`]) and remains the bit-exactness reference for tests.

use crate::trace::{CubeLookup, LookupTrace};

/// A consumer of the streaming cube-lookup event bus.
///
/// See the [module docs](self) for the event protocol. Implementations
/// must be order-sensitive only in ways the materialized replay was:
/// feeding a buffered [`LookupTrace`] through a sink cube-by-cube must
/// produce exactly the state that streaming the original events would.
pub trait TraceSink {
    /// One cube lookup (eight vertex entries at one level of one point).
    fn push_cube(&mut self, cube: &CubeLookup);

    /// The current point's cubes are complete.
    fn end_point(&mut self) {}

    /// The current batch (training iteration) is complete. Batch-scoped
    /// consumers flush and reset here.
    fn end_batch(&mut self) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn push_cube(&mut self, cube: &CubeLookup) {
        (**self).push_cube(cube);
    }

    fn end_point(&mut self) {
        (**self).end_point();
    }

    fn end_batch(&mut self) {
        (**self).end_batch();
    }
}

/// Fan-out: one event stream feeding two sinks (compose recursively for
/// more).
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    fn push_cube(&mut self, cube: &CubeLookup) {
        self.0.push_cube(cube);
        self.1.push_cube(cube);
    }

    fn end_point(&mut self) {
        self.0.end_point();
        self.1.end_point();
    }

    fn end_batch(&mut self) {
        self.0.end_batch();
        self.1.end_batch();
    }
}

/// The materializing sink: buffers every event into a [`LookupTrace`].
///
/// This is the offline-replay path the streaming consumers are verified
/// against, and what trace-shape tests use.
pub type BufferSink = LookupTrace;

impl TraceSink for LookupTrace {
    fn push_cube(&mut self, cube: &CubeLookup) {
        LookupTrace::push_cube(self, cube);
    }

    fn end_point(&mut self) {
        LookupTrace::end_point(self);
    }
}

/// A materializing sink that keeps one [`LookupTrace`] per batch —
/// the per-iteration buffered reference the online co-simulation is
/// compared against.
#[derive(Debug, Clone, Default)]
pub struct BatchBufferSink {
    batches: Vec<LookupTrace>,
    current: LookupTrace,
}

impl BatchBufferSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The completed batches, one trace per `end_batch`.
    pub fn batches(&self) -> &[LookupTrace] {
        &self.batches
    }

    /// Consumes the sink, returning the completed batch traces.
    pub fn into_batches(self) -> Vec<LookupTrace> {
        self.batches
    }

    /// Approximate heap bytes held by all buffered traces.
    pub fn heap_bytes(&self) -> usize {
        self.batches
            .iter()
            .map(LookupTrace::heap_bytes)
            .sum::<usize>()
            + self.current.heap_bytes()
    }
}

impl TraceSink for BatchBufferSink {
    fn push_cube(&mut self, cube: &CubeLookup) {
        self.current.push_cube(cube);
    }

    fn end_point(&mut self) {
        self.current.end_point();
    }

    fn end_batch(&mut self) {
        self.batches.push(std::mem::take(&mut self.current));
    }
}

/// A counting sink: tracks stream shape (cubes/points/batches) without
/// buffering anything. Useful for asserting producers follow the protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Cubes pushed.
    pub cubes: u64,
    /// Points completed.
    pub points: u64,
    /// Batches completed.
    pub batches: u64,
}

impl TraceSink for CountingSink {
    fn push_cube(&mut self, _cube: &CubeLookup) {
        self.cubes += 1;
    }

    fn end_point(&mut self) {
        self.points += 1;
    }

    fn end_batch(&mut self) {
        self.batches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(level: u32, base: u32) -> CubeLookup {
        let mut entries = [0u32; 8];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = base + i as u32;
        }
        CubeLookup {
            level,
            entries,
            cube_id: base as u64,
        }
    }

    #[test]
    fn buffer_sink_reproduces_push_point() {
        let cubes = [cube(0, 0), cube(1, 100)];
        let mut reference = LookupTrace::new();
        reference.push_point(&cubes);
        let mut streamed = BufferSink::new();
        for c in &cubes {
            TraceSink::push_cube(&mut streamed, c);
        }
        TraceSink::end_point(&mut streamed);
        assert_eq!(reference, streamed);
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut pair = (CountingSink::default(), LookupTrace::new());
        pair.push_cube(&cube(0, 4));
        pair.push_cube(&cube(1, 8));
        pair.end_point();
        pair.end_batch();
        assert_eq!(pair.0.cubes, 2);
        assert_eq!(pair.0.points, 1);
        assert_eq!(pair.0.batches, 1);
        assert_eq!(pair.1.cubes().len(), 2);
        assert_eq!(pair.1.point_count(), 1);
    }

    #[test]
    fn dyn_sink_usable_through_reference() {
        let mut counter = CountingSink::default();
        {
            let sink: &mut dyn TraceSink = &mut counter;
            sink.push_cube(&cube(2, 1));
            sink.end_point();
        }
        assert_eq!(counter.cubes, 1);
        assert_eq!(counter.points, 1);
    }

    #[test]
    fn batch_buffer_splits_on_end_batch() {
        let mut sink = BatchBufferSink::new();
        sink.push_cube(&cube(0, 0));
        sink.end_point();
        sink.end_batch();
        sink.push_cube(&cube(0, 8));
        sink.push_cube(&cube(1, 16));
        sink.end_point();
        sink.end_batch();
        assert_eq!(sink.batches().len(), 2);
        assert_eq!(sink.batches()[0].point_count(), 1);
        assert_eq!(sink.batches()[0].cubes().len(), 1);
        assert_eq!(sink.batches()[1].cubes().len(), 2);
        assert!(sink.heap_bytes() > 0);
    }
}
