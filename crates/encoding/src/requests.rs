//! DRAM memory-request accounting at row granularity.
//!
//! The paper's key bandwidth argument (Sec. III-A): DRAM serves requests in
//! 1 KB rows while a hash-table entry is only 32 bits, so a cube lookup that
//! scatters its eight vertices across distinct rows wastes almost the whole
//! row each time. With the original hash a cube needs **4.02** row requests
//! on average; with the Morton hash only **1.58**. Combined with the
//! ray-first streaming order (register reuse of the previous point's cube),
//! the effective memory bandwidth improves **3.27×–35.9×** per level
//! (Fig. 7b).

use crate::sink::TraceSink;
use crate::trace::{CubeLookup, LookupTrace};
use serde::{Deserialize, Serialize};

/// Default bytes per hash-table entry (one 32-bit vector of two FP16
/// features, paper Sec. I) — the paper's hardware storage width, kept as
/// the `const` default so precision-agnostic call sites stay unchanged.
pub const ENTRY_BYTES: u32 = 4;
/// DRAM row-buffer size in bytes (LPDDR4, paper Sec. II-C).
pub const ROW_BYTES: u32 = 1024;
/// Entries per DRAM row at the default entry width.
pub const ENTRIES_PER_ROW: u32 = ROW_BYTES / ENTRY_BYTES;

/// Row geometry of the hash table in DRAM at a chosen entry width — the
/// parameter the storage precision decision flows through: f32 entries
/// are twice as wide as fp16 entries, so fewer fit a row and a cube's
/// vertices scatter over more rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EntryLayout {
    /// Bytes per table entry (all `F` features of one vertex).
    entry_bytes: u32,
    /// Cached `ROW_BYTES / entry_bytes`: [`EntryLayout::row_of_entry`]
    /// sits in the per-entry request-generation hot path, where the old
    /// code divided by a compile-time constant.
    entries_per_row: u32,
}

impl Default for EntryLayout {
    /// The paper's 4-byte (FP16×2) entries.
    fn default() -> Self {
        Self::new(ENTRY_BYTES)
    }
}

impl EntryLayout {
    /// A layout with `entry_bytes`-wide entries.
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` is zero or exceeds the row size.
    pub fn new(entry_bytes: u32) -> Self {
        assert!(
            entry_bytes > 0 && entry_bytes <= ROW_BYTES,
            "entry width must be in 1..={ROW_BYTES} bytes"
        );
        EntryLayout {
            entry_bytes,
            entries_per_row: ROW_BYTES / entry_bytes,
        }
    }

    /// Bytes per table entry.
    #[inline]
    pub const fn entry_bytes(self) -> u32 {
        self.entry_bytes
    }

    /// Entries per DRAM row at this width.
    #[inline]
    pub const fn entries_per_row(self) -> u32 {
        self.entries_per_row
    }

    /// The DRAM row holding a given table entry.
    #[inline]
    pub const fn row_of_entry(self, entry: u32) -> u32 {
        entry / self.entries_per_row
    }

    /// Number of distinct DRAM rows the eight vertices of `cube` occupy —
    /// the row requests needed to gather one cube with no reuse.
    pub fn cube_row_requests(self, cube: &CubeLookup) -> u32 {
        let mut rows = [u32::MAX; 8];
        let mut n = 0usize;
        for &e in &cube.entries {
            let r = self.row_of_entry(e);
            if !rows[..n].contains(&r) {
                rows[n] = r;
                n += 1;
            }
        }
        n as u32
    }

    /// Embedding payload bytes a cube's eight vertices carry at this
    /// width (what the DRAM rows must deliver; scales linearly with the
    /// entry width, unlike the row count).
    #[inline]
    pub const fn cube_payload_bytes(self) -> u32 {
        8 * self.entry_bytes
    }
}

/// The DRAM row holding a given table entry (default entry width).
#[inline]
pub const fn row_of_entry(entry: u32) -> u32 {
    entry / ENTRIES_PER_ROW
}

/// Number of distinct DRAM rows the eight vertices of `cube` occupy at
/// the default entry width — the row requests needed to gather one cube
/// with no reuse.
pub fn cube_row_requests(cube: &CubeLookup) -> u32 {
    EntryLayout::default().cube_row_requests(cube)
}

/// Streaming accumulator of the mean-row-requests-per-cube statistic
/// (the paper's 1.58-vs-4.02 number), fed by the trace bus.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanRequestSink {
    layout: EntryLayout,
    cubes: u64,
    total_requests: u64,
}

impl MeanRequestSink {
    /// Creates an empty accumulator at the default entry width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty accumulator counting rows at `layout`'s width.
    pub fn with_layout(layout: EntryLayout) -> Self {
        MeanRequestSink {
            layout,
            ..Self::default()
        }
    }

    /// Mean row requests per cube seen so far (0.0 before any cube).
    pub fn mean(&self) -> f64 {
        if self.cubes == 0 {
            0.0
        } else {
            self.total_requests as f64 / self.cubes as f64
        }
    }
}

impl TraceSink for MeanRequestSink {
    fn push_cube(&mut self, cube: &CubeLookup) {
        self.cubes += 1;
        self.total_requests += self.layout.cube_row_requests(cube) as u64;
    }
}

/// Mean row requests per cube over a whole trace (the paper's 1.58-vs-4.02
/// statistic).
pub fn mean_requests_per_cube(trace: &LookupTrace) -> f64 {
    let mut sink = MeanRequestSink::new();
    for cube in trace.cubes() {
        sink.push_cube(cube);
    }
    sink.mean()
}

/// Per-level statistics of replaying a trace through the local register
/// cache (which holds the embeddings of the previously processed cube).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelStreamStats {
    /// Hash-table level.
    pub level: u32,
    /// Cubes processed at this level.
    pub cubes: u64,
    /// Cubes served entirely from the register cache (same cube as the
    /// previous point).
    pub register_hits: u64,
    /// Row requests actually issued to DRAM.
    pub row_requests: u64,
}

impl LevelStreamStats {
    /// Register hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.cubes == 0 {
            0.0
        } else {
            self.register_hits as f64 / self.cubes as f64
        }
    }
}

/// Full-trace replay statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// One entry per hash-table level.
    pub levels: Vec<LevelStreamStats>,
}

impl StreamStats {
    /// Total row requests over all levels.
    pub fn total_row_requests(&self) -> u64 {
        self.levels.iter().map(|l| l.row_requests).sum()
    }
}

/// Streaming register-cache replay: consumes the trace bus online and
/// maintains the same per-level statistics [`replay_with_register_cache`]
/// derives from a materialized trace. If a point's cube at some level
/// equals the previous point's cube at that level, its eight embeddings
/// are already in registers and no DRAM request is issued; otherwise the
/// cube's distinct rows are fetched (row-buffer granularity).
#[derive(Debug, Clone)]
pub struct RegisterCacheSink {
    layout: EntryLayout,
    stats: Vec<LevelStreamStats>,
    last_id: Vec<Option<u64>>,
}

impl RegisterCacheSink {
    /// Creates a sink covering `levels` hash-table levels at the default
    /// entry width (cubes at higher levels are ignored, matching the
    /// materialized replay).
    pub fn new(levels: u32) -> Self {
        Self::with_layout(levels, EntryLayout::default())
    }

    /// [`RegisterCacheSink::new`] counting rows at `layout`'s entry width.
    pub fn with_layout(levels: u32, layout: EntryLayout) -> Self {
        RegisterCacheSink {
            layout,
            stats: (0..levels)
                .map(|level| LevelStreamStats {
                    level,
                    cubes: 0,
                    register_hits: 0,
                    row_requests: 0,
                })
                .collect(),
            last_id: vec![None; levels as usize],
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            levels: self.stats.clone(),
        }
    }
}

impl TraceSink for RegisterCacheSink {
    fn push_cube(&mut self, cube: &CubeLookup) {
        let li = cube.level as usize;
        if li >= self.stats.len() {
            return;
        }
        let s = &mut self.stats[li];
        s.cubes += 1;
        if self.last_id[li] == Some(cube.cube_id) {
            s.register_hits += 1;
        } else {
            s.row_requests += self.layout.cube_row_requests(cube) as u64;
            self.last_id[li] = Some(cube.cube_id);
        }
    }
}

/// Replays `trace` through the per-level register cache (the materialized
/// wrapper over [`RegisterCacheSink`]) at the default entry width.
pub fn replay_with_register_cache(trace: &LookupTrace, levels: u32) -> StreamStats {
    replay_with_register_cache_layout(trace, levels, EntryLayout::default())
}

/// [`replay_with_register_cache`] counting rows at `layout`'s entry width.
pub fn replay_with_register_cache_layout(
    trace: &LookupTrace,
    levels: u32,
    layout: EntryLayout,
) -> StreamStats {
    let mut sink = RegisterCacheSink::with_layout(levels, layout);
    for cube in trace.cubes() {
        sink.push_cube(cube);
    }
    sink.stats()
}

/// Fig. 7(b): per-level effective-memory-bandwidth improvement of `ours`
/// over `baseline`, defined as the ratio of row requests needed to deliver
/// the same embedding payload.
///
/// # Panics
///
/// Panics if the two stats cover different level counts.
pub fn effective_bandwidth_improvement(baseline: &StreamStats, ours: &StreamStats) -> Vec<f64> {
    assert_eq!(
        baseline.levels.len(),
        ours.levels.len(),
        "level count mismatch"
    );
    baseline
        .levels
        .iter()
        .zip(&ours.levels)
        .map(|(b, o)| {
            if o.row_requests == 0 {
                if b.row_requests == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                b.row_requests as f64 / o.row_requests as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HashGridConfig;
    use crate::hash::HashFunction;
    use crate::table::HashGrid;
    use inerf_geom::Vec3;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn cube_with_entries(entries: [u32; 8], id: u64) -> CubeLookup {
        CubeLookup {
            level: 0,
            entries,
            cube_id: id,
        }
    }

    #[test]
    fn row_math() {
        assert_eq!(ENTRIES_PER_ROW, 256);
        assert_eq!(row_of_entry(0), 0);
        assert_eq!(row_of_entry(255), 0);
        assert_eq!(row_of_entry(256), 1);
    }

    #[test]
    fn entry_layout_widths() {
        // fp16 F=2 entries (the default) vs their f32 twins.
        let fp16 = EntryLayout::default();
        let f32w = EntryLayout::new(8);
        assert_eq!(fp16.entries_per_row(), 256);
        assert_eq!(f32w.entries_per_row(), 128);
        // The same entry index lands in a different row once entries widen.
        assert_eq!(fp16.row_of_entry(200), 0);
        assert_eq!(f32w.row_of_entry(200), 1);
        // Payload scales exactly with the width; the row count does not
        // shrink when entries widen.
        assert_eq!(f32w.cube_payload_bytes(), 2 * fp16.cube_payload_bytes());
        let spread = cube_with_entries([0, 120, 250, 380, 500, 600, 760, 900], 7);
        assert!(f32w.cube_row_requests(&spread) >= fp16.cube_row_requests(&spread));
    }

    #[test]
    #[should_panic(expected = "entry width")]
    fn zero_entry_width_rejected() {
        EntryLayout::new(0);
    }

    #[test]
    fn layout_sinks_match_default_helpers() {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 5);
        let t = random_trace(&grid, 64, 3);
        let mut def = MeanRequestSink::new();
        let mut lay = MeanRequestSink::with_layout(EntryLayout::new(ENTRY_BYTES));
        for cube in t.cubes() {
            def.push_cube(cube);
            lay.push_cube(cube);
        }
        assert_eq!(def.mean(), lay.mean());
        let a = replay_with_register_cache(&t, grid.config().levels);
        let b = replay_with_register_cache_layout(&t, grid.config().levels, EntryLayout::default());
        assert_eq!(a, b);
    }

    #[test]
    fn cube_requests_counts_distinct_rows() {
        let one_row = cube_with_entries([0, 1, 2, 3, 4, 5, 6, 7], 0);
        assert_eq!(cube_row_requests(&one_row), 1);
        let eight_rows = cube_with_entries([0, 256, 512, 768, 1024, 1280, 1536, 1792], 1);
        assert_eq!(cube_row_requests(&eight_rows), 8);
        let two_rows = cube_with_entries([0, 0, 0, 0, 300, 300, 300, 300], 2);
        assert_eq!(cube_row_requests(&two_rows), 2);
    }

    /// Random streaming order over random points (the iNGP baseline).
    fn random_trace(grid: &HashGrid, n: usize, seed: u64) -> LookupTrace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = LookupTrace::new();
        for _ in 0..n {
            let p = Vec3::new(rng.gen(), rng.gen(), rng.gen());
            t.push_point(&grid.cube_lookups(p));
        }
        t
    }

    /// Ray-first order: points walk along rays.
    fn ray_first_trace(grid: &HashGrid, rays: usize, samples: usize, seed: u64) -> LookupTrace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = LookupTrace::new();
        for _ in 0..rays {
            let y: f32 = rng.gen();
            let z: f32 = rng.gen();
            for s in 0..samples {
                let x = (s as f32 + 0.5) / samples as f32;
                t.push_point(&grid.cube_lookups(Vec3::new(x, y, z)));
            }
        }
        t
    }

    #[test]
    fn paper_stat_morton_needs_fewer_requests_than_original() {
        // Sec. III-A: 1.58 (Morton) vs 4.02 (original) average requests per
        // cube. Exact values depend on the point distribution; we check the
        // qualitative gap and loose numeric bands.
        let morton = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 5);
        let original = HashGrid::new(HashGridConfig::paper(HashFunction::Original), 5);
        let tm = random_trace(&morton, 512, 9);
        let to = random_trace(&original, 512, 9);
        let rm = mean_requests_per_cube(&tm);
        let ro = mean_requests_per_cube(&to);
        assert!(rm < 2.5, "Morton requests/cube {rm:.2} should be < 2.5");
        assert!(ro > 3.0, "Original requests/cube {ro:.2} should be > 3.0");
        assert!(ro / rm > 1.5, "expected a clear gap, got {ro:.2}/{rm:.2}");
    }

    #[test]
    fn register_cache_hits_on_repeated_cubes() {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 2);
        let t = ray_first_trace(&grid, 8, 128, 3);
        let stats = replay_with_register_cache(&t, grid.config().levels);
        // Coarse level: heavy reuse. Fine level: little.
        assert!(stats.levels[0].hit_rate() > 0.5);
        let last = stats.levels.last().expect("paper config has 16 levels");
        assert!(stats.levels[0].hit_rate() > last.hit_rate());
        // Row requests conserve: hits issue none.
        for l in &stats.levels {
            assert!(l.register_hits <= l.cubes);
            assert!(l.row_requests <= (l.cubes - l.register_hits) * 8);
        }
    }

    #[test]
    fn combined_techniques_improve_bandwidth_within_paper_band() {
        // Fig. 7(b): Morton + ray-first vs original + random gives
        // 3.27x–35.9x per level. Our synthetic workload should land in a
        // comparable band (allowing slack at the extremes).
        let morton = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 2);
        let original = HashGrid::new(HashGridConfig::paper(HashFunction::Original), 2);
        let n_rays = 16;
        let n_samples = 128;
        let ours = replay_with_register_cache(
            &ray_first_trace(&morton, n_rays, n_samples, 3),
            morton.config().levels,
        );
        let base = replay_with_register_cache(
            &random_trace(&original, n_rays * n_samples, 3),
            original.config().levels,
        );
        let imp = effective_bandwidth_improvement(&base, &ours);
        assert_eq!(imp.len(), 16);
        for (l, &x) in imp.iter().enumerate() {
            assert!(x > 1.2, "level {l}: improvement {x:.2} should exceed 1.2x");
        }
        let max = imp.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max > 4.0,
            "peak improvement {max:.1}x should be substantial"
        );
    }

    #[test]
    fn improvement_handles_zero_requests() {
        let a = StreamStats {
            levels: vec![LevelStreamStats {
                level: 0,
                cubes: 1,
                register_hits: 1,
                row_requests: 0,
            }],
        };
        let imp = effective_bandwidth_improvement(&a, &a);
        assert_eq!(imp, vec![1.0]);
    }
}
