//! The Adam optimizer (Kingma & Ba), as used by iNGP.

use crate::fp16::quantize_f16;
use crate::store::ParamStore;
use inerf_simd::f32x8;
use serde::{Deserialize, Serialize};

/// Adam optimizer state for a flat parameter vector.
///
/// iNGP trains both the hash-table embeddings and the MLP weights with Adam;
/// the trainer crate instantiates one `AdamState` per parameter group.
///
/// # Example
///
/// ```
/// use inerf_mlp::AdamState;
///
/// let mut params = vec![1.0f32];
/// let mut adam = AdamState::new(1, 0.1);
/// for _ in 0..100 {
///     let grad = vec![2.0 * params[0]]; // minimize x^2
///     adam.step(&mut params, &grad);
/// }
/// assert!(params[0].abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Moments {
    /// First moment.
    m: f32,
    /// Second moment.
    v: f32,
    /// Lazy-mode stamp: this parameter's per-entry Adam chain has been
    /// advanced through this global step. Stays 0 in dense mode.
    step: u32,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// One 12-byte record per parameter holding the moments and the
    /// lazy-replay stamp together. A sparse step's random accesses then
    /// pull a single optimizer-state cache line per touched parameter
    /// pair instead of lines from three separate table-sized arrays
    /// (m, v, stamps) — the layout changes memory traffic only, never
    /// arithmetic.
    state: Vec<Moments>,
    t: u64,
    /// Whether lazy sparse mode is on; see [`AdamState::enable_lazy`].
    lazy: bool,
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay `β₁`.
    pub beta1: f32,
    /// Second-moment decay `β₂`.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
}

/// A plain-data image of an [`AdamState`] for checkpointing: the packed
/// `{m, v, stamp}` records flattened to bit patterns, the global step
/// (the lazy-replay epoch), the mode flag and the hyper-parameters.
///
/// Moments travel as `u32` bit patterns, not values, because a resumed
/// run must replay the *bits* of the original trajectory — a decimal
/// round-trip would already diverge on the first post-resume step.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamStateSnapshot {
    /// First-moment bit patterns, one per parameter.
    pub m_bits: Vec<u32>,
    /// Second-moment bit patterns, one per parameter.
    pub v_bits: Vec<u32>,
    /// Lazy-replay stamps, one per parameter (all 0 in dense mode).
    pub step_stamps: Vec<u32>,
    /// Global step count (the lazy-replay epoch).
    pub t: u64,
    /// Whether lazy sparse mode is on.
    pub lazy: bool,
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay `β₁`.
    pub beta1: f32,
    /// Second-moment decay `β₂`.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
}

impl AdamState {
    /// Creates Adam state for `n` parameters with iNGP-style defaults
    /// (`β₁ = 0.9`, `β₂ = 0.99`, `ε = 1e-10` scaled to `1e-8` for f32).
    pub fn new(n: usize, learning_rate: f32) -> Self {
        AdamState {
            state: vec![
                Moments {
                    m: 0.0,
                    v: 0.0,
                    step: 0
                };
                n
            ],
            t: 0,
            lazy: false,
            learning_rate,
            beta1: 0.9,
            beta2: 0.99,
            epsilon: 1e-8,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Exports the complete optimizer state as a plain-data snapshot
    /// (see [`AdamStateSnapshot`]).
    pub fn to_snapshot(&self) -> AdamStateSnapshot {
        AdamStateSnapshot {
            m_bits: self.state.iter().map(|s| s.m.to_bits()).collect(),
            v_bits: self.state.iter().map(|s| s.v.to_bits()).collect(),
            step_stamps: self.state.iter().map(|s| s.step).collect(),
            t: self.t,
            lazy: self.lazy,
            learning_rate: self.learning_rate,
            beta1: self.beta1,
            beta2: self.beta2,
            epsilon: self.epsilon,
        }
    }

    /// Rebuilds an [`AdamState`] from an exported snapshot, bit-exactly.
    ///
    /// Unlike [`AdamState::enable_lazy`], this may restore a lazy state
    /// mid-trajectory (`t > 0`) — the stamps come from the snapshot, so
    /// the replayed-through invariant is whatever the original run had.
    ///
    /// # Panics
    ///
    /// Panics if the three per-parameter vectors differ in length;
    /// callers deserializing untrusted bytes must validate lengths first
    /// and surface a typed error.
    pub fn from_snapshot(snap: &AdamStateSnapshot) -> Self {
        assert_eq!(
            snap.m_bits.len(),
            snap.v_bits.len(),
            "adam snapshot m/v length mismatch"
        );
        assert_eq!(
            snap.m_bits.len(),
            snap.step_stamps.len(),
            "adam snapshot m/stamp length mismatch"
        );
        let state = snap
            .m_bits
            .iter()
            .zip(&snap.v_bits)
            .zip(&snap.step_stamps)
            .map(|((&m, &v), &step)| Moments {
                m: f32::from_bits(m),
                v: f32::from_bits(v),
                step,
            })
            .collect();
        AdamState {
            state,
            t: snap.t,
            lazy: snap.lazy,
            learning_rate: snap.learning_rate,
            beta1: snap.beta1,
            beta2: snap.beta2,
            epsilon: snap.epsilon,
        }
    }

    /// Number of parameters this state covers.
    #[inline]
    fn n_params(&self) -> usize {
        self.state.len()
    }

    /// Performs one Adam update of `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length, or do not match the
    /// state's size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            let s = &mut self.state[i];
            s.m = self.beta1 * s.m + (1.0 - self.beta1) * g;
            s.v = self.beta2 * s.v + (1.0 - self.beta2) * g * g;
            let m_hat = s.m / b1t;
            let v_hat = s.v / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    /// A closure-style single-parameter update for use with
    /// `Mlp::for_each_param_mut`; the caller must visit parameters in a
    /// stable order covering the whole state exactly once per step.
    ///
    /// Call [`AdamState::begin_step`] once before each sweep.
    pub fn update_one(&mut self, idx: usize, param: &mut f32, grad: f32) {
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let s = &mut self.state[idx];
        s.m = self.beta1 * s.m + (1.0 - self.beta1) * grad;
        s.v = self.beta2 * s.v + (1.0 - self.beta2) * grad * grad;
        let m_hat = s.m / b1t;
        let v_hat = s.v / b2t;
        *param -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
    }

    /// Advances the step counter for a sweep of [`AdamState::update_one`]
    /// calls.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Like [`AdamState::step`], but reads each gradient as
    /// `grads[i] * scale` without materializing a scaled copy. With
    /// `scale == 1.0` this is bitwise-identical to `step` (IEEE 754
    /// multiplication by one is exact), so callers can fold a clip-norm
    /// scale in unconditionally instead of cloning and rescaling the
    /// gradient vector.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length, or do not match the
    /// state's size.
    pub fn step_scaled(&mut self, params: &mut [f32], grads: &[f32], scale: f32) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] * scale;
            let s = &mut self.state[i];
            s.m = self.beta1 * s.m + (1.0 - self.beta1) * g;
            s.v = self.beta2 * s.v + (1.0 - self.beta2) * g * g;
            let m_hat = s.m / b1t;
            let v_hat = s.v / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    // --- Lazy sparse mode -------------------------------------------------
    //
    // Per-parameter Adam chains never interact: step t of parameter i reads
    // only (m[i], v[i], params[i], grads[i], t). A sparse trainer can
    // therefore skip parameters whose gradient is exactly zero and *replay*
    // the skipped zero-gradient updates, in order, the next time the
    // parameter is read or written — the replayed arithmetic is the dense
    // arithmetic, so the result is bitwise identical. Once a parameter's m
    // and v are both +0.0 bitwise, every zero-gradient update is an exact
    // no-op (m = β₁·0 + (1-β₁)·0 = +0.0, v likewise, Δparam = lr·0/(√0+ε)
    // subtracted as +0.0) and the replay can stop early; in practice this
    // fires for never-touched parameters, which dominate at paper scale.

    /// Switches the state into lazy sparse mode, allocating the per-entry
    /// step stamps. Must be called before the first step; parameters are
    /// then updated via [`AdamState::step_sparse`] and read back through
    /// [`AdamState::sync_entries`] / [`AdamState::sync_all`].
    ///
    /// # Panics
    ///
    /// Panics if steps have already been taken (the stamps would be wrong).
    pub fn enable_lazy(&mut self) {
        assert_eq!(self.t, 0, "enable_lazy requires a fresh optimizer state");
        self.lazy = true;
    }

    /// Whether the state is in lazy sparse mode.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Exactly the per-parameter arithmetic of [`AdamState::step`] at
    /// global step `t` (the bias terms depend only on `t`, so computing
    /// them per call reproduces the dense loop's values bit-for-bit).
    #[inline]
    fn update_index(&mut self, i: usize, param: &mut f32, g: f32, t: u64) {
        let b1t = 1.0 - self.beta1.powi(t as i32);
        let b2t = 1.0 - self.beta2.powi(t as i32);
        self.update_index_with(i, param, g, b1t, b2t);
    }

    /// [`AdamState::update_index`] with the step-`t` bias corrections
    /// already computed, so a sweep over many indices at one step pays the
    /// `powi` once (as the dense loop does) instead of per scalar.
    #[inline]
    fn update_index_with(&mut self, i: usize, param: &mut f32, g: f32, b1t: f32, b2t: f32) {
        let s = &mut self.state[i];
        s.m = self.beta1 * s.m + (1.0 - self.beta1) * g;
        s.v = self.beta2 * s.v + (1.0 - self.beta2) * g * g;
        let m_hat = s.m / b1t;
        let v_hat = s.v / b2t;
        *param -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
    }

    /// Replays parameter `i`'s skipped zero-gradient updates through step
    /// `target`, with the +0.0 early-out described above.
    fn replay_to(&mut self, i: usize, param: &mut f32, target: u64) {
        let mut s = u64::from(self.state[i].step);
        if s >= target {
            return;
        }
        if self.state[i].m.to_bits() == 0 && self.state[i].v.to_bits() == 0 {
            self.state[i].step = target as u32;
            return;
        }
        while s < target {
            s += 1;
            self.update_index(i, param, 0.0, s);
        }
        self.state[i].step = target as u32;
    }

    /// Brings the listed entries (each `stride` consecutive scalars,
    /// entry `e` covering `params[e*stride .. (e+1)*stride]`) up to date
    /// with the dense chain through the current step. Order across entries
    /// is irrelevant: per-parameter chains are independent.
    ///
    /// # Panics
    ///
    /// Panics if the state is not in lazy mode or `params` mismatches it.
    pub fn sync_entries(&mut self, params: &mut [f32], entries: &[u32], stride: usize) {
        assert!(self.is_lazy(), "sync_entries requires lazy mode");
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        let t = self.t;
        for &e in entries {
            let base = e as usize * stride;
            for (off, p) in params[base..base + stride].iter_mut().enumerate() {
                self.replay_to(base + off, p, t);
            }
        }
    }

    /// Brings *every* parameter up to date with the dense chain through the
    /// current step — after this, `params` is bitwise what the dense path
    /// would hold. No-op in dense mode.
    pub fn sync_all(&mut self, params: &mut [f32]) {
        if !self.is_lazy() {
            return;
        }
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        let t = self.t;
        for (i, p) in params.iter_mut().enumerate() {
            self.replay_to(i, p, t);
        }
    }

    /// One sparse Adam step: advances the global step counter and updates
    /// only the parameters named by `indices` (scalar indices into
    /// `params`/`grads`), reading each gradient as `grads[i] * scale` (see
    /// [`AdamState::step_scaled`] for why the fold is bitwise-safe).
    /// Parameters are replayed through the previous step first, so the call
    /// is correct even without a prior [`AdamState::sync_entries`].
    ///
    /// Every parameter *not* listed must have had an exactly-zero gradient
    /// this step — that is what makes lazy replay bitwise-equal to a dense
    /// [`AdamState::step`] over the full vector.
    ///
    /// # Panics
    ///
    /// Panics if the state is not in lazy mode, `params` mismatches it, or
    /// the step counter overflows the `u32` stamps.
    pub fn step_sparse(&mut self, params: &mut [f32], grads: &[f32], indices: &[u32], scale: f32) {
        assert!(self.is_lazy(), "step_sparse requires lazy mode");
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        self.t += 1;
        let t = self.t;
        assert!(t <= u64::from(u32::MAX), "step counter exceeds u32 stamps");
        let b1t = 1.0 - self.beta1.powi(t as i32);
        let b2t = 1.0 - self.beta2.powi(t as i32);
        for &iu in indices {
            let i = iu as usize;
            let mut p = params[i];
            self.replay_to(i, &mut p, t - 1);
            let g = grads[i] * scale;
            self.update_index_with(i, &mut p, g, b1t, b2t);
            params[i] = p;
            self.state[i].step = t as u32;
        }
    }

    /// [`AdamState::step_sparse`] over a [`ParamStore`]'s master weights,
    /// fused with the store's fp16 commit: each updated master scalar is
    /// re-quantized into the working copy while its cache line is still
    /// hot, saving the separate [`ParamStore::commit_indices`] pass over
    /// the touched set. Bitwise-identical to `step_sparse` on
    /// `store.master_mut()` followed by `commit_indices(indices)`; plain
    /// `step_sparse` for f32 stores (whose commit is a no-op).
    ///
    /// # Panics
    ///
    /// As [`AdamState::step_sparse`].
    pub fn step_sparse_store(
        &mut self,
        store: &mut ParamStore,
        grads: &[f32],
        indices: &[u32],
        scale: f32,
    ) {
        let (params, active) = store.master_active_mut();
        let Some(active) = active else {
            self.step_sparse(params, grads, indices, scale);
            return;
        };
        assert!(self.is_lazy(), "step_sparse requires lazy mode");
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        self.t += 1;
        let t = self.t;
        assert!(t <= u64::from(u32::MAX), "step counter exceeds u32 stamps");
        let b1t = 1.0 - self.beta1.powi(t as i32);
        let b2t = 1.0 - self.beta2.powi(t as i32);
        for &iu in indices {
            let i = iu as usize;
            let mut p = params[i];
            self.replay_to(i, &mut p, t - 1);
            let g = grads[i] * scale;
            self.update_index_with(i, &mut p, g, b1t, b2t);
            params[i] = p;
            active[i] = quantize_f16(p);
            self.state[i].step = t as u32;
        }
    }

    /// [`AdamState::step_sparse_store`] with pre-gathered gradients:
    /// `gathered[j]` is the gradient of scalar `indices[j]`, typically
    /// collected as a side product of the caller's clip-norm pass — the
    /// step then streams the gradients sequentially instead of
    /// re-gathering one cache line per touched scalar from the dense
    /// table. `indices` must be distinct (the trainer's touched sets
    /// are): the update is blocked — gather a block, update it with
    /// eight-lane SIMD, scatter it back — so a duplicated index within a
    /// block would see stale inputs instead of chaining updates.
    ///
    /// Bitwise-identical to `step_sparse_store` on the dense gradient
    /// buffer: the SIMD lanes round exactly like the scalar expressions
    /// (`inerf_simd`'s documented contract; division and square root are
    /// IEEE-exact on every backend), and the tail of each block runs the
    /// same scalar arithmetic.
    ///
    /// # Panics
    ///
    /// As [`AdamState::step_sparse`], plus if `gathered` and `indices`
    /// lengths differ.
    pub fn step_sparse_gathered(
        &mut self,
        store: &mut ParamStore,
        gathered: &[f32],
        indices: &[u32],
        scale: f32,
    ) {
        assert!(self.is_lazy(), "step_sparse requires lazy mode");
        assert_eq!(gathered.len(), indices.len(), "gathered/indices mismatch");
        let (params, active) = store.master_active_mut();
        assert_eq!(
            params.len(),
            self.n_params(),
            "optimizer state size mismatch"
        );
        self.t += 1;
        let t = self.t;
        assert!(t <= u64::from(u32::MAX), "step counter exceeds u32 stamps");
        let b1t = 1.0 - self.beta1.powi(t as i32);
        let b2t = 1.0 - self.beta2.powi(t as i32);
        inerf_simd::vectorize(|| {
            self.step_gathered_blocks(params, active, gathered, indices, scale, b1t, b2t, t);
        });
    }

    /// Blocked body of [`AdamState::step_sparse_gathered`], running
    /// inside a `vectorize` frame. Block size keeps the gathered working
    /// set (four stack arrays plus the block's scattered cache lines)
    /// inside L1 between the gather and the scatter.
    #[allow(clippy::too_many_arguments)]
    fn step_gathered_blocks(
        &mut self,
        params: &mut [f32],
        mut active: Option<&mut [f32]>,
        gathered: &[f32],
        indices: &[u32],
        scale: f32,
        b1t: f32,
        b2t: f32,
        t: u64,
    ) {
        const BLOCK: usize = 128;
        let mut pb = [0.0f32; BLOCK];
        let mut mb = [0.0f32; BLOCK];
        let mut vb = [0.0f32; BLOCK];
        let mut gb = [0.0f32; BLOCK];
        let vb1 = f32x8::splat(self.beta1);
        let vomb1 = f32x8::splat(1.0 - self.beta1);
        let vb2 = f32x8::splat(self.beta2);
        let vomb2 = f32x8::splat(1.0 - self.beta2);
        let vb1t = f32x8::splat(b1t);
        let vb2t = f32x8::splat(b2t);
        let vlr = f32x8::splat(self.learning_rate);
        let veps = f32x8::splat(self.epsilon);
        for (blk_i, blk) in indices.chunks(BLOCK).enumerate() {
            let base = blk_i * BLOCK;
            let bn = blk.len();
            // Gather the block's parameters and moments (replaying any
            // missed zero-gradient steps first) and stamp them.
            for (j, &iu) in blk.iter().enumerate() {
                let i = iu as usize;
                let mut p = params[i];
                self.replay_to(i, &mut p, t - 1);
                pb[j] = p;
                mb[j] = self.state[i].m;
                vb[j] = self.state[i].v;
                gb[j] = gathered[base + j] * scale;
                self.state[i].step = t as u32;
            }
            // Contiguous Adam update: eight lanes at a time, operation
            // order mirroring `update_index_with` term for term.
            let full = bn - bn % f32x8::LANES;
            let mut k = 0;
            while k < full {
                let g = f32x8::from_slice(&gb[k..]);
                let m = (vb1 * f32x8::from_slice(&mb[k..])).madd(vomb1, g);
                let v = (vb2 * f32x8::from_slice(&vb[k..])).madd(vomb2 * g, g);
                let m_hat = m / vb1t;
                let v_hat = v / vb2t;
                let p = f32x8::from_slice(&pb[k..]) - (vlr * m_hat) / (v_hat.sqrt() + veps);
                m.write_to(&mut mb[k..]);
                v.write_to(&mut vb[k..]);
                p.write_to(&mut pb[k..]);
                k += f32x8::LANES;
            }
            // Scalar tail — bitwise the same arithmetic as the lanes.
            for j in full..bn {
                let g = gb[j];
                let m = self.beta1 * mb[j] + (1.0 - self.beta1) * g;
                let v = self.beta2 * vb[j] + (1.0 - self.beta2) * g * g;
                let m_hat = m / b1t;
                let v_hat = v / b2t;
                pb[j] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
                mb[j] = m;
                vb[j] = v;
            }
            // Scatter back while the block's lines are still hot; fp16
            // stores re-quantize the working copy in the same pass.
            match active.as_deref_mut() {
                Some(active) => {
                    for (j, &iu) in blk.iter().enumerate() {
                        let i = iu as usize;
                        params[i] = pb[j];
                        self.state[i].m = mb[j];
                        self.state[i].v = vb[j];
                        active[i] = quantize_f16(pb[j]);
                    }
                }
                None => {
                    for (j, &iu) in blk.iter().enumerate() {
                        let i = iu as usize;
                        params[i] = pb[j];
                        self.state[i].m = mb[j];
                        self.state[i].v = vb[j];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut p = vec![5.0f32, -3.0];
        let mut adam = AdamState::new(2, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * p[0], 2.0 * p[1]];
            adam.step(&mut p, &g);
        }
        assert!(
            p[0].abs() < 0.05 && p[1].abs() < 0.05,
            "did not converge: {p:?}"
        );
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn bias_correction_makes_first_step_lr_sized() {
        // With bias correction, the first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        for scale in [1e-3f32, 1.0, 1e3] {
            let mut p = vec![0.0f32];
            let mut adam = AdamState::new(1, 0.01);
            adam.step(&mut p, &[scale]);
            assert!(
                (p[0].abs() - 0.01).abs() < 1e-4,
                "first step for grad {scale}: {}",
                p[0]
            );
        }
    }

    #[test]
    fn update_one_matches_step() {
        let mut p1 = vec![1.0f32, 2.0, 3.0];
        let mut p2 = p1.clone();
        let g = vec![0.5f32, -0.2, 0.9];
        let mut a1 = AdamState::new(3, 0.05);
        let mut a2 = AdamState::new(3, 0.05);
        for _ in 0..10 {
            a1.step(&mut p1, &g);
            a2.begin_step();
            for i in 0..3 {
                a2.update_one(i, &mut p2[i], g[i]);
            }
        }
        for (x, y) in p1.iter().zip(&p2) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = AdamState::new(2, 0.1);
        let mut p = vec![0.0f32, 0.0];
        adam.step(&mut p, &[1.0]);
    }

    #[test]
    fn zero_gradient_is_noop() {
        let mut p = vec![1.5f32];
        let mut adam = AdamState::new(1, 0.1);
        adam.step(&mut p, &[0.0]);
        assert_eq!(p[0], 1.5);
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    fn moment_bits(a: &AdamState) -> Vec<(u32, u32)> {
        a.state
            .iter()
            .map(|s| (s.m.to_bits(), s.v.to_bits()))
            .collect()
    }

    #[test]
    fn step_scaled_matches_clone_and_rescale_bitwise() {
        // The old dense path cloned the gradient vector and rescaled it
        // before stepping; folding the scale into the gradient read must
        // reproduce it bit-for-bit — including the scale == 1.0 identity.
        for scale in [1.0f32, 0.37, 1.0 / 3.0] {
            let g = vec![0.5f32, -0.2, 0.0, 3.0e-7, -0.0];
            let mut p1 = vec![1.0f32, 2.0, -3.0, 0.25, 9.0];
            let mut p2 = p1.clone();
            let mut a1 = AdamState::new(5, 0.05);
            let mut a2 = AdamState::new(5, 0.05);
            for _ in 0..25 {
                let scaled: Vec<f32> = g.iter().map(|x| x * scale).collect();
                a1.step(&mut p1, &scaled);
                a2.step_scaled(&mut p2, &g, scale);
            }
            assert_eq!(bits(&p1), bits(&p2), "scale {scale}");
            assert_eq!(moment_bits(&a1), moment_bits(&a2), "moments, scale {scale}");
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_mid_trajectory() {
        // Export mid-run (unsynced lazy stamps and all), rebuild, and the
        // restored optimizer must continue bit-identically to the
        // original — including entries whose replay is still pending.
        let n = 5;
        let mut p: Vec<f32> = (0..n).map(|i| 0.1 * i as f32 - 0.2).collect();
        let mut adam = AdamState::new(n, 0.015);
        adam.enable_lazy();
        for (step, touched) in [&[0u32, 3][..], &[3][..], &[1, 4][..]].iter().enumerate() {
            let mut g = vec![0.0f32; n];
            for &i in *touched {
                g[i as usize] = 0.2 * (step as f32 + 1.0);
            }
            adam.step_sparse(&mut p, &g, touched, 1.0);
        }
        let snap = adam.to_snapshot();
        assert_eq!(snap.t, 3);
        assert!(snap.lazy);
        let mut restored = AdamState::from_snapshot(&snap);
        assert_eq!(restored, adam);
        let mut p2 = p.clone();
        let g = vec![0.05f32; n];
        let touched: Vec<u32> = (0..n as u32).collect();
        adam.step_sparse(&mut p, &g, &touched, 1.0);
        restored.step_sparse(&mut p2, &g, &touched, 1.0);
        adam.sync_all(&mut p);
        restored.sync_all(&mut p2);
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&p), bits(&p2));
        assert_eq!(restored, adam);
    }

    #[test]
    fn lazy_replay_matches_dense_bitwise() {
        // A fixed touch schedule: at each step only some parameters carry a
        // nonzero gradient. Dense steps the full vector (zeros included);
        // lazy steps only the touched indices and replays on demand. After
        // sync_all the two must agree to the bit — params, m, and v.
        let n = 6;
        let schedule: &[&[u32]] = &[
            &[0, 2],
            &[2],
            &[],
            &[1, 2, 4],
            &[0],
            &[],
            &[],
            &[4],
            &[1],
            &[0, 1, 2, 4],
        ];
        let mut dense_p: Vec<f32> = (0..n).map(|i| 0.3 * i as f32 - 0.7).collect();
        let mut lazy_p = dense_p.clone();
        let mut dense = AdamState::new(n, 0.02);
        let mut lazy = AdamState::new(n, 0.02);
        lazy.enable_lazy();
        for (step, touched) in schedule.iter().enumerate() {
            let mut g = vec![0.0f32; n];
            for &i in *touched {
                g[i as usize] = (step as f32 + 1.0) * 0.1 * if i % 2 == 0 { 1.0 } else { -1.0 };
            }
            dense.step(&mut dense_p, &g);
            lazy.step_sparse(&mut lazy_p, &g, touched, 1.0);
        }
        // Parameter 5 is never touched: with m = v = +0.0 its dense chain
        // is a string of exact no-ops, so even *without* replay it matches.
        assert_eq!(dense_p[5].to_bits(), lazy_p[5].to_bits());
        lazy.sync_all(&mut lazy_p);
        assert_eq!(bits(&dense_p), bits(&lazy_p), "params");
        assert_eq!(moment_bits(&dense), moment_bits(&lazy), "moments");
        assert_eq!(dense.steps(), lazy.steps());
    }

    #[test]
    fn sync_entries_replays_at_entry_granularity() {
        // Two scalars per entry: touching entry 1 must replay scalars 2..4.
        let mut dense_p = vec![1.0f32; 6];
        let mut lazy_p = dense_p.clone();
        let mut dense = AdamState::new(6, 0.1);
        let mut lazy = AdamState::new(6, 0.1);
        lazy.enable_lazy();
        let g = vec![0.4f32, -0.4, 0.2, 0.2, 0.0, 0.0];
        dense.step(&mut dense_p, &g);
        lazy.step_sparse(&mut lazy_p, &g, &[0, 1, 2, 3], 1.0);
        for _ in 0..5 {
            dense.step(&mut dense_p, &[0.0f32; 6]);
            lazy.step_sparse(&mut lazy_p, &[0.0; 6], &[], 1.0);
        }
        lazy.sync_entries(&mut lazy_p, &[1], 2);
        assert_eq!(bits(&dense_p[2..4]), bits(&lazy_p[2..4]));
    }

    #[test]
    fn zero_moment_early_out_is_bitwise_exact() {
        // Never-touched parameters keep m = v = +0.0; the early-out skips
        // their replay entirely and must still match dense bit-for-bit,
        // for positive, negative, zero and subnormal parameter values.
        let init = [1.5f32, -2.25, 0.0, -0.0, 1.0e-40, f32::MIN_POSITIVE];
        let mut dense_p = init.to_vec();
        let mut lazy_p = init.to_vec();
        let mut dense = AdamState::new(init.len(), 0.1);
        let mut lazy = AdamState::new(init.len(), 0.1);
        lazy.enable_lazy();
        let zeros = vec![0.0f32; init.len()];
        for _ in 0..50 {
            dense.step(&mut dense_p, &zeros);
            lazy.step_sparse(&mut lazy_p, &zeros, &[], 1.0);
        }
        lazy.sync_all(&mut lazy_p);
        assert_eq!(bits(&dense_p), bits(&lazy_p));
        // The early-out really fired: every stamp jumped straight to t.
        assert!(lazy.state.iter().all(|s| u64::from(s.step) == lazy.steps()));
    }

    #[test]
    fn touched_then_abandoned_entry_replays_decay() {
        // A parameter touched once and then abandoned decays m and v toward
        // zero; replay must walk those decay steps (they are *not* no-ops)
        // and land on the dense bits.
        let mut dense_p = vec![1.0f32, 1.0];
        let mut lazy_p = dense_p.clone();
        let mut dense = AdamState::new(2, 0.05);
        let mut lazy = AdamState::new(2, 0.05);
        lazy.enable_lazy();
        dense.step(&mut dense_p, &[0.8, 0.0]);
        lazy.step_sparse(&mut lazy_p, &[0.8, 0.0], &[0], 1.0);
        for _ in 0..200 {
            dense.step(&mut dense_p, &[0.0, 0.0]);
            lazy.step_sparse(&mut lazy_p, &[0.0, 0.0], &[], 1.0);
        }
        lazy.sync_all(&mut lazy_p);
        assert_eq!(bits(&dense_p), bits(&lazy_p));
        assert_eq!(moment_bits(&dense), moment_bits(&lazy));
    }

    #[test]
    fn step_sparse_store_fuses_commit_bitwise() {
        use crate::store::{ParamStore, Precision};
        // Large enough that the gathered path runs several full SIMD
        // groups plus a scalar tail.
        let init: Vec<f32> = (0..61)
            .map(|i| 0.3 - 0.07 * i as f32 + 1.0e-4 * (i * i) as f32)
            .collect();
        let touched_all: Vec<u32> = (0..init.len() as u32).collect();
        let touched_most: Vec<u32> = (0..init.len() as u32).filter(|i| i % 5 != 3).collect();
        for precision in [Precision::F32, Precision::Fp16] {
            let mut split = ParamStore::new(precision, init.clone());
            let mut fused = ParamStore::new(precision, init.clone());
            let mut gath = ParamStore::new(precision, init.clone());
            let mut split_adam = AdamState::new(init.len(), 0.05);
            let mut fused_adam = AdamState::new(init.len(), 0.05);
            let mut gath_adam = AdamState::new(init.len(), 0.05);
            split_adam.enable_lazy();
            fused_adam.enable_lazy();
            gath_adam.enable_lazy();
            let touched_sets: [&[u32]; 4] = [&[0, 2, 5], &[1, 2], &touched_most, &touched_all];
            for (k, touched) in touched_sets.iter().enumerate() {
                let mut grads = vec![0.0f32; init.len()];
                for &i in *touched {
                    grads[i as usize] = 0.1 * (i as f32 + 1.0) - 0.25 * k as f32;
                }
                split_adam.step_sparse(split.master_mut(), &grads, touched, 0.75);
                split.commit_indices(touched);
                fused_adam.step_sparse_store(&mut fused, &grads, touched, 0.75);
                let gathered: Vec<f32> = touched.iter().map(|&i| grads[i as usize]).collect();
                gath_adam.step_sparse_gathered(&mut gath, &gathered, touched, 0.75);
                assert_eq!(bits(split.master()), bits(fused.master()));
                assert_eq!(bits(split.values()), bits(fused.values()));
                assert_eq!(bits(split.master()), bits(gath.master()));
                assert_eq!(bits(split.values()), bits(gath.values()));
            }
        }
    }
}
