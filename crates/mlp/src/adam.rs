//! The Adam optimizer (Kingma & Ba), as used by iNGP.

use serde::{Deserialize, Serialize};

/// Adam optimizer state for a flat parameter vector.
///
/// iNGP trains both the hash-table embeddings and the MLP weights with Adam;
/// the trainer crate instantiates one `AdamState` per parameter group.
///
/// # Example
///
/// ```
/// use inerf_mlp::AdamState;
///
/// let mut params = vec![1.0f32];
/// let mut adam = AdamState::new(1, 0.1);
/// for _ in 0..100 {
///     let grad = vec![2.0 * params[0]]; // minimize x^2
///     adam.step(&mut params, &grad);
/// }
/// assert!(params[0].abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay `β₁`.
    pub beta1: f32,
    /// Second-moment decay `β₂`.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub epsilon: f32,
}

impl AdamState {
    /// Creates Adam state for `n` parameters with iNGP-style defaults
    /// (`β₁ = 0.9`, `β₂ = 0.99`, `ε = 1e-10` scaled to `1e-8` for f32).
    pub fn new(n: usize, learning_rate: f32) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            learning_rate,
            beta1: 0.9,
            beta2: 0.99,
            epsilon: 1e-8,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Performs one Adam update of `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length, or do not match the
    /// state's size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.m.len(), "optimizer state size mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    /// A closure-style single-parameter update for use with
    /// `Mlp::for_each_param_mut`; the caller must visit parameters in a
    /// stable order covering the whole state exactly once per step.
    ///
    /// Call [`AdamState::begin_step`] once before each sweep.
    pub fn update_one(&mut self, idx: usize, param: &mut f32, grad: f32) {
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        self.m[idx] = self.beta1 * self.m[idx] + (1.0 - self.beta1) * grad;
        self.v[idx] = self.beta2 * self.v[idx] + (1.0 - self.beta2) * grad * grad;
        let m_hat = self.m[idx] / b1t;
        let v_hat = self.v[idx] / b2t;
        *param -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
    }

    /// Advances the step counter for a sweep of [`AdamState::update_one`]
    /// calls.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut p = vec![5.0f32, -3.0];
        let mut adam = AdamState::new(2, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * p[0], 2.0 * p[1]];
            adam.step(&mut p, &g);
        }
        assert!(
            p[0].abs() < 0.05 && p[1].abs() < 0.05,
            "did not converge: {p:?}"
        );
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn bias_correction_makes_first_step_lr_sized() {
        // With bias correction, the first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        for scale in [1e-3f32, 1.0, 1e3] {
            let mut p = vec![0.0f32];
            let mut adam = AdamState::new(1, 0.01);
            adam.step(&mut p, &[scale]);
            assert!(
                (p[0].abs() - 0.01).abs() < 1e-4,
                "first step for grad {scale}: {}",
                p[0]
            );
        }
    }

    #[test]
    fn update_one_matches_step() {
        let mut p1 = vec![1.0f32, 2.0, 3.0];
        let mut p2 = p1.clone();
        let g = vec![0.5f32, -0.2, 0.9];
        let mut a1 = AdamState::new(3, 0.05);
        let mut a2 = AdamState::new(3, 0.05);
        for _ in 0..10 {
            a1.step(&mut p1, &g);
            a2.begin_step();
            for i in 0..3 {
                a2.update_one(i, &mut p2[i], g[i]);
            }
        }
        for (x, y) in p1.iter().zip(&p2) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = AdamState::new(2, 0.1);
        let mut p = vec![0.0f32, 0.0];
        adam.step(&mut p, &[1.0]);
    }

    #[test]
    fn zero_gradient_is_noop() {
        let mut p = vec![1.5f32];
        let mut adam = AdamState::new(1, 0.1);
        adam.step(&mut p, &[0.0]);
        assert_eq!(p[0], 1.5);
    }
}
