//! IEEE 754 binary16 conversion.
//!
//! The paper's accelerator handles mixed precision: hash-table entries are
//! stored as 32-bit vectors of two FP16 features while computation runs in
//! FP32/INT32 (Sec. IV-A). These conversions model the quantization the
//! storage path introduces, and are used by the accelerator model and by
//! quantization-robustness tests.

/// Converts an `f32` to its nearest IEEE 754 binary16 bit pattern
/// (round-to-nearest-even), with overflow mapping to infinity.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        let nan_bit = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit;
    }
    // Re-bias exponent: f32 bias 127 → f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal f16. Round the 23-bit fraction to 10 bits, RNE.
        let mantissa = frac >> 13;
        let round_bits = frac & 0x1fff;
        let mut h = sign | (((unbiased + 15) as u16) << 10) | mantissa as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mantissa & 1) == 1) {
            h = h.wrapping_add(1); // may carry into exponent — that is correct RNE
        }
        return h;
    }
    if unbiased >= -25 {
        // Subnormal f16. Round the full 24-bit significand in one step:
        // shifting in two stages (first >> 13, then >> shift) discards the
        // low 13 bits before rounding, losing the sticky bits that break
        // round-half-up vs round-half-even ties.
        let sig = frac | 0x0080_0000; // implicit leading 1, 24 bits
        let shift = (13 + (-14 - unbiased)) as u32; // 14..=24
        let mantissa = sig >> shift;
        let rem = sig & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut h = sign | mantissa as u16;
        if rem > half || (rem == half && (mantissa & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    sign // underflow → signed zero
}

/// Converts an IEEE 754 binary16 bit pattern to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    let bits = if exp == 0x1f {
        // Inf/NaN.
        sign | 0x7f80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: value = frac * 2^-24. Normalize around the MSB.
            let k = 31 - frac.leading_zeros(); // MSB position, 0..=9
            let exp_n = 103 + k; // (k - 24) + 127
            let frac_n = (frac << (10 - k)) & 0x3ff; // drop implicit leading 1
            sign | (exp_n << 23) | (frac_n << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Quantizes through FP16 and back — the storage-path round trip.
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_integers() {
        for i in -128i32..=128 {
            let x = i as f32;
            assert_eq!(quantize_f16(x), x, "integer {i} must round-trip exactly");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16 max
        assert_eq!(f32_to_f16_bits(1e6), 0x7c00); // overflow → inf
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
    }

    #[test]
    fn subnormals_round_trip() {
        let smallest_subnormal = f16_bits_to_f32(0x0001);
        assert!(smallest_subnormal > 0.0);
        assert_eq!(f32_to_f16_bits(smallest_subnormal), 0x0001);
        let largest_subnormal = f16_bits_to_f32(0x03ff);
        assert_eq!(f32_to_f16_bits(largest_subnormal), 0x03ff);
    }

    #[test]
    fn nan_preserved() {
        let q = quantize_f16(f32::NAN);
        assert!(q.is_nan());
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        // FP16 has 11 significand bits → relative error <= 2^-11.
        for &x in &[
            0.001f32,
            0.1,
            0.5,
            1.0,
            std::f32::consts::PI,
            100.0,
            60000.0,
        ] {
            let q = quantize_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x}: rel err {rel}");
        }
    }

    /// The monotone ladder of positive f16 values, indexed by bit pattern.
    /// The top rung (`0x7c00`, infinity) is replaced by 65536.0 — the next
    /// step after f16::MAX if the exponent range were unbounded — because
    /// IEEE rounds overflow against that virtual value, not against ∞.
    fn f16_value_ladder() -> Vec<f64> {
        let mut ladder: Vec<f64> = (0u16..=0x7c00).map(|h| f16_bits_to_f32(h) as f64).collect();
        *ladder.last_mut().expect("ladder is nonempty") = 65536.0;
        ladder
    }

    /// Reference nearest-even conversion for positive finite `x`: binary
    /// search the ladder for the two bracketing f16 values and pick the
    /// closer one, breaking exact ties toward the even mantissa.
    fn reference_nearest_positive(ladder: &[f64], x: f32) -> u16 {
        assert!(x >= 0.0 && x.is_finite());
        let x = x as f64;
        let above = ladder.partition_point(|&v| v < x); // first index with v >= x
        if above == 0 {
            return 0;
        }
        if above >= ladder.len() {
            return (ladder.len() - 1) as u16; // beyond f16::MAX → inf
        }
        let (lo, hi) = (above - 1, above);
        let (err_lo, err_hi) = (x - ladder[lo], ladder[hi] - x);
        if err_lo < err_hi || (err_lo == err_hi && lo & 1 == 0) {
            lo as u16
        } else {
            hi as u16
        }
    }

    #[test]
    fn subnormal_rounding_uses_sticky_bits() {
        // Regression: the subnormal path used to shift the significand in
        // two stages, dropping the low 13 bits before rounding. A value
        // just above a subnormal tie then rounded to even instead of up.
        //
        // x = 2^-15 * (1 + 2^-10 + 2^-23): as a subnormal multiple of
        // 2^-24 this is 512.5 + 2^-14, so RNE must give 513 (0x201);
        // the sticky-less code returned 512 (0x200).
        let x = f32::from_bits((112 << 23) | 0x2001);
        assert_eq!(f32_to_f16_bits(x), 0x201);
        // The exact tie (drop the +2^-23) still rounds to even.
        let tie = f32::from_bits((112 << 23) | 0x2000);
        assert_eq!(f32_to_f16_bits(tie), 0x200);
    }

    #[test]
    fn subnormal_zero_boundary_rounds_not_flushes() {
        // Regression: inputs below 2^-24 were flushed to zero outright,
        // but values in (2^-25, 2^-24) must round UP to the smallest
        // subnormal 0x0001 under RNE.
        let tiny = 2.0f32.powi(-25);
        assert_eq!(
            f32_to_f16_bits(tiny),
            0x0000,
            "exact tie goes to even (zero)"
        );
        assert_eq!(
            f32_to_f16_bits(tiny * 1.5),
            0x0001,
            "above the tie rounds up"
        );
        assert_eq!(f32_to_f16_bits(f32::from_bits(tiny.to_bits() + 1)), 0x0001);
        assert_eq!(
            f32_to_f16_bits(tiny * 0.99),
            0x0000,
            "below the tie rounds down"
        );
    }

    #[test]
    fn subnormal_range_matches_nearest_even_reference() {
        // Dense sweep across the f16 subnormal range (and the boundary
        // into normals) against the nearest-even reference.
        let ladder = f16_value_ladder();
        for i in 1..=2048u32 {
            // Cover (0, 2^-13]: subnormals end at 2^-14.
            let x = i as f32 * 2.0f32.powi(-24);
            assert_eq!(
                f32_to_f16_bits(x),
                reference_nearest_positive(&ladder, x),
                "x = {i} * 2^-24"
            );
            // Perturb off the exact grid in both directions.
            for delta in [1i32, -1] {
                let y = f32::from_bits(x.to_bits().wrapping_add_signed(delta));
                assert_eq!(
                    f32_to_f16_bits(y),
                    reference_nearest_positive(&ladder, y),
                    "x = {i} * 2^-24 {delta:+} ulp"
                );
            }
        }
    }

    #[test]
    fn all_65536_f16_bit_patterns_roundtrip_exhaustively() {
        // f16 → f32 → f16 must be the identity for every one of the 65536
        // bit patterns (modulo NaN payload canonicalization) — the storage
        // path may never corrupt a committed fp16 parameter.
        for h in 0u16..=0xffff {
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                assert!(
                    f16_bits_to_f32(f32_to_f16_bits(x)).is_nan(),
                    "NaN pattern {h:#06x} lost NaN-ness"
                );
            } else {
                assert_eq!(f32_to_f16_bits(x), h, "pattern {h:#06x} did not round-trip");
            }
        }
    }

    #[test]
    fn overflow_boundary_rne() {
        // 65520 = (65504 + 65536) / 2 is the tie between f16::MAX and the
        // (unrepresentable) next step; RNE sends it to infinity.
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00);
        assert_eq!(f32_to_f16_bits(65519.996), 0x7bff);
        assert_eq!(f32_to_f16_bits(-65520.0), 0xfc00);
        // Mantissa carry propagating into the exponent: 2047.75 is halfway
        // between 2047.0 and 2048.0 in the 1024..2048 binade; RNE picks
        // 2048.0, carrying into the next exponent.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(2047.75)), 2048.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn matches_nearest_even_reference(bits in 0u32..0x4780_0000) {
            // Uniform over positive f32 bit patterns below 65536.0 covers
            // every f16 binade (subnormal through overflow) including the
            // hard rounding neighbourhoods.
            let ladder = f16_value_ladder();
            let x = f32::from_bits(bits);
            prop_assert_eq!(f32_to_f16_bits(x), reference_nearest_positive(&ladder, x));
        }
    }

    proptest! {
        #[test]
        fn roundtrip_is_idempotent(x in -60000.0f32..60000.0) {
            let q = quantize_f16(x);
            prop_assert_eq!(quantize_f16(q), q);
        }

        #[test]
        fn quantization_error_small(x in -1.0f32..1.0) {
            let q = quantize_f16(x);
            prop_assert!((q - x).abs() <= x.abs() / 1024.0 + 1e-7);
        }
    }
}
