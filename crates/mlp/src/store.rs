//! Mixed-precision parameter storage.
//!
//! The paper's accelerator keeps hash-table entries and MLP weights in
//! half precision (32-bit vectors of two FP16 features, Sec. IV-A) while
//! accumulating in FP32. [`ParamStore`] makes that storage decision a
//! first-class parameter of the software model: every trainable parameter
//! group lives behind a store whose [`Precision`] selects the backend.
//!
//! * [`Precision::F32`] — a plain `f32` vector. Bit-identical to the
//!   pre-store code path; this is the equivalence anchor the refactor is
//!   tested against.
//! * [`Precision::Fp16`] — fp16 storage with f32 *master weights*. The
//!   optimizer updates the master copy (so sub-fp16-resolution updates
//!   accumulate instead of vanishing), and every [`ParamStore::commit`]
//!   re-quantizes the working copy with round-to-nearest-even through
//!   [`crate::fp16::f32_to_f16_bits`]. Compute kernels read the decoded
//!   working values, so the forward/backward math sees exactly what fp16
//!   hardware storage would deliver.
//!
//! The modeled storage footprint ([`ParamStore::storage_bytes`]) is what
//! the hardware would keep resident: 4 bytes per parameter for f32, 2 for
//! fp16 — the quantity the DRAM traffic and table-size models consume.

use crate::fp16::quantize_f16;
use serde::{Deserialize, Serialize};

/// Storage precision of a trainable parameter group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Full single precision (4 bytes per parameter) — the software
    /// reference and the pre-refactor behavior.
    F32,
    /// IEEE 754 binary16 storage (2 bytes per parameter) with f32 master
    /// weights for the optimizer — the paper's hardware storage format.
    Fp16,
}

impl Precision {
    /// Modeled storage bytes per parameter scalar.
    #[inline]
    pub const fn bytes_per_param(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Fp16 => 2,
        }
    }

    /// Lower-case label for reports and JSON dumps.
    pub const fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Fp16 => "fp16",
        }
    }
}

/// A flat parameter vector stored at a chosen [`Precision`].
///
/// Compute reads [`ParamStore::values`]; the optimizer mutates
/// [`ParamStore::master_mut`] and then calls [`ParamStore::commit`] (or
/// uses [`ParamStore::update`], which pairs the two). For `F32` the master
/// *is* the working copy and `commit` is a no-op, so the f32 backend is
/// bit-identical to a plain `Vec<f32>`.
///
/// Serialization note: the serde derives carry both `master` and the
/// derived `active` buffer (the vendored serde stand-in has no hook to
/// rebuild one from the other); deserialized data must uphold
/// `active[i] == quantize_f16(master[i])` — [`ParamStore::commit`]
/// restores the invariant if in doubt.
///
/// # Example
///
/// ```
/// use inerf_mlp::{ParamStore, Precision};
///
/// let mut store = ParamStore::new(Precision::Fp16, vec![0.1f32, -0.2]);
/// // Compute sees the quantized working copy...
/// assert_ne!(store.values()[0], 0.1);
/// // ...while the optimizer accumulates into exact f32 master weights.
/// store.update(|master| master[0] += 1e-5);
/// assert!((store.master()[0] - (0.1 + 1e-5)).abs() < 1e-9);
/// assert_eq!(store.storage_bytes(), 2 * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    precision: Precision,
    /// f32 master weights — what the optimizer updates.
    master: Vec<f32>,
    /// The fp16-rounded working values the compute kernels read — each
    /// element is exactly representable in binary16, so this *is* the
    /// stored table, decoded (empty for F32; [`ParamStore::values`]
    /// falls back to `master`).
    active: Vec<f32>,
}

impl ParamStore {
    /// Wraps `values` as the initial master weights, quantizing the
    /// working copy for fp16 stores.
    pub fn new(precision: Precision, values: Vec<f32>) -> Self {
        let mut store = ParamStore {
            precision,
            master: values,
            active: Vec::new(),
        };
        if precision == Precision::Fp16 {
            store.active = store.master.iter().map(|&v| quantize_f16(v)).collect();
        }
        store
    }

    /// An f32 store — the pre-refactor default backend.
    pub fn f32(values: Vec<f32>) -> Self {
        Self::new(Precision::F32, values)
    }

    /// The storage precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of parameter scalars.
    pub fn len(&self) -> usize {
        self.master.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    /// The working values compute kernels read: the master weights for
    /// f32, the decoded fp16 working copy otherwise.
    #[inline]
    pub fn values(&self) -> &[f32] {
        match self.precision {
            Precision::F32 => &self.master,
            Precision::Fp16 => &self.active,
        }
    }

    /// The f32 master weights (equal to [`ParamStore::values`] for f32).
    pub fn master(&self) -> &[f32] {
        &self.master
    }

    /// Mutable master weights for an optimizer sweep. Callers must invoke
    /// [`ParamStore::commit`] afterwards so fp16 stores re-quantize the
    /// working copy; prefer [`ParamStore::update`], which pairs the two.
    pub fn master_mut(&mut self) -> &mut [f32] {
        &mut self.master
    }

    /// Master weights plus the fp16 working copy (`None` for f32 stores),
    /// for fused update-and-commit loops that re-quantize each scalar
    /// while its cache line is still hot. Callers must uphold the store
    /// invariant themselves: every modified `master[i]` needs
    /// `active[i] = quantize_f16(master[i])` before the next read
    /// ([`ParamStore::commit`] restores it wholesale if in doubt).
    pub fn master_active_mut(&mut self) -> (&mut [f32], Option<&mut [f32]>) {
        match self.precision {
            Precision::F32 => (&mut self.master, None),
            Precision::Fp16 => (&mut self.master, Some(&mut self.active)),
        }
    }

    /// Re-quantizes the working copy from the master weights (RNE through
    /// the fp16 storage path). No-op for f32 stores.
    pub fn commit(&mut self) {
        if self.precision == Precision::Fp16 {
            for (a, &m) in self.active.iter_mut().zip(&self.master) {
                *a = quantize_f16(m);
            }
        }
    }

    /// Re-quantizes the working copy at just the listed scalar indices —
    /// the sparse-optimizer counterpart of [`ParamStore::commit`]. Sound
    /// whenever only those master weights changed since the last commit;
    /// the result is then bitwise-identical to a full `commit`. No-op for
    /// f32 stores.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn commit_indices(&mut self, indices: &[u32]) {
        if self.precision == Precision::Fp16 {
            for &i in indices {
                let i = i as usize;
                self.active[i] = quantize_f16(self.master[i]);
            }
        }
    }

    /// Applies `f` to the master weights, then commits.
    pub fn update(&mut self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.master);
        self.commit();
    }

    /// Overwrites one master weight and commits it (test/tooling hook).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize, value: f32) {
        self.master[idx] = value;
        if self.precision == Precision::Fp16 {
            self.active[idx] = quantize_f16(value);
        }
    }

    /// Modeled storage footprint in bytes: what the hardware would keep
    /// resident for this parameter group at this precision.
    pub fn storage_bytes(&self) -> usize {
        self.master.len() * self.precision.bytes_per_param()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp16::quantize_f16;

    #[test]
    fn precision_bytes_halve() {
        assert_eq!(Precision::F32.bytes_per_param(), 4);
        assert_eq!(Precision::Fp16.bytes_per_param(), 2);
        assert_eq!(Precision::F32.label(), "f32");
        assert_eq!(Precision::Fp16.label(), "fp16");
    }

    #[test]
    fn f32_store_is_transparent() {
        let vals = vec![0.1f32, -2.5, 1e-7, 12345.678];
        let mut store = ParamStore::f32(vals.clone());
        assert_eq!(store.values(), vals.as_slice());
        assert_eq!(store.master(), vals.as_slice());
        store.update(|m| m[0] = 9.0);
        assert_eq!(store.values()[0], 9.0);
        assert_eq!(store.storage_bytes(), 4 * 4);
    }

    #[test]
    fn fp16_store_quantizes_values_but_keeps_master_exact() {
        let vals = vec![0.1f32, -0.37, 7.625];
        let mut store = ParamStore::new(Precision::Fp16, vals.clone());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(store.values()[i], quantize_f16(v), "value {i}");
            assert_eq!(store.master()[i], v, "master {i}");
        }
        // A sub-resolution master update survives even though the working
        // copy cannot represent it...
        let before = store.values()[0];
        store.update(|m| m[0] += 1e-8);
        assert_eq!(store.values()[0], before);
        assert!(store.master()[0] > vals[0]);
        // ...and accumulating enough of them eventually moves the value.
        for _ in 0..100_000 {
            store.update(|m| m[0] += 1e-8);
        }
        assert!(store.values()[0] > before);
    }

    #[test]
    fn storage_bytes_half_of_f32() {
        let vals: Vec<f32> = (0..1000).map(|i| i as f32 * 0.01).collect();
        let full = ParamStore::new(Precision::F32, vals.clone());
        let half = ParamStore::new(Precision::Fp16, vals);
        assert_eq!(full.storage_bytes(), 2 * half.storage_bytes());
    }

    #[test]
    fn set_commits_one_slot() {
        let mut store = ParamStore::new(Precision::Fp16, vec![0.0f32; 4]);
        store.set(2, 0.3);
        assert_eq!(store.values()[2], quantize_f16(0.3));
        assert_eq!(store.master()[2], 0.3);
        assert_eq!(store.values()[0], 0.0);
    }

    #[test]
    fn commit_indices_matches_full_commit() {
        let vals = vec![0.1f32, -0.37, 7.625, 1.0e-3];
        let mut sparse = ParamStore::new(Precision::Fp16, vals.clone());
        let mut full = ParamStore::new(Precision::Fp16, vals);
        let touch = |s: &mut ParamStore| {
            s.master_mut()[1] = 0.91;
            s.master_mut()[3] = -2.5e-4;
        };
        touch(&mut sparse);
        touch(&mut full);
        sparse.commit_indices(&[1, 3]);
        full.commit();
        assert_eq!(sparse.values(), full.values());
        // f32 stores: master is the working copy, nothing to do.
        let mut f32s = ParamStore::f32(vec![1.0, 2.0]);
        f32s.master_mut()[0] = 5.0;
        f32s.commit_indices(&[0]);
        assert_eq!(f32s.values(), &[5.0, 2.0]);
    }

    #[test]
    fn commit_is_idempotent() {
        let mut store = ParamStore::new(Precision::Fp16, vec![0.12345f32, -7.7]);
        let once = store.values().to_vec();
        store.commit();
        store.commit();
        assert_eq!(store.values(), once.as_slice());
    }
}
