//! Small fully-connected networks with explicit backward passes.
//!
//! iNGP replaces the giant vanilla-NeRF MLP with two small heads: a density
//! MLP (`MLPd`) and a color MLP (`MLPc`), both a few layers of width 64.
//! This crate implements them from scratch:
//!
//! * [`layer`] — dense layers with activation, forward and backward.
//! * [`mlp`] — layer stacks with cached activations for backprop.
//! * [`adam`] — the Adam optimizer used by iNGP.
//! * [`fp16`] — IEEE 754 half-precision conversion, modelling the paper's
//!   mixed-precision storage path (FP16 table entries, FP32 accumulation).
//! * [`store`] — the [`ParamStore`] mixed-precision parameter backend
//!   (f32, or fp16 storage with f32 master weights) every trainable
//!   parameter group sits behind.
//!
//! # Example
//!
//! ```
//! use inerf_mlp::{Mlp, Activation};
//!
//! // A 4 → 8 → 2 network with ReLU hidden activation.
//! let mut net = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Identity, 42);
//! let out = net.forward(&[0.1, -0.2, 0.3, 0.4]).output().to_vec();
//! assert_eq!(out.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adam;
pub mod fp16;
pub mod layer;
pub mod mlp;
pub mod store;

pub use adam::{AdamState, AdamStateSnapshot};
pub use layer::{Activation, BackwardScratch, DenseLayer, FWD_BLOCK};
pub use mlp::{Mlp, MlpActivations, MlpBatchActivations, MlpGradients, MlpScratch};
pub use store::{ParamStore, Precision};
