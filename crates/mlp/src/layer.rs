//! Dense layers with explicit forward/backward passes.

use crate::store::{ParamStore, Precision};
use inerf_simd::f32x8;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation function applied after a layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No activation.
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid (used for RGB outputs).
    Sigmoid,
    /// `exp(x)` truncated to avoid overflow (used for density outputs).
    Exp,
    /// Softplus `ln(1 + e^x)` — a smooth non-negative alternative for density.
    Softplus,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Exp => x.clamp(-15.0, 15.0).exp(),
            Activation::Softplus => {
                if x > 15.0 {
                    x
                } else {
                    (1.0 + x.exp()).ln()
                }
            }
        }
    }

    /// Derivative of the activation expressed in terms of the
    /// *pre-activation* `x` and the *post-activation* `y = apply(x)`.
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Exp => y, // d/dx e^x = e^x (clamp region has zero grad anyway)
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// Points per block of the batched forward kernel: the kernel transposes a
/// block of inputs and vectorizes *across points* — two [`f32x8`] lanes of
/// eight points each — which keeps each point's accumulation order identical
/// to the scalar reference (bias, then inputs in ascending order) while
/// filling the SIMD lanes. Public so fused callers (encode → first GEMM)
/// can produce block-transposed tiles of exactly this width.
pub const FWD_BLOCK: usize = 16;

/// Reusable working buffers of [`DenseLayer::backward_batch_into`]. Pooled
/// by the caller (inside [`crate::MlpScratch`]) so steady-state backward
/// sweeps allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct BackwardScratch {
    /// `FWD_BLOCK × out_dim` pre-activation gradient tile for the block
    /// being processed.
    d_pre: Vec<f32>,
}

/// A dense layer `y = act(W x + b)` with gradient accumulation buffers.
///
/// Weights are stored row-major: `w[o * in_dim + i]` connects input `i` to
/// output `o`. Both parameter groups live behind a [`ParamStore`], so the
/// storage precision (f32, or fp16 with f32 master weights) is a
/// constructor parameter; gradients always accumulate in f32.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseLayer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: ParamStore,
    bias: ParamStore,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
}

/// `dp` with exact zeros (either sign) replaced by `+0.0`, via a branch-free
/// bit mask. Letting the backward kernels *add* a masked zero term
/// unconditionally — instead of branching around it like the scalar
/// reference — is still bitwise-identical for finite data: `x + ±0.0 == x`
/// for every `x` except `-0.0`, and a gradient accumulator can never be
/// `-0.0` (it starts at `+0.0`, and an IEEE round-to-nearest sum only
/// yields `-0.0` when both operands are `-0.0`). The branch this removes is
/// data-dependent (ReLU kills ~half the units, effectively at random), so
/// the reference's `continue` mispredicts constantly; the mask costs three
/// integer ops off the accumulator's critical path.
#[inline(always)]
fn mask_nonzero(dp: f32) -> f32 {
    f32::from_bits(dp.to_bits() & ((dp != 0.0) as u32).wrapping_neg())
}

/// One register-resident group of `C` vector chunks of a point's
/// input-gradient row: accumulates `d_pre[o] * W[o]` across output units in
/// ascending order (zero terms masked by [`mask_nonzero`]) and stores the
/// group once. `C` is const so the accumulators stay in registers instead
/// of a stack-spilled array.
#[inline(always)]
fn dinput_group<const C: usize>(
    dp_row: &[f32],
    weights: &[f32],
    in_dim: usize,
    g: usize,
    d_input: &mut [f32],
) {
    let mut acc = [f32x8::zero(); C];
    for (o, &dp) in dp_row.iter().enumerate() {
        let dv = f32x8::splat(mask_nonzero(dp));
        let row_w = &weights[o * in_dim + g..];
        for (k, a) in acc.iter_mut().enumerate() {
            *a = a.madd(dv, f32x8::from_slice(&row_w[k * 8..]));
        }
    }
    for (k, a) in acc.into_iter().enumerate() {
        a.write_to(&mut d_input[g + k * 8..]);
    }
}

/// One register-resident group of `C` vector chunks of output unit `o`'s
/// weight-gradient row: loads the group once, streams the block's rows
/// through it in ascending order (zero terms masked like
/// [`dinput_group`]), and stores the group once.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn grad_group<const C: usize>(
    d_pre: &[f32],
    out_dim: usize,
    o: usize,
    inputs: &[f32],
    in_dim: usize,
    base: usize,
    bn: usize,
    g: usize,
    row_g: &mut [f32],
) {
    let mut acc = [f32x8::zero(); C];
    for (k, a) in acc.iter_mut().enumerate() {
        *a = f32x8::from_slice(&row_g[g + k * 8..]);
    }
    for rb in 0..bn {
        let dv = f32x8::splat(mask_nonzero(d_pre[rb * out_dim + o]));
        let input = &inputs[(base + rb) * in_dim + g..];
        for (k, a) in acc.iter_mut().enumerate() {
            *a = a.madd(dv, f32x8::from_slice(&input[k * 8..]));
        }
    }
    for (k, a) in acc.into_iter().enumerate() {
        a.write_to(&mut row_g[g + k * 8..]);
    }
}

impl DenseLayer {
    /// Creates an f32-stored layer with He-style uniform initialization
    /// (the pre-mixed-precision behavior, bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        Self::with_precision(in_dim, out_dim, activation, seed, Precision::F32)
    }

    /// Creates a layer whose parameters are stored at `precision`. The
    /// initialization draws are identical to [`DenseLayer::new`]; fp16
    /// layers quantize them into the working copy.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_precision(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        seed: u64,
        precision: Precision,
    ) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        DenseLayer {
            in_dim,
            out_dim,
            activation,
            weights: ParamStore::new(precision, weights),
            bias: ParamStore::new(precision, vec![0.0; out_dim]),
            grad_weights: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The storage precision of the layer's parameters.
    pub fn precision(&self) -> Precision {
        self.weights.precision()
    }

    /// Number of trainable parameters (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Modeled parameter-storage bytes at the layer's precision.
    pub fn parameter_bytes(&self) -> usize {
        self.weights.storage_bytes() + self.bias.storage_bytes()
    }

    /// Forward pass: writes pre-activations into `pre` and activated outputs
    /// into `out`.
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes disagree with the layer dimensions.
    pub fn forward_into(&self, input: &[f32], pre: &mut [f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.in_dim, "input size mismatch");
        assert_eq!(pre.len(), self.out_dim, "pre-activation buffer mismatch");
        assert_eq!(out.len(), self.out_dim, "output buffer mismatch");
        let weights = self.weights.values();
        let bias = self.bias.values();
        for o in 0..self.out_dim {
            let row = &weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = bias[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            pre[o] = acc;
            out[o] = self.activation.apply(acc);
        }
    }

    /// Backward pass: given `d_out` (gradient w.r.t. activated output), the
    /// cached `input`, `pre`-activations and `out`puts, accumulates weight
    /// and bias gradients and writes the gradient w.r.t. the input into
    /// `d_input`.
    pub fn backward_into(
        &mut self,
        input: &[f32],
        pre: &[f32],
        out: &[f32],
        d_out: &[f32],
        d_input: &mut [f32],
    ) {
        assert_eq!(d_out.len(), self.out_dim, "output gradient size mismatch");
        assert_eq!(d_input.len(), self.in_dim, "input gradient buffer mismatch");
        d_input.fill(0.0);
        let weights = self.weights.values();
        for o in 0..self.out_dim {
            let d_pre = d_out[o] * self.activation.derivative(pre[o], out[o]);
            if d_pre == 0.0 {
                continue;
            }
            self.grad_bias[o] += d_pre;
            let row_w = &weights[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.grad_weights[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += d_pre * input[i];
                d_input[i] += d_pre * row_w[i];
            }
        }
    }

    /// Batched forward pass over `n` row-major points: `inputs` is
    /// `n × in_dim`, `pres`/`outs` are `n × out_dim`.
    ///
    /// Works on transposed `FWD_BLOCK`-point blocks so the inner loop runs
    /// *across points* — contiguous, reduction-free, SIMD-friendly — while
    /// each point still accumulates bias-then-inputs in ascending order, so
    /// every result is bitwise-identical to [`DenseLayer::forward_into`] on
    /// that row.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are not consistent multiples of the
    /// layer dimensions.
    pub fn forward_batch_into(&self, inputs: &[f32], pres: &mut [f32], outs: &mut [f32]) {
        let mut transposed = Vec::new();
        self.forward_batch_scratch(inputs, pres, outs, &mut transposed);
    }

    /// [`DenseLayer::forward_batch_into`] with a caller-pooled transpose
    /// buffer, so steady-state iterations allocate nothing. The whole sweep
    /// runs inside one [`inerf_simd::vectorize`] frame.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are not consistent multiples of the
    /// layer dimensions.
    pub fn forward_batch_scratch(
        &self,
        inputs: &[f32],
        pres: &mut [f32],
        outs: &mut [f32],
        transposed: &mut Vec<f32>,
    ) {
        assert_eq!(inputs.len() % self.in_dim, 0, "input matrix size mismatch");
        let n = inputs.len() / self.in_dim;
        assert_eq!(
            pres.len(),
            n * self.out_dim,
            "pre-activation matrix mismatch"
        );
        assert_eq!(outs.len(), n * self.out_dim, "output matrix mismatch");
        if transposed.len() < self.in_dim * FWD_BLOCK {
            transposed.resize(self.in_dim * FWD_BLOCK, 0.0);
        }
        inerf_simd::vectorize(|| {
            let mut block_start = 0;
            while block_start < n {
                let bn = FWD_BLOCK.min(n - block_start);
                // Transpose the block: `transposed[i * FWD_BLOCK + p]` is
                // input `i` of point `block_start + p`. Lanes `p >= bn`
                // hold stale values that no result reads.
                for p in 0..bn {
                    let row = &inputs[(block_start + p) * self.in_dim..];
                    for i in 0..self.in_dim {
                        transposed[i * FWD_BLOCK + p] = row[i];
                    }
                }
                self.forward_block_bt(transposed, block_start, bn, pres, outs);
                block_start += bn;
            }
        });
    }

    /// GEMM micro-kernel for one block-transposed tile: `transposed` holds
    /// input `i` of point `block_start + p` at `i * FWD_BLOCK + p`, and the
    /// kernel writes rows `block_start..block_start + bn` of `pres`/`outs`
    /// (full `n × out_dim` matrices).
    ///
    /// Two `f32x8` accumulators cover the 16 points; each lane accumulates
    /// bias-then-inputs in ascending order with two-rounding [`f32x8::madd`],
    /// so every result is bitwise-identical to [`DenseLayer::forward_into`]
    /// on that row. Activations are applied lane-serially for the same
    /// reason. Callers are expected to wrap the sweep in
    /// [`inerf_simd::vectorize`]; the kernel itself is dispatch-free.
    ///
    /// # Panics
    ///
    /// Panics if `transposed` is smaller than `in_dim * FWD_BLOCK` or the
    /// written rows fall outside `pres`/`outs`.
    #[inline]
    pub fn forward_block_bt(
        &self,
        transposed: &[f32],
        block_start: usize,
        bn: usize,
        pres: &mut [f32],
        outs: &mut [f32],
    ) {
        let weights = self.weights.values();
        let bias = self.bias.values();
        for o in 0..self.out_dim {
            let weight_row = &weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc_lo = f32x8::splat(bias[o]);
            let mut acc_hi = acc_lo;
            for (i, &w) in weight_row.iter().enumerate() {
                let lane = &transposed[i * FWD_BLOCK..(i + 1) * FWD_BLOCK];
                let wv = f32x8::splat(w);
                acc_lo = acc_lo.madd(wv, f32x8::from_slice(&lane[..8]));
                acc_hi = acc_hi.madd(wv, f32x8::from_slice(&lane[8..]));
            }
            let mut acc = [0.0f32; FWD_BLOCK];
            acc_lo.write_to(&mut acc[..8]);
            acc_hi.write_to(&mut acc[8..]);
            for (p, &a) in acc.iter().enumerate().take(bn) {
                let idx = (block_start + p) * self.out_dim + o;
                pres[idx] = a;
                outs[idx] = self.activation.apply(a);
            }
        }
    }

    /// Batched backward pass over `n` row-major points, accumulating the
    /// parameter gradients into *caller-owned* buffers (`grad_weights`,
    /// `grad_bias`) instead of the layer's internal ones. Because it takes
    /// `&self`, independent batches can run on different threads and be
    /// reduced in a deterministic order afterwards.
    ///
    /// The kernel walks the batch in blocks of [`FWD_BLOCK`] points and
    /// keeps both gradient streams in registers: each point's input-gradient
    /// row accumulates across output units in [`f32x8`] accumulators and is
    /// stored once (instead of read-modify-written per unit), and each
    /// weight-gradient vector slot is loaded once per block, accumulated
    /// over the block's rows, and stored once. Per slot the additions run
    /// in the reference order — weight/bias slots over rows ascending,
    /// input-gradient elements over output units ascending — and the zero
    /// `d_pre` terms the reference branches over are instead *added* after
    /// `mask_nonzero` forces them to `+0.0`, an exact identity (see its
    /// docs), so for finite inputs and weights every gradient is
    /// bitwise-identical to [`DenseLayer::backward_into`] run row by row.
    ///
    /// # Panics
    ///
    /// Panics if any buffer length disagrees with the layer dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch_into(
        &self,
        inputs: &[f32],
        pres: &[f32],
        outs: &[f32],
        d_outs: &[f32],
        d_inputs: &mut [f32],
        grad_weights: &mut [f32],
        grad_bias: &mut [f32],
        scratch: &mut BackwardScratch,
    ) {
        assert_eq!(inputs.len() % self.in_dim, 0, "input matrix size mismatch");
        let n = inputs.len() / self.in_dim;
        assert_eq!(
            pres.len(),
            n * self.out_dim,
            "pre-activation matrix mismatch"
        );
        assert_eq!(outs.len(), n * self.out_dim, "output matrix mismatch");
        assert_eq!(d_outs.len(), n * self.out_dim, "output gradient mismatch");
        assert_eq!(d_inputs.len(), n * self.in_dim, "input gradient mismatch");
        assert_eq!(
            grad_weights.len(),
            self.weights.len(),
            "weight gradient buffer mismatch"
        );
        assert_eq!(
            grad_bias.len(),
            self.out_dim,
            "bias gradient buffer mismatch"
        );
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let weights = self.weights.values();
        let d_pre = &mut scratch.d_pre;
        // Fully overwritten below; resize only reshapes on first use.
        d_pre.resize(FWD_BLOCK * out_dim, 0.0);
        inerf_simd::vectorize(|| {
            let wide = in_dim - in_dim % 8;
            let mut base = 0;
            while base < n {
                let bn = FWD_BLOCK.min(n - base);
                // Pre-activation gradients for the block.
                for rb in 0..bn {
                    let r = base + rb;
                    let pre = &pres[r * out_dim..(r + 1) * out_dim];
                    let out = &outs[r * out_dim..(r + 1) * out_dim];
                    let d_out = &d_outs[r * out_dim..(r + 1) * out_dim];
                    let dp = &mut d_pre[rb * out_dim..(rb + 1) * out_dim];
                    for o in 0..out_dim {
                        dp[o] = d_out[o] * self.activation.derivative(pre[o], out[o]);
                    }
                }
                // Input gradients: each row accumulates across output
                // units in registers (ascending `o`); zero `d_pre` terms
                // are masked to `+0.0` and added, matching the scalar
                // reference's `continue` without its data-dependent branch.
                for rb in 0..bn {
                    let r = base + rb;
                    let d_input = &mut d_inputs[r * in_dim..(r + 1) * in_dim];
                    let dp_row = &d_pre[rb * out_dim..(rb + 1) * out_dim];
                    let mut g = 0;
                    while g + 32 <= wide {
                        dinput_group::<4>(dp_row, weights, in_dim, g, d_input);
                        g += 32;
                    }
                    if g + 16 <= wide {
                        dinput_group::<2>(dp_row, weights, in_dim, g, d_input);
                        g += 16;
                    }
                    if g + 8 <= wide {
                        dinput_group::<1>(dp_row, weights, in_dim, g, d_input);
                    }
                    for i in wide..in_dim {
                        let mut acc = 0.0;
                        for (o, &dp) in dp_row.iter().enumerate() {
                            if dp == 0.0 {
                                continue;
                            }
                            acc += dp * weights[o * in_dim + i];
                        }
                        d_input[i] = acc;
                    }
                }
                // Weight/bias gradients: unit `o`'s gradient row is held
                // in registers while the block's rows stream through it
                // (ascending `r`), with the same masked-zero terms.
                for o in 0..out_dim {
                    let mut bias_acc = grad_bias[o];
                    for rb in 0..bn {
                        bias_acc += mask_nonzero(d_pre[rb * out_dim + o]);
                    }
                    grad_bias[o] = bias_acc;
                    let row_g = &mut grad_weights[o * in_dim..(o + 1) * in_dim];
                    let mut g = 0;
                    while g + 32 <= wide {
                        grad_group::<4>(d_pre, out_dim, o, inputs, in_dim, base, bn, g, row_g);
                        g += 32;
                    }
                    if g + 16 <= wide {
                        grad_group::<2>(d_pre, out_dim, o, inputs, in_dim, base, bn, g, row_g);
                        g += 16;
                    }
                    if g + 8 <= wide {
                        grad_group::<1>(d_pre, out_dim, o, inputs, in_dim, base, bn, g, row_g);
                    }
                    for i in wide..in_dim {
                        let mut acc = row_g[i];
                        for rb in 0..bn {
                            let dp = d_pre[rb * out_dim + o];
                            if dp == 0.0 {
                                continue;
                            }
                            acc += dp * inputs[(base + rb) * in_dim + i];
                        }
                        row_g[i] = acc;
                    }
                }
                base += bn;
            }
        });
    }

    /// Adds externally accumulated gradients (from
    /// [`DenseLayer::backward_batch_into`]) into the internal buffers the
    /// optimizer reads.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with the layer dimensions.
    pub fn add_gradients(&mut self, grad_weights: &[f32], grad_bias: &[f32]) {
        assert_eq!(grad_weights.len(), self.grad_weights.len());
        assert_eq!(grad_bias.len(), self.grad_bias.len());
        for (g, add) in self.grad_weights.iter_mut().zip(grad_weights) {
            *g += add;
        }
        for (g, add) in self.grad_bias.iter_mut().zip(grad_bias) {
            *g += add;
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    /// Flattened view of the *working* parameter values (what compute
    /// reads — quantized for fp16 layers): weights then biases.
    pub fn parameters(&self) -> impl Iterator<Item = &f32> {
        self.weights.values().iter().chain(self.bias.values())
    }

    /// Flattened view of the accumulated gradients, parallel to
    /// [`DenseLayer::parameters`].
    pub fn gradients(&self) -> impl Iterator<Item = &f32> {
        self.grad_weights.iter().chain(self.grad_bias.iter())
    }

    /// Applies `f(param, grad)` to every master-weight/gradient pair (the
    /// optimizer hook), then commits both stores so fp16 layers
    /// re-quantize their working copy. For f32 layers this is exactly the
    /// pre-store in-place sweep.
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        for (w, g) in self.weights.master_mut().iter_mut().zip(&self.grad_weights) {
            f(w, *g);
        }
        for (b, g) in self.bias.master_mut().iter_mut().zip(&self.grad_bias) {
            f(b, *g);
        }
        self.weights.commit();
        self.bias.commit();
    }

    /// The weight store (checkpoint capture / equivalence assertions).
    pub fn weights(&self) -> &ParamStore {
        &self.weights
    }

    /// The bias store (checkpoint capture / equivalence assertions).
    pub fn bias(&self) -> &ParamStore {
        &self.bias
    }

    /// The weight store (test/tooling hook for direct parameter edits).
    pub fn weights_mut(&mut self) -> &mut ParamStore {
        &mut self.weights
    }

    /// The bias store (test/tooling hook for direct parameter edits).
    pub fn bias_mut(&mut self) -> &mut ParamStore {
        &mut self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_and_derivatives() {
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Exp,
            Activation::Softplus,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let y = act.apply(x);
                let eps = 1e-3;
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x, y);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_clamps_and_sigmoid_bounds() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        let s = Activation::Sigmoid.apply(100.0);
        assert!(s <= 1.0 && s > 0.999);
        assert!(Activation::Exp.apply(100.0).is_finite());
    }

    #[test]
    fn forward_known_values() {
        let mut layer = DenseLayer::new(2, 1, Activation::Identity, 0);
        layer.weights = ParamStore::f32(vec![2.0, -1.0]);
        layer.bias = ParamStore::f32(vec![0.5]);
        let mut pre = [0.0];
        let mut out = [0.0];
        layer.forward_into(&[3.0, 4.0], &mut pre, &mut out);
        assert_eq!(pre[0], 2.0 * 3.0 - 4.0 + 0.5);
        assert_eq!(out[0], pre[0]);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut layer = DenseLayer::new(3, 2, Activation::Relu, 9);
        let input = [0.5f32, -0.3, 0.8];
        let d_out = [1.0f32, -2.0];
        let mut pre = [0.0; 2];
        let mut out = [0.0; 2];
        layer.forward_into(&input, &mut pre, &mut out);
        let mut d_input = [0.0; 3];
        layer.backward_into(&input, &pre, &out, &d_out, &mut d_input);

        // Finite difference on weight (0,1): perturb and measure the change
        // in loss = sum(d_out .* output).
        let loss = |l: &DenseLayer| {
            let mut p = [0.0; 2];
            let mut o = [0.0; 2];
            l.forward_into(&input, &mut p, &mut o);
            d_out.iter().zip(o).map(|(g, y)| g * y).sum::<f32>()
        };
        let eps = 1e-3;
        for wi in 0..6 {
            let mut pert = layer.clone();
            let w = pert.weights.values()[wi];
            pert.weights.set(wi, w + eps);
            let up = loss(&pert);
            pert.weights.set(wi, w - eps);
            let down = loss(&pert);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - layer.grad_weights[wi]).abs() < 1e-2,
                "weight {wi}: numeric {numeric} vs analytic {}",
                layer.grad_weights[wi]
            );
        }
        // Input gradient check.
        for ii in 0..3 {
            let mut in_pert = input;
            in_pert[ii] += eps;
            let mut p = [0.0; 2];
            let mut o = [0.0; 2];
            layer.forward_into(&in_pert, &mut p, &mut o);
            let up: f32 = d_out.iter().zip(o).map(|(g, y)| g * y).sum();
            in_pert[ii] -= 2.0 * eps;
            layer.forward_into(&in_pert, &mut p, &mut o);
            let down: f32 = d_out.iter().zip(o).map(|(g, y)| g * y).sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - d_input[ii]).abs() < 1e-2,
                "input {ii}: numeric {numeric} vs analytic {}",
                d_input[ii]
            );
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut layer = DenseLayer::new(2, 2, Activation::Identity, 1);
        let input = [1.0, 1.0];
        let mut pre = [0.0; 2];
        let mut out = [0.0; 2];
        layer.forward_into(&input, &mut pre, &mut out);
        let mut d_in = [0.0; 2];
        layer.backward_into(&input, &pre, &out, &[1.0, 1.0], &mut d_in);
        assert!(layer.grad_weights.iter().any(|&g| g != 0.0));
        layer.zero_grad();
        assert!(layer.grad_weights.iter().all(|&g| g == 0.0));
        assert!(layer.grad_bias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn parameter_count() {
        let layer = DenseLayer::new(4, 3, Activation::Relu, 2);
        assert_eq!(layer.parameter_count(), 4 * 3 + 3);
        assert_eq!(layer.parameters().count(), 15);
        assert_eq!(layer.parameter_bytes(), 15 * 4);
        assert_eq!(layer.precision(), Precision::F32);
    }

    #[test]
    fn fp16_layer_stores_quantized_weights_with_exact_masters() {
        let full = DenseLayer::new(3, 2, Activation::Identity, 11);
        let mut half = DenseLayer::with_precision(3, 2, Activation::Identity, 11, Precision::Fp16);
        assert_eq!(half.precision(), Precision::Fp16);
        // Same init draws; the fp16 layer's working copy is the RNE image.
        for (f, h) in full.parameters().zip(half.parameters()) {
            assert_eq!(*h, crate::fp16::quantize_f16(*f));
        }
        assert_eq!(2 * half.parameter_bytes(), full.parameter_bytes());
        // Optimizer steps below fp16 resolution accumulate in the master
        // weights instead of vanishing: the working copy is unchanged, but
        // the sweep keeps compounding on the f32 side.
        let before: Vec<f32> = half.parameters().copied().collect();
        for _ in 0..3 {
            half.for_each_param_mut(|p, _| *p *= 1.0 + 1e-6);
        }
        let after: Vec<f32> = half.parameters().copied().collect();
        assert_eq!(before, after, "sub-resolution updates must not commit");
        for _ in 0..20_000 {
            half.for_each_param_mut(|p, _| *p *= 1.0 + 1e-6);
        }
        let moved: Vec<f32> = half.parameters().copied().collect();
        assert_ne!(before, moved, "accumulated master updates must surface");
    }
}
