//! Multi-layer perceptrons built from [`DenseLayer`]s.

use crate::layer::{Activation, BackwardScratch, DenseLayer, FWD_BLOCK};
use crate::store::Precision;
use serde::{Deserialize, Serialize};

/// The cached activations of one forward pass, needed for backprop.
///
/// Layer `l`'s input is the network input for `l == 0` and layer `l-1`'s
/// activated output otherwise; it is never stored twice.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpActivations {
    /// The network input.
    input: Vec<f32>,
    /// Per-layer pre-activations.
    pres: Vec<Vec<f32>>,
    /// Per-layer activated outputs; the last is the network output.
    outs: Vec<Vec<f32>>,
}

impl MlpActivations {
    /// The network output of this forward pass.
    pub fn output(&self) -> &[f32] {
        // inerf-lint: allow(panic-path) -- infallible: activations are only built by `forward`, which pushes one entry per layer and `Mlp::new` asserts >= 1 layer
        self.outs.last().expect("at least one layer")
    }

    /// The input that fed layer `l`.
    fn layer_input(&self, l: usize) -> &[f32] {
        if l == 0 {
            &self.input
        } else {
            &self.outs[l - 1]
        }
    }
}

/// Cached activations of a batched forward pass: per-layer row-major
/// matrices of `n × out_dim` values. Reusable across batches — buffers are
/// resized, not reallocated, when the batch size repeats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MlpBatchActivations {
    n: usize,
    /// Per-layer pre-activation matrices.
    pres: Vec<Vec<f32>>,
    /// Per-layer activated output matrices.
    outs: Vec<Vec<f32>>,
}

impl MlpBatchActivations {
    /// The batched network output (`n × out_dim`, row-major).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has populated this cache yet.
    pub fn output(&self) -> &[f32] {
        // inerf-lint: allow(panic-path) -- documented contract: reading an unpopulated cache is a caller bug, not a runtime condition
        self.outs.last().expect("no forward pass cached")
    }

    /// Number of points in the cached batch.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn prepare(&mut self, mlp: &Mlp, n: usize) {
        self.n = n;
        self.pres.resize(mlp.layers.len(), Vec::new());
        self.outs.resize(mlp.layers.len(), Vec::new());
        for (l, layer) in mlp.layers.iter().enumerate() {
            // Plain resize, no clear: the forward kernel writes every
            // `n × out_dim` element, so zeroing the retained prefix would
            // be a redundant memset of the engine's largest matrices.
            self.pres[l].resize(n * layer.out_dim(), 0.0);
            self.outs[l].resize(n * layer.out_dim(), 0.0);
        }
    }
}

/// Reusable working buffers for the batched MLP kernels. Pooling these in
/// the caller (one per worker chunk) makes steady-state forward/backward
/// iterations allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    /// Block-transpose tile (`max in_dim × FWD_BLOCK`), shared by every
    /// layer of a sweep — layer `l`'s tile is dead once layer `l + 1` has
    /// transposed its own inputs over it.
    transposed: Vec<f32>,
    /// Ping-pong upstream-gradient matrices for the backward sweep.
    d_a: Vec<f32>,
    d_b: Vec<f32>,
    /// Per-layer backward-kernel buffers (the `d_pre` gradient tile).
    bwd: BackwardScratch,
}

/// Parameter gradients accumulated outside an [`Mlp`] by
/// [`Mlp::backward_batch`]. Lets independent chunks of a batch run their
/// backward passes in parallel (each with its own `MlpGradients`) and then
/// be folded into the network in a fixed, deterministic order via
/// [`Mlp::accumulate_gradients`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MlpGradients {
    /// Per-layer weight-gradient matrices.
    weights: Vec<Vec<f32>>,
    /// Per-layer bias gradients.
    biases: Vec<Vec<f32>>,
}

impl MlpGradients {
    /// Creates zeroed gradients shaped like `mlp`'s parameters.
    pub fn zeros(mlp: &Mlp) -> Self {
        let mut g = MlpGradients::default();
        g.reset(mlp);
        g
    }

    /// Zeroes the buffers, (re)shaping them to `mlp` if needed.
    pub fn reset(&mut self, mlp: &Mlp) {
        self.weights.resize(mlp.layers.len(), Vec::new());
        self.biases.resize(mlp.layers.len(), Vec::new());
        for (l, layer) in mlp.layers.iter().enumerate() {
            self.weights[l].clear();
            self.weights[l].resize(layer.in_dim() * layer.out_dim(), 0.0);
            self.biases[l].clear();
            self.biases[l].resize(layer.out_dim(), 0.0);
        }
    }
}

/// A stack of dense layers.
///
/// Hidden layers share one activation; the output layer has its own (e.g.
/// `Sigmoid` for RGB, `Identity` for feature heads).
///
/// # Example
///
/// ```
/// use inerf_mlp::{Mlp, Activation};
/// let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, 7);
/// let acts = net.forward(&[0.5, -0.5]);
/// assert!(acts.output()[0] > 0.0 && acts.output()[0] < 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an f32-stored MLP from layer widths, e.g. `&[32, 64, 16]`
    /// builds 32→64→16 (the pre-mixed-precision behavior, bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        Self::with_precision(widths, hidden, output, seed, Precision::F32)
    }

    /// [`Mlp::new`] with every layer's parameters stored at `precision`
    /// (fp16 layers keep f32 master weights for the optimizer).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn with_precision(
        widths: &[usize],
        hidden: Activation,
        output: Activation,
        seed: u64,
        precision: Precision,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    output
                } else {
                    hidden
                };
                DenseLayer::with_precision(
                    w[0],
                    w[1],
                    act,
                    seed.wrapping_add(i as u64 * 0x9E37),
                    precision,
                )
            })
            .collect();
        Mlp { layers }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable layer access — the checkpoint-restore hook. Callers must
    /// preserve each layer's dimensions and precision; only the
    /// parameter *values* are meant to change.
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// The storage precision of the network's parameters.
    pub fn precision(&self) -> Precision {
        self.layers[0].precision()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        // inerf-lint: allow(panic-path) -- infallible: `Mlp::new` asserts the layer list is nonempty
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Modeled parameter-storage bytes at the network's precision (half
    /// the f32 footprint for fp16 networks).
    pub fn parameter_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_bytes()).sum()
    }

    /// Forward pass, caching everything backprop needs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim()`.
    pub fn forward(&self, input: &[f32]) -> MlpActivations {
        let mut pres = Vec::with_capacity(self.layers.len());
        let mut outs: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let mut pre = vec![0.0; layer.out_dim()];
            let mut out = vec![0.0; layer.out_dim()];
            let x = if l == 0 { input } else { &outs[l - 1] };
            layer.forward_into(x, &mut pre, &mut out);
            pres.push(pre);
            outs.push(out);
        }
        MlpActivations {
            input: input.to_vec(),
            pres,
            outs,
        }
    }

    /// Batched forward pass over `n` points: `inputs` is a row-major
    /// `n × in_dim` matrix. Activation matrices land in `acts`, whose
    /// buffers are reused across calls.
    ///
    /// The layer kernel vectorizes across points but keeps each point's
    /// accumulation order, so per-point outputs are bitwise-identical to
    /// the scalar [`Mlp::forward`] reference.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of `in_dim()`.
    pub fn forward_batch(&self, inputs: &[f32], acts: &mut MlpBatchActivations) {
        let mut scratch = MlpScratch::default();
        self.forward_batch_scratch(inputs, acts, &mut scratch);
    }

    /// [`Mlp::forward_batch`] with caller-pooled scratch, so steady-state
    /// iterations allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a multiple of `in_dim()`.
    pub fn forward_batch_scratch(
        &self,
        inputs: &[f32],
        acts: &mut MlpBatchActivations,
        scratch: &mut MlpScratch,
    ) {
        assert_eq!(
            inputs.len() % self.in_dim(),
            0,
            "input matrix size mismatch"
        );
        let n = inputs.len() / self.in_dim();
        acts.prepare(self, n);
        for l in 0..self.layers.len() {
            let (done, rest) = acts.outs.split_at_mut(l);
            let x = if l == 0 { inputs } else { &done[l - 1] };
            self.layers[l].forward_batch_scratch(
                x,
                &mut acts.pres[l],
                &mut rest[0],
                &mut scratch.transposed,
            );
        }
    }

    /// Fused batched forward pass: instead of reading a materialized
    /// row-major input matrix, the producer streams each block-transposed
    /// `in_dim × FWD_BLOCK` tile straight into the first layer's GEMM via
    /// `fill_block_bt(block_start, bn, tile)` — no intermediate SoA
    /// round-trip through memory. Subsequent layers run block-by-block on
    /// the same tile buffer while the block is hot in cache.
    ///
    /// Per-point arithmetic order is unchanged, so results are
    /// bitwise-identical to [`Mlp::forward_batch`] on the row-major
    /// equivalent of the streamed tiles. The entire sweep (producer closure
    /// included) runs inside one [`inerf_simd::vectorize`] frame.
    ///
    /// Tile lanes `p >= bn` may be left stale by the producer; no result
    /// reads them.
    pub fn forward_batch_fused(
        &self,
        n: usize,
        mut fill_block_bt: impl FnMut(usize, usize, &mut [f32]),
        acts: &mut MlpBatchActivations,
        scratch: &mut MlpScratch,
    ) {
        acts.prepare(self, n);
        let max_in = self
            .layers
            .iter()
            .map(|l| l.in_dim())
            .max()
            // inerf-lint: allow(panic-path) -- infallible: `Mlp::new` asserts at least one layer
            .expect("nonempty");
        if scratch.transposed.len() < max_in * FWD_BLOCK {
            scratch.transposed.resize(max_in * FWD_BLOCK, 0.0);
        }
        let transposed = &mut scratch.transposed;
        inerf_simd::vectorize(|| {
            let mut block_start = 0;
            while block_start < n {
                let bn = FWD_BLOCK.min(n - block_start);
                fill_block_bt(
                    block_start,
                    bn,
                    &mut transposed[..self.in_dim() * FWD_BLOCK],
                );
                for l in 0..self.layers.len() {
                    let layer = &self.layers[l];
                    let (done, rest) = acts.outs.split_at_mut(l);
                    if l > 0 {
                        // Transpose the previous layer's freshly written
                        // rows for this block over the dead tile.
                        let prev = &done[l - 1];
                        for p in 0..bn {
                            let row = &prev[(block_start + p) * layer.in_dim()..];
                            for i in 0..layer.in_dim() {
                                transposed[i * FWD_BLOCK + p] = row[i];
                            }
                        }
                    }
                    layer.forward_block_bt(
                        transposed,
                        block_start,
                        bn,
                        &mut acts.pres[l],
                        &mut rest[0],
                    );
                }
                block_start += bn;
            }
        });
    }

    /// Batched backward pass: given `d_out` (`n × out_dim`, row-major) and
    /// the activations of the matching [`Mlp::forward_batch`] call,
    /// accumulates parameter gradients into `grads` (which is *not* zeroed
    /// first) and writes the gradient w.r.t. the network input into
    /// `d_input` (`n × in_dim`).
    ///
    /// Takes `&self`: disjoint chunks of a batch can run concurrently, each
    /// into its own [`MlpGradients`], to be folded deterministically with
    /// [`Mlp::accumulate_gradients`].
    ///
    /// # Panics
    ///
    /// Panics if `acts` came from a different batch or architecture, or if
    /// `grads` is not shaped like this network.
    pub fn backward_batch(
        &self,
        inputs: &[f32],
        acts: &MlpBatchActivations,
        d_out: &[f32],
        d_input: &mut [f32],
        grads: &mut MlpGradients,
    ) {
        let mut scratch = MlpScratch::default();
        self.backward_batch_scratch(inputs, acts, d_out, d_input, grads, &mut scratch);
    }

    /// [`Mlp::backward_batch`] with caller-pooled scratch: the upstream
    /// gradient ping-pongs between two pooled matrices instead of
    /// allocating one per layer, so steady-state iterations allocate
    /// nothing.
    ///
    /// # Panics
    ///
    /// Same contract as [`Mlp::backward_batch`].
    pub fn backward_batch_scratch(
        &self,
        inputs: &[f32],
        acts: &MlpBatchActivations,
        d_out: &[f32],
        d_input: &mut [f32],
        grads: &mut MlpGradients,
        scratch: &mut MlpScratch,
    ) {
        let n = acts.n;
        assert_eq!(
            acts.outs.len(),
            self.layers.len(),
            "activation cache mismatch"
        );
        assert_eq!(inputs.len(), n * self.in_dim(), "input matrix mismatch");
        assert_eq!(d_out.len(), n * self.out_dim(), "output gradient mismatch");
        assert_eq!(d_input.len(), n * self.in_dim(), "input gradient mismatch");
        assert_eq!(
            grads.weights.len(),
            self.layers.len(),
            "gradient shape mismatch"
        );
        scratch.d_a.clear();
        scratch.d_a.extend_from_slice(d_out);
        let mut cur = &mut scratch.d_a;
        let mut next = &mut scratch.d_b;
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let x = if l == 0 { inputs } else { &acts.outs[l - 1] };
            if l == 0 {
                layer.backward_batch_into(
                    x,
                    &acts.pres[l],
                    &acts.outs[l],
                    cur,
                    d_input,
                    &mut grads.weights[l],
                    &mut grads.biases[l],
                    &mut scratch.bwd,
                );
            } else {
                // Contents are irrelevant (the kernel fills every row); the
                // resize only matters when the batch shape changes.
                next.resize(n * layer.in_dim(), 0.0);
                layer.backward_batch_into(
                    x,
                    &acts.pres[l],
                    &acts.outs[l],
                    cur,
                    next,
                    &mut grads.weights[l],
                    &mut grads.biases[l],
                    &mut scratch.bwd,
                );
                std::mem::swap(&mut cur, &mut next);
            }
        }
    }

    /// Folds externally accumulated gradients into the internal buffers the
    /// optimizer reads. Call once per chunk, in a fixed order, for
    /// determinism across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `grads` is not shaped like this network.
    pub fn accumulate_gradients(&mut self, grads: &MlpGradients) {
        assert_eq!(
            grads.weights.len(),
            self.layers.len(),
            "gradient shape mismatch"
        );
        for (l, layer) in self.layers.iter_mut().enumerate() {
            layer.add_gradients(&grads.weights[l], &grads.biases[l]);
        }
    }

    /// Flattened copy of the accumulated gradients, parallel to the
    /// parameter order of [`Mlp::for_each_param_mut`] (per layer: weights,
    /// then biases). Used by equivalence tests.
    pub fn gradient_vec(&self) -> Vec<f32> {
        self.layers
            .iter()
            .flat_map(|l| l.gradients().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the network input.
    ///
    /// # Panics
    ///
    /// Panics if `d_out.len() != out_dim()` or `acts` came from a different
    /// architecture.
    pub fn backward(&mut self, acts: &MlpActivations, d_out: &[f32]) -> Vec<f32> {
        assert_eq!(
            acts.outs.len(),
            self.layers.len(),
            "activation cache mismatch"
        );
        let mut grad = d_out.to_vec();
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let mut d_input = vec![0.0; layer.in_dim()];
            layer.backward_into(
                acts.layer_input(l),
                &acts.pres[l],
                &acts.outs[l],
                &grad,
                &mut d_input,
            );
            grad = d_input;
        }
        grad
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Applies `f(param, grad)` over every parameter of every layer.
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        for layer in &mut self.layers {
            layer.for_each_param_mut(&mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&[3, 8, 8, 2], Activation::Relu, Activation::Identity, 1);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(
            net.parameter_count(),
            (3 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2)
        );
        let acts = net.forward(&[1.0, 2.0, 3.0]);
        assert_eq!(acts.output().len(), 2);
    }

    #[test]
    fn gradient_check_full_network() {
        // Loss = sum(d_out .* output); check d(loss)/d(input) numerically.
        let mut net = Mlp::new(&[4, 6, 3], Activation::Relu, Activation::Sigmoid, 3);
        let input = [0.3f32, -0.7, 0.2, 0.9];
        let d_out = [1.0f32, -1.0, 0.5];
        let acts = net.forward(&input);
        let d_in = net.backward(&acts, &d_out);
        let loss = |x: &[f32]| {
            let a = net.forward(x);
            d_out
                .iter()
                .zip(a.output())
                .map(|(g, y)| g * y)
                .sum::<f32>()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = input;
            xp[i] += eps;
            let up = loss(&xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&xp);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - d_in[i]).abs() < 2e-2,
                "input {i}: numeric {numeric} vs analytic {}",
                d_in[i]
            );
        }
    }

    #[test]
    fn sgd_reduces_loss_on_toy_regression() {
        // Fit y = sigmoid(2x - 1) from samples; plain SGD must reduce MSE.
        let mut net = Mlp::new(&[1, 8, 1], Activation::Relu, Activation::Sigmoid, 5);
        let data: Vec<(f32, f32)> = (0..32)
            .map(|i| {
                let x = i as f32 / 31.0;
                (x, 1.0 / (1.0 + (-(2.0 * x - 1.0)).exp()))
            })
            .collect();
        let eval = |net: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| {
                    let o = net.forward(&[*x]).output()[0];
                    (o - y) * (o - y)
                })
                .sum::<f32>()
                / data.len() as f32
        };
        let before = eval(&net);
        for _ in 0..300 {
            net.zero_grad();
            for (x, y) in &data {
                let acts = net.forward(&[*x]);
                let o = acts.output()[0];
                let d = 2.0 * (o - y) / data.len() as f32;
                net.backward(&acts, &[d]);
            }
            net.for_each_param_mut(|p, g| *p -= 0.5 * g);
        }
        let after = eval(&net);
        assert!(
            after < before * 0.25,
            "loss {before} -> {after} did not drop enough"
        );
    }

    #[test]
    fn zero_grad_then_step_is_noop() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, 8);
        let before: Vec<f32> = net
            .layers()
            .iter()
            .flat_map(|l| l.parameters().copied().collect::<Vec<_>>())
            .collect();
        net.zero_grad();
        net.for_each_param_mut(|p, g| *p -= 0.1 * g);
        let after: Vec<f32> = net
            .layers()
            .iter()
            .flat_map(|l| l.parameters().copied().collect::<Vec<_>>())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn forward_batch_matches_scalar_bitwise() {
        // 17 points: exercises a full 16-point block plus a ragged tail.
        let net = Mlp::new(&[3, 8, 8, 2], Activation::Relu, Activation::Sigmoid, 21);
        let n = 17;
        let inputs: Vec<f32> = (0..n * 3).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut acts = MlpBatchActivations::default();
        net.forward_batch(&inputs, &mut acts);
        assert_eq!(acts.len(), n);
        for r in 0..n {
            let scalar = net.forward(&inputs[r * 3..(r + 1) * 3]);
            assert_eq!(
                &acts.output()[r * 2..(r + 1) * 2],
                scalar.output(),
                "row {r} diverged"
            );
        }
    }

    #[test]
    fn backward_batch_matches_scalar_gradients() {
        let mut scalar_net = Mlp::new(&[4, 6, 3], Activation::Relu, Activation::Sigmoid, 33);
        let batch_net = scalar_net.clone();
        let n = 9;
        let inputs: Vec<f32> = (0..n * 4).map(|i| (i as f32 * 0.23).cos()).collect();
        let d_outs: Vec<f32> = (0..n * 3).map(|i| (i as f32 * 0.11).sin()).collect();

        // Scalar reference: accumulate over the batch point by point.
        scalar_net.zero_grad();
        let mut scalar_d_in = Vec::new();
        for r in 0..n {
            let acts = scalar_net.forward(&inputs[r * 4..(r + 1) * 4]);
            scalar_d_in.extend(scalar_net.backward(&acts, &d_outs[r * 3..(r + 1) * 3]));
        }

        // Batched: one forward/backward over the whole matrix.
        let mut acts = MlpBatchActivations::default();
        batch_net.forward_batch(&inputs, &mut acts);
        let mut grads = MlpGradients::zeros(&batch_net);
        let mut d_in = vec![0.0; n * 4];
        batch_net.backward_batch(&inputs, &acts, &d_outs, &mut d_in, &mut grads);
        let mut batch_net = batch_net;
        batch_net.zero_grad();
        batch_net.accumulate_gradients(&grads);

        assert_eq!(d_in, scalar_d_in, "input gradients diverged");
        let sg = scalar_net.gradient_vec();
        let bg = batch_net.gradient_vec();
        assert_eq!(sg.len(), bg.len());
        for (i, (a, b)) in sg.iter().zip(&bg).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "parameter gradient {i}: scalar {a} vs batched {b}"
            );
        }
    }

    #[test]
    fn fused_forward_matches_unfused_bitwise() {
        // 37 points: two full 16-point tiles plus a ragged 5-point tail.
        let net = Mlp::new(&[6, 8, 8, 3], Activation::Relu, Activation::Sigmoid, 77);
        let n = 37;
        let inputs: Vec<f32> = (0..n * 6).map(|i| (i as f32 * 0.19).sin()).collect();
        let mut unfused = MlpBatchActivations::default();
        net.forward_batch(&inputs, &mut unfused);
        // Fused path: the producer transposes the same rows into the tile,
        // standing in for an encoder streaming features directly.
        let mut fused = MlpBatchActivations::default();
        let mut scratch = MlpScratch::default();
        net.forward_batch_fused(
            n,
            |block_start, bn, tile| {
                for p in 0..bn {
                    let row = &inputs[(block_start + p) * 6..(block_start + p + 1) * 6];
                    for (i, &v) in row.iter().enumerate() {
                        tile[i * FWD_BLOCK + p] = v;
                    }
                }
            },
            &mut fused,
            &mut scratch,
        );
        assert_eq!(fused.len(), unfused.len());
        for (a, b) in fused.outs.iter().zip(&unfused.outs) {
            assert_eq!(a, b, "activated outputs diverged");
        }
        for (a, b) in fused.pres.iter().zip(&unfused.pres) {
            assert_eq!(a, b, "pre-activations diverged");
        }
    }

    #[test]
    fn scratch_backward_matches_allocating_backward() {
        let net = Mlp::new(&[4, 6, 6, 3], Activation::Relu, Activation::Identity, 51);
        let n = 11;
        let inputs: Vec<f32> = (0..n * 4).map(|i| (i as f32 * 0.31).cos()).collect();
        let d_outs: Vec<f32> = (0..n * 3).map(|i| (i as f32 * 0.17).sin()).collect();
        let mut acts = MlpBatchActivations::default();
        net.forward_batch(&inputs, &mut acts);
        let mut g1 = MlpGradients::zeros(&net);
        let mut d1 = vec![0.0; n * 4];
        net.backward_batch(&inputs, &acts, &d_outs, &mut d1, &mut g1);
        let mut g2 = MlpGradients::zeros(&net);
        let mut d2 = vec![0.0; n * 4];
        let mut scratch = MlpScratch::default();
        // Run twice through the same scratch to prove reuse is clean.
        for _ in 0..2 {
            g2.reset(&net);
            d2.fill(0.0);
            net.backward_batch_scratch(&inputs, &acts, &d_outs, &mut d2, &mut g2, &mut scratch);
        }
        assert_eq!(d1, d2);
        assert_eq!(g1.weights, g2.weights);
        assert_eq!(g1.biases, g2.biases);
    }

    #[test]
    fn batch_activations_reuse_across_sizes() {
        let net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, 2);
        let mut acts = MlpBatchActivations::default();
        assert!(acts.is_empty());
        net.forward_batch(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &mut acts);
        assert_eq!(acts.len(), 3);
        net.forward_batch(&[0.7, 0.8], &mut acts);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts.output().len(), 1);
        let scalar = net.forward(&[0.7, 0.8]);
        assert_eq!(acts.output(), scalar.output());
    }

    proptest! {
        #[test]
        fn outputs_finite_for_bounded_inputs(
            a in -10.0f32..10.0, b in -10.0f32..10.0, c in -10.0f32..10.0
        ) {
            let net = Mlp::new(&[3, 16, 4], Activation::Relu, Activation::Exp, 11);
            let out = net.forward(&[a, b, c]);
            for &v in out.output() {
                prop_assert!(v.is_finite());
            }
        }
    }
}
