//! Multi-layer perceptrons built from [`DenseLayer`]s.

use crate::layer::{Activation, DenseLayer};
use serde::{Deserialize, Serialize};

/// The cached activations of one forward pass, needed for backprop.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpActivations {
    /// `inputs[l]` is the input to layer `l`; `inputs[0]` is the network input.
    inputs: Vec<Vec<f32>>,
    /// Per-layer pre-activations.
    pres: Vec<Vec<f32>>,
    /// Per-layer activated outputs; the last is the network output.
    outs: Vec<Vec<f32>>,
}

impl MlpActivations {
    /// The network output of this forward pass.
    pub fn output(&self) -> &[f32] {
        self.outs.last().expect("at least one layer")
    }
}

/// A stack of dense layers.
///
/// Hidden layers share one activation; the output layer has its own (e.g.
/// `Sigmoid` for RGB, `Identity` for feature heads).
///
/// # Example
///
/// ```
/// use inerf_mlp::{Mlp, Activation};
/// let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, 7);
/// let acts = net.forward(&[0.5, -0.5]);
/// assert!(acts.output()[0] > 0.0 && acts.output()[0] < 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP from layer widths, e.g. `&[32, 64, 16]` builds
    /// 32→64→16.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    output
                } else {
                    hidden
                };
                DenseLayer::new(w[0], w[1], act, seed.wrapping_add(i as u64 * 0x9E37))
            })
            .collect();
        Mlp { layers }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Forward pass, caching everything backprop needs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim()`.
    pub fn forward(&self, input: &[f32]) -> MlpActivations {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pres = Vec::with_capacity(self.layers.len());
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut current = input.to_vec();
        for layer in &self.layers {
            let mut pre = vec![0.0; layer.out_dim()];
            let mut out = vec![0.0; layer.out_dim()];
            layer.forward_into(&current, &mut pre, &mut out);
            inputs.push(current);
            current = out.clone();
            pres.push(pre);
            outs.push(out);
        }
        MlpActivations { inputs, pres, outs }
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the network input.
    ///
    /// # Panics
    ///
    /// Panics if `d_out.len() != out_dim()` or `acts` came from a different
    /// architecture.
    pub fn backward(&mut self, acts: &MlpActivations, d_out: &[f32]) -> Vec<f32> {
        assert_eq!(
            acts.outs.len(),
            self.layers.len(),
            "activation cache mismatch"
        );
        let mut grad = d_out.to_vec();
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let mut d_input = vec![0.0; layer.in_dim()];
            layer.backward_into(
                &acts.inputs[l],
                &acts.pres[l],
                &acts.outs[l],
                &grad,
                &mut d_input,
            );
            grad = d_input;
        }
        grad
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Applies `f(param, grad)` over every parameter of every layer.
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut f32, f32)) {
        for layer in &mut self.layers {
            layer.for_each_param_mut(&mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&[3, 8, 8, 2], Activation::Relu, Activation::Identity, 1);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(
            net.parameter_count(),
            (3 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2)
        );
        let acts = net.forward(&[1.0, 2.0, 3.0]);
        assert_eq!(acts.output().len(), 2);
    }

    #[test]
    fn gradient_check_full_network() {
        // Loss = sum(d_out .* output); check d(loss)/d(input) numerically.
        let mut net = Mlp::new(&[4, 6, 3], Activation::Relu, Activation::Sigmoid, 3);
        let input = [0.3f32, -0.7, 0.2, 0.9];
        let d_out = [1.0f32, -1.0, 0.5];
        let acts = net.forward(&input);
        let d_in = net.backward(&acts, &d_out);
        let loss = |x: &[f32]| {
            let a = net.forward(x);
            d_out
                .iter()
                .zip(a.output())
                .map(|(g, y)| g * y)
                .sum::<f32>()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = input;
            xp[i] += eps;
            let up = loss(&xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&xp);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - d_in[i]).abs() < 2e-2,
                "input {i}: numeric {numeric} vs analytic {}",
                d_in[i]
            );
        }
    }

    #[test]
    fn sgd_reduces_loss_on_toy_regression() {
        // Fit y = sigmoid(2x - 1) from samples; plain SGD must reduce MSE.
        let mut net = Mlp::new(&[1, 8, 1], Activation::Relu, Activation::Sigmoid, 5);
        let data: Vec<(f32, f32)> = (0..32)
            .map(|i| {
                let x = i as f32 / 31.0;
                (x, 1.0 / (1.0 + (-(2.0 * x - 1.0)).exp()))
            })
            .collect();
        let eval = |net: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| {
                    let o = net.forward(&[*x]).output()[0];
                    (o - y) * (o - y)
                })
                .sum::<f32>()
                / data.len() as f32
        };
        let before = eval(&net);
        for _ in 0..300 {
            net.zero_grad();
            for (x, y) in &data {
                let acts = net.forward(&[*x]);
                let o = acts.output()[0];
                let d = 2.0 * (o - y) / data.len() as f32;
                net.backward(&acts, &[d]);
            }
            net.for_each_param_mut(|p, g| *p -= 0.5 * g);
        }
        let after = eval(&net);
        assert!(
            after < before * 0.25,
            "loss {before} -> {after} did not drop enough"
        );
    }

    #[test]
    fn zero_grad_then_step_is_noop() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, 8);
        let before: Vec<f32> = net
            .layers()
            .iter()
            .flat_map(|l| l.parameters().copied().collect::<Vec<_>>())
            .collect();
        net.zero_grad();
        net.for_each_param_mut(|p, g| *p -= 0.1 * g);
        let after: Vec<f32> = net
            .layers()
            .iter()
            .flat_map(|l| l.parameters().copied().collect::<Vec<_>>())
            .collect();
        assert_eq!(before, after);
    }

    proptest! {
        #[test]
        fn outputs_finite_for_bounded_inputs(
            a in -10.0f32..10.0, b in -10.0f32..10.0, c in -10.0f32..10.0
        ) {
            let net = Mlp::new(&[3, 16, 4], Activation::Relu, Activation::Exp, 11);
            let out = net.forward(&[a, b, c]);
            for &v in out.output() {
                prop_assert!(v.is_finite());
            }
        }
    }
}
