//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper (printing the
//! same rows/series) and times the computational kernel behind it with
//! Criterion. See EXPERIMENTS.md for recorded outputs.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use inerf_encoding::{HashGrid, LookupTrace};
use inerf_geom::Vec3;

/// Builds a deterministic ray-first lookup trace of `rays × samples` points.
pub fn ray_first_trace(grid: &HashGrid, rays: usize, samples: usize) -> (LookupTrace, u64) {
    let mut t = LookupTrace::new();
    for r in 0..rays {
        let y = 0.04 + 0.9 * r as f32 / rays.max(1) as f32;
        for s in 0..samples {
            let x = (s as f32 + 0.5) / samples as f32;
            t.push_point(&grid.cube_lookups(Vec3::new(x, y, 0.41)));
        }
    }
    (t, (rays * samples) as u64)
}
