//! Online co-simulation benchmark: trains the Tab. II "small" workload
//! with the NMP memory system simulated per iteration through the
//! streaming trace bus, against the buffered-trace reference. Writes
//! `BENCH_cosim.json` at the repo root recording, for both engines and
//! both paths, training throughput and the peak trace-memory footprint —
//! the constant-memory claim, measured run over run. CI runs it in quick
//! mode (`INERF_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_trainer::Engine;
use instant_nerf::experiments::cosim;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct CosimReport {
    workload: String,
    iterations: usize,
    points_per_iteration: usize,
    batched: cosim::CosimResult,
    scalar: cosim::CosimResult,
}

fn quick_mode() -> bool {
    std::env::var("INERF_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn bench(c: &mut Criterion) {
    let iters = if quick_mode() { 4 } else { 16 };
    let batched = cosim::run(Engine::Batched, iters, 7);
    let scalar = cosim::run(Engine::Scalar, iters, 7);
    for r in [&batched, &scalar] {
        assert!(
            r.stats_match,
            "{} engine: streamed stats diverged from the buffered reference",
            r.engine
        );
        println!(
            "cosim ({} engine, {iters} iterations): streamed {:.0} pts/s @ {} peak bytes | buffered {:.0} pts/s @ {} peak bytes | sim {:.3} ms | stats identical",
            r.engine,
            r.streamed.points_per_sec,
            r.streamed.peak_trace_bytes,
            r.buffered.points_per_sec,
            r.buffered.peak_trace_bytes,
            r.streamed.sim_pipelined_seconds * 1e3,
        );
    }
    let report = CosimReport {
        workload: "tab2-small".to_string(),
        iterations: iters,
        points_per_iteration: batched.points_per_iteration,
        batched,
        scalar,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cosim.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    inerf_snapshot::atomic_write_file(std::path::Path::new(path), (json + "\n").as_bytes())
        .expect("write BENCH_cosim.json");
    println!("wrote {path}");

    // A tracked criterion kernel: one co-simulated training step.
    use inerf_encoding::HashFunction;
    use inerf_scenes::{zoo, DatasetConfig};
    use inerf_trainer::{IngpModel, ModelConfig, TrainConfig, Trainer};
    let scene = zoo::scene(zoo::SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model_cfg = ModelConfig::small(HashFunction::Morton);
    let mut trainer = Trainer::new(IngpModel::new(model_cfg, 7), TrainConfig::small(), 3);
    let mut sink = inerf_accel::CosimSink::new(
        inerf_accel::PipelineModel::paper(model_cfg),
        TrainConfig::small().points_per_iteration() as u64,
    );
    trainer.train_with_sink(&dataset, 1, &mut sink);
    c.bench_function("cosim/train_step_online", |b| {
        b.iter(|| trainer.train_step_with_sink(&dataset, Some(&mut sink)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
