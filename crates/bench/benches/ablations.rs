//! Ablation benches: isolate each co-design element of DESIGN.md §7 and
//! report its contribution to the iteration time.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_accel::parallel::ParallelismPlan;
use inerf_accel::{HashTableMapping, MappingScheme, PipelineModel};
use inerf_bench::ray_first_trace;
use inerf_encoding::{HashFunction, HashGrid};
use inerf_trainer::ModelConfig;
use std::hint::black_box;

const BATCH: u64 = 256 * 1024;

fn bench(c: &mut Criterion) {
    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 7);
    let (trace, n) = ray_first_trace(&grid, 8, 128);

    let model_org = ModelConfig::paper(HashFunction::Original);
    let grid_org = HashGrid::new(model_org.grid, 7);
    let (trace_org, n_org) = ray_first_trace(&grid_org, 8, 128);

    println!("\nAblation table (pipelined ms/iteration, 256K-point batch):");
    let base = PipelineModel::paper(model).estimate_iteration(&trace, n, BATCH);
    println!(
        "  full design point             {:8.3}",
        base.pipelined_seconds * 1e3
    );
    let no_morton = PipelineModel::paper(model_org).estimate_iteration(&trace_org, n_org, BATCH);
    println!(
        "  - Morton hash                 {:8.3}",
        no_morton.pipelined_seconds * 1e3
    );
    let no_spread = PipelineModel::paper(model)
        .with_mapping(
            HashTableMapping::paper(MappingScheme::ClusteredNoSpread, 32),
            32,
        )
        .estimate_iteration(&trace, n, BATCH);
    println!(
        "  - subarray spreading          {:8.3}",
        no_spread.pipelined_seconds * 1e3
    );
    let no_cluster = PipelineModel::paper(model)
        .with_mapping(
            HashTableMapping::paper(MappingScheme::OneLevelPerBank, 32),
            32,
        )
        .estimate_iteration(&trace, n, BATCH);
    println!(
        "  - inter-level clustering      {:8.3}",
        no_cluster.pipelined_seconds * 1e3
    );
    let all_data = PipelineModel::paper(model)
        .with_plan(ParallelismPlan::all_data())
        .estimate_iteration(&trace, n, BATCH);
    println!(
        "  - heterogeneous parallelism   {:8.3}",
        all_data.pipelined_seconds * 1e3
    );
    println!(
        "  - stage pipelining            {:8.3}\n",
        base.serial_seconds * 1e3
    );

    let mut group = c.benchmark_group("ablations/subarray_sweep");
    group.sample_size(10);
    for sa in [1u32, 8, 32, 64] {
        let pm = PipelineModel::paper(model)
            .with_mapping(HashTableMapping::paper(MappingScheme::Clustered, sa), sa);
        group.bench_function(format!("{sa}_subarrays"), |b| {
            b.iter(|| pm.estimate_iteration(black_box(&trace), n, BATCH))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
