//! Fig. 9: bank conflicts vs subarray count, plus raw DRAM-simulator
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_accel::{AccelConfig, HashTableMapping, MappingScheme};
use inerf_bench::ray_first_trace;
use inerf_dram::DramSim;
use inerf_encoding::{HashFunction, HashGrid, HashGridConfig};
use instant_nerf::experiments::fig9;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig9::render(&fig9::run(16, 96, 7)));
    let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 7);
    let (trace, _) = ray_first_trace(&grid, 8, 96);
    let accel = AccelConfig::paper();
    let mut group = c.benchmark_group("fig9/dram_replay");
    for sa in [1u32, 8, 64] {
        let dram = accel.nmp_dram(sa);
        let mapping = HashTableMapping::paper(MappingScheme::Clustered, sa);
        let reqs = mapping.requests_for_trace(&trace, &dram, false);
        group.bench_function(format!("{sa}_subarrays_{}_reqs", reqs.len()), |b| {
            b.iter(|| DramSim::new(dram).run(black_box(&reqs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
