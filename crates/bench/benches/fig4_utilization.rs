//! Fig. 4: DRAM throughput / ALU utilization of the bottleneck kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use instant_nerf::experiments::fig4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig4::render(&fig4::run()));
    c.bench_function("fig4/utilization_model", |b| {
        b.iter(|| black_box(fig4::run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
