//! Tabs. I–III: specifications and workload sizing.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::HashFunction;
use inerf_trainer::workload::{step_sizes, Step};
use inerf_trainer::ModelConfig;
use instant_nerf::experiments::tables;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", tables::tab1());
    println!("{}", tables::tab2());
    println!("{}", tables::tab3());
    let model = ModelConfig::paper(HashFunction::Morton);
    c.bench_function("tab2/workload_sizing", |b| {
        b.iter(|| {
            Step::ALL
                .iter()
                .map(|&s| step_sizes(black_box(&model), s, 256 * 1024).param_bytes)
                .sum::<u64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
