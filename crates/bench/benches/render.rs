//! Inference fast-path benchmark: pixels per second of the render engine
//! against the pre-engine naive renderer (replicated below), on a trained
//! Mic model at 1 thread. The matrix crosses the evaluation path (scalar
//! per-point fallback vs the batched phased pipeline) × parameter
//! precision (f32 vs fp16) × occupancy culling on/off, all with early ray
//! termination on for the fast rows. Each rate is the median of several
//! timing windows after a warm-up render that fills the arena. Writes
//! `BENCH_render.json` at the repo root recording, per config, pixels/sec,
//! the culled-sample fraction, effective samples per pixel and per-stage
//! ns/pixel — plus the naive reference rate the headline speedup is
//! measured against. CI runs it in quick mode (`INERF_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::HashFunction;
use inerf_geom::{Aabb, Camera, Vec3};
use inerf_mlp::Precision;
use inerf_render::volume::{composite_spans, RayBatch, RaySpan};
use inerf_scenes::{zoo, DatasetConfig, Image};
use inerf_trainer::render::{RenderEngine, RenderOpts};
use inerf_trainer::{
    engine, IngpModel, ModelConfig, OccupancyGrid, TrainConfig, TrainableField, Trainer,
};
use serde::Serialize;
use std::time::Instant;

/// Read-only wrapper that hides [`IngpModel`]'s batched entry points, so
/// the engine takes the serial per-point dense fallback — the "scalar"
/// axis of the matrix. Only the evaluation surface is live; the training
/// hooks are inert.
struct ScalarRef<'a>(&'a IngpModel);

impl TrainableField for ScalarRef<'_> {
    fn begin_batch(&mut self) {}
    fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        self.0.query_eval(p, d)
    }
    fn backward(&mut self, _idx: usize, _d_sigma: f32, _d_color: Vec3) {}
    fn apply_gradients(&mut self) {}
    fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        self.0.query_eval(p, d)
    }
    fn parameter_count(&self) -> usize {
        self.0.parameter_count()
    }
}

/// The pre-engine `render_view_with_pool`, replicated verbatim (2048
/// hit-pixel blocks, per-block `vec!` allocations, serial ray generation,
/// dense query of both MLPs, wide composite kernel) — the baseline the
/// recorded speedup is measured against.
fn render_view_naive<M: TrainableField>(
    model: &M,
    camera: &Camera,
    bounds: &Aabb,
    samples_per_ray: usize,
    pool: &rayon::ThreadPool,
) -> Image {
    const RENDER_PIXEL_BLOCK: usize = 2048;
    let mut img = Image::new(camera.width, camera.height);
    let mut points = Vec::new();
    let mut dirs = Vec::new();
    let mut spans = Vec::new();
    let mut pixels = Vec::new();
    let flush = |points: &mut Vec<Vec3>,
                 dirs: &mut Vec<Vec3>,
                 spans: &mut Vec<RaySpan>,
                 pixels: &mut Vec<(u32, u32)>,
                 img: &mut Image| {
        if spans.is_empty() {
            return;
        }
        let n = points.len();
        let mut sigmas = vec![0.0f32; n];
        let mut rgbs = vec![Vec3::ZERO; n];
        model.query_eval_batch(points, dirs, &mut sigmas, &mut rgbs, pool);
        let mut ray_colors = vec![Vec3::ZERO; spans.len()];
        let mut backgrounds = vec![0.0f32; spans.len()];
        let mut weights = vec![0.0f32; n];
        let mut trans_after = vec![0.0f32; n];
        composite_spans(
            &RayBatch {
                sigmas: &sigmas,
                colors: &rgbs,
                spans,
                dts: None,
                sample_base: 0,
            },
            &mut ray_colors,
            &mut backgrounds,
            &mut weights,
            &mut trans_after,
        );
        for (&(px, py), &color) in pixels.iter().zip(&ray_colors) {
            img.set(px, py, color);
        }
        points.clear();
        dirs.clear();
        spans.clear();
        pixels.clear();
    };
    for py in 0..camera.height {
        for px in 0..camera.width {
            let ray = camera.ray_for_pixel(px, py);
            let Some(hit) = bounds.intersect(&ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            let ts = ray.stratified_ts(hit.t_near.max(1e-4), hit.t_far, samples_per_ray, None);
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / samples_per_ray as f32;
            let start = points.len();
            for &t in &ts {
                points.push(bounds.normalize(ray.at(t)));
                dirs.push(ray.direction);
            }
            spans.push(RaySpan {
                start,
                len: ts.len(),
                dt,
            });
            pixels.push((px, py));
            if pixels.len() == RENDER_PIXEL_BLOCK {
                flush(&mut points, &mut dirs, &mut spans, &mut pixels, &mut img);
            }
        }
    }
    flush(&mut points, &mut dirs, &mut spans, &mut pixels, &mut img);
    img
}

/// Per-stage cost of one engine render, in nanoseconds per output pixel.
#[derive(Debug, Serialize)]
struct StageNsPerPixel {
    ray_gen: f64,
    density: f64,
    scan: f64,
    color: f64,
    blend: f64,
}

#[derive(Debug, Serialize)]
struct ConfigReport {
    /// `scalar` (per-point dense fallback) or `batched` (phased pipeline).
    eval_path: String,
    precision: String,
    occupancy_culling: bool,
    early_termination: bool,
    pixels_per_sec: f64,
    speedup_vs_reference: f64,
    /// Fraction of in-bounds samples removed by empty-space skipping.
    culled_fraction: f64,
    /// Color-MLP queries per output pixel after culling + early exit.
    samples_per_pixel_effective: f64,
    stage_ns_per_pixel: StageNsPerPixel,
}

#[derive(Debug, Serialize)]
struct RenderReport {
    scene: String,
    resolution: u32,
    samples_per_ray: usize,
    train_iterations: usize,
    threads: usize,
    /// Timing windows per config; the recorded rate is their median.
    timing_windows: usize,
    grid_resolution: u32,
    grid_threshold: f32,
    /// Occupied-cell fraction of the refreshed grid the fast rows cull
    /// against.
    grid_occupancy: f64,
    /// Dense samples per pixel before any culling (rays_hit × spp / pixels).
    samples_per_pixel_dense: f64,
    /// The pre-engine naive renderer on the batched f32 model — the
    /// baseline every `speedup_vs_reference` is measured against.
    reference_pixels_per_sec: f64,
    /// Headline: batched/f32 with culling + early termination vs the
    /// reference above.
    speedup_fast_vs_reference: f64,
    configs: Vec<ConfigReport>,
}

fn quick_mode() -> bool {
    std::env::var("INERF_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median seconds per call over `windows` timed calls after one warm-up
/// (which fills the render arena, the phased-eval scratch and the pool).
fn median_secs(windows: usize, f: &mut dyn FnMut()) -> f64 {
    f();
    let samples = (0..windows)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(samples)
}

struct TrainedScene {
    model: IngpModel,
    grid: OccupancyGrid,
}

/// Trains the Mic model at the given parameter precision with the
/// occupancy grid refreshing along, returning the model and the final
/// grid. Mic is the sparsest zoo scene, so empty-space skipping has the
/// most to cull — the same reason iNGP demos on it.
fn train_scene(
    dataset: &inerf_scenes::Dataset,
    precision: Precision,
    iterations: usize,
    grid_resolution: u32,
    grid_threshold: f32,
) -> TrainedScene {
    let cfg = TrainConfig::small().with_precision(precision);
    let mut trainer = Trainer::new(
        IngpModel::for_config(ModelConfig::small(HashFunction::Morton), &cfg, 7),
        cfg,
        3,
    )
    .with_occupancy_grid(grid_resolution, grid_threshold, 16);
    trainer.train(dataset, iterations);
    let grid = trainer.occupancy_grid().expect("grid was enabled").clone();
    TrainedScene {
        model: trainer.into_model(),
        grid,
    }
}

fn bench(c: &mut Criterion) {
    let (train_iters, windows, spp, resolution) = if quick_mode() {
        (30usize, 3usize, 32usize, 48u32)
    } else {
        (100, 5, 64, 64)
    };
    const GRID_RESOLUTION: u32 = 32;
    // Between the ambient "haze" density of a briefly-trained model
    // (~0.1-0.2) and real content (>0.5), so the refresh actually empties
    // the scene's free space.
    const GRID_THRESHOLD: f32 = 0.3;

    let scene = zoo::scene(zoo::SceneKind::Mic);
    let mut dataset_cfg = DatasetConfig::small();
    dataset_cfg.resolution = resolution;
    let dataset = dataset_cfg.generate(&scene);
    let camera = &dataset.test_views[0].camera;
    let bounds = &dataset.bounds;
    let pool = engine::build_pool(1);
    let pixels = f64::from(camera.width) * f64::from(camera.height);

    let f32_scene = train_scene(
        &dataset,
        Precision::F32,
        train_iters,
        GRID_RESOLUTION,
        GRID_THRESHOLD,
    );
    let fp16_scene = train_scene(
        &dataset,
        Precision::Fp16,
        train_iters,
        GRID_RESOLUTION,
        GRID_THRESHOLD,
    );

    // The baseline: the pre-engine renderer on the f32 model, 1 thread.
    let reference_secs = median_secs(windows, &mut || {
        let _ = render_view_naive(&f32_scene.model, camera, bounds, spp, &pool);
    });
    let reference_pps = pixels / reference_secs;

    let mut configs = Vec::new();
    let mut headline_speedup = 0.0f64;
    for (eval_path, precision) in [
        ("batched", Precision::F32),
        ("batched", Precision::Fp16),
        ("scalar", Precision::F32),
        ("scalar", Precision::Fp16),
    ] {
        let trained = match precision {
            Precision::F32 => &f32_scene,
            Precision::Fp16 => &fp16_scene,
        };
        for culling in [true, false] {
            let grid = culling.then_some(&trained.grid);
            let opts = RenderOpts {
                culling,
                ..RenderOpts::default()
            };
            let mut engine = RenderEngine::default();
            let secs = median_secs(windows, &mut || match eval_path {
                "scalar" => {
                    let _ = engine.render_view(
                        &ScalarRef(&trained.model),
                        camera,
                        bounds,
                        spp,
                        grid,
                        &opts,
                        &pool,
                    );
                }
                _ => {
                    let _ =
                        engine.render_view(&trained.model, camera, bounds, spp, grid, &opts, &pool);
                }
            });
            let stats = *engine.last_stats();
            let pps = pixels / secs;
            let per_px = |ns: u64| ns as f64 / pixels;
            if eval_path == "batched" && precision == Precision::F32 && culling {
                headline_speedup = pps / reference_pps;
            }
            configs.push(ConfigReport {
                eval_path: eval_path.to_string(),
                precision: precision.label().to_string(),
                occupancy_culling: culling,
                early_termination: opts.early_term,
                pixels_per_sec: pps,
                speedup_vs_reference: pps / reference_pps,
                culled_fraction: stats.culled_fraction(),
                samples_per_pixel_effective: stats.samples_per_pixel_effective(),
                stage_ns_per_pixel: StageNsPerPixel {
                    ray_gen: per_px(stats.gen_ns),
                    density: per_px(stats.density_ns),
                    scan: per_px(stats.scan_ns),
                    color: per_px(stats.color_ns),
                    blend: per_px(stats.blend_ns),
                },
            });
        }
    }

    // Dense sample load of this view, from the last reference-shaped run.
    let mut probe = RenderEngine::default();
    let _ = probe.render_view(
        &f32_scene.model,
        camera,
        bounds,
        spp,
        None,
        &RenderOpts::reference(),
        &pool,
    );
    let samples_per_pixel_dense = probe.last_stats().samples_dense as f64 / pixels;

    assert!(
        headline_speedup >= 3.0,
        "culling + early termination must be >= 3x over the pre-engine \
         renderer, measured {headline_speedup:.2}x"
    );

    let report = RenderReport {
        scene: "mic".to_string(),
        resolution,
        samples_per_ray: spp,
        train_iterations: train_iters,
        threads: 1,
        timing_windows: windows,
        grid_resolution: GRID_RESOLUTION,
        grid_threshold: GRID_THRESHOLD,
        grid_occupancy: f32_scene.grid.occupancy(),
        samples_per_pixel_dense,
        reference_pixels_per_sec: reference_pps,
        speedup_fast_vs_reference: headline_speedup,
        configs,
    };
    println!(
        "\nrender ({}x{} mic, {} spp, median of {windows} windows, 1 thread): \
         reference {:.0} px/s | fast {:.2}x | grid occupancy {:.3}",
        resolution, resolution, spp, reference_pps, headline_speedup, report.grid_occupancy,
    );
    for cfg in &report.configs {
        println!(
            "  {}/{} culling={}: {:.0} px/s ({:.2}x) | culled {:.2} | {:.1} color samples/px",
            cfg.eval_path,
            cfg.precision,
            cfg.occupancy_culling,
            cfg.pixels_per_sec,
            cfg.speedup_vs_reference,
            cfg.culled_fraction,
            cfg.samples_per_pixel_effective,
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_render.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    inerf_snapshot::atomic_write_file(std::path::Path::new(path), (json + "\n").as_bytes())
        .expect("write BENCH_render.json");
    println!("wrote {path}");

    // A tracked criterion kernel: one fast-path view render, steady-state
    // (the engine's arena is warm after the first iteration).
    let mut eng = RenderEngine::default();
    c.bench_function("render/fast_view", |b| {
        b.iter(|| {
            eng.render_view(
                &f32_scene.model,
                camera,
                bounds,
                spp,
                Some(&f32_scene.grid),
                &RenderOpts::default(),
                &pool,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
