//! Fig. 7: cube sharing and effective-bandwidth improvement, plus the
//! register-cache replay kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_bench::ray_first_trace;
use inerf_encoding::requests::replay_with_register_cache;
use inerf_encoding::{HashFunction, HashGrid, HashGridConfig};
use instant_nerf::experiments::fig7;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig7::render(&fig7::run(64, 128, 7)));
    let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 7);
    let (trace, _) = ray_first_trace(&grid, 16, 128);
    c.bench_function("fig7/register_cache_replay", |b| {
        b.iter(|| replay_with_register_cache(black_box(&trace), 16))
    });
    c.bench_function("fig7/trace_generation_2k_points", |b| {
        b.iter(|| ray_first_trace(black_box(&grid), 16, 128))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
