//! Fig. 6: index-distance histograms and the requests-per-cube statistic,
//! plus raw hash-function throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::HashFunction;
use inerf_geom::grid::GridCoord;
use instant_nerf::experiments::fig6;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig6::render(&fig6::run(2048, 7)));
    let mut group = c.benchmark_group("fig6/hash_function");
    for hash in [HashFunction::Original, HashFunction::Morton] {
        group.bench_function(hash.label(), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..1000u32 {
                    let v = GridCoord::new(i, i.wrapping_mul(7), i.wrapping_mul(13));
                    acc ^= hash.index(black_box(v), 1 << 19);
                }
                acc
            })
        });
    }
    group.finish();
    c.bench_function("fig6/histogram_2048_points", |b| {
        b.iter(|| black_box(fig6::run(2048, 7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
