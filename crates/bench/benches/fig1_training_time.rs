//! Fig. 1: training time per device and its breakdown.
//!
//! Prints the reproduced figure, then benchmarks the GPU cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::HashFunction;
use inerf_gpu::{GpuSpec, TrainingCost};
use inerf_trainer::ModelConfig;
use instant_nerf::experiments::fig1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig1::render(&fig1::run()));
    let model = ModelConfig::paper(HashFunction::Original);
    let spec = GpuSpec::xnx();
    c.bench_function("fig1/gpu_cost_model", |b| {
        b.iter(|| {
            TrainingCost::estimate(black_box(&spec), black_box(&model), 256 * 1024, 35_000, 1.0)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
