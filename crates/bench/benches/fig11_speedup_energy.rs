//! Fig. 11: per-scene speedup and energy efficiency over the edge GPUs —
//! the paper's headline result — plus the pipeline-estimation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_accel::PipelineModel;
use inerf_bench::ray_first_trace;
use inerf_encoding::{HashFunction, HashGrid};
use inerf_scenes::SceneKind;
use inerf_trainer::ModelConfig;
use instant_nerf::experiments::fig11;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig11::run(&SceneKind::ALL, 1024, 128, 7);
    println!("\n{}", fig11::render(&rows));
    let lo = rows.iter().map(|r| r.speedup_xnx).fold(f64::MAX, f64::min);
    let hi = rows.iter().map(|r| r.speedup_xnx).fold(0.0f64, f64::max);
    println!("XNX speedup range {lo:.1}x-{hi:.1}x (paper 22.0x-49.3x)");
    let lo = rows
        .iter()
        .map(|r| r.energy_gain_xnx)
        .fold(f64::MAX, f64::min);
    let hi = rows
        .iter()
        .map(|r| r.energy_gain_xnx)
        .fold(0.0f64, f64::max);
    println!("XNX energy-gain range {lo:.1}x-{hi:.1}x (paper 46.4x-103.7x)\n");

    let model = ModelConfig::paper(HashFunction::Morton);
    let grid = HashGrid::new(model.grid, 7);
    let (trace, n) = ray_first_trace(&grid, 8, 128);
    let pipeline = PipelineModel::paper(model);
    c.bench_function("fig11/iteration_estimate_1k_points", |b| {
        b.iter(|| pipeline.estimate_iteration(black_box(&trace), n, 256 * 1024))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
