//! Tab. IV: PSNR of the five algorithms. Prints a quick-budget table over
//! a scene subset and benchmarks a single training iteration per method.

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::HashFunction;
use inerf_scenes::{zoo, DatasetConfig, SceneKind};
use inerf_trainer::baselines::{FastNerfLite, NerfLite, TensorfLite};
use inerf_trainer::{IngpModel, ModelConfig, TrainConfig, TrainableField, Trainer};
use instant_nerf::experiments::psnr::{self, PsnrBudget};

fn bench(c: &mut Criterion) {
    let scenes = [SceneKind::Chair, SceneKind::Lego, SceneKind::Mic];
    let rows = psnr::run(&PsnrBudget::quick(), &scenes, 42);
    println!("\n{}", psnr::render(&rows, &scenes));
    println!("(quick budget; run `cargo run --release --example psnr_table full` for the recorded numbers)\n");

    let dataset = DatasetConfig::tiny().generate(&zoo::scene(SceneKind::Lego));
    let mut group = c.benchmark_group("tab4/train_iteration");
    group.sample_size(10);

    fn iter_time<M: TrainableField + Clone>(
        model: M,
    ) -> impl FnMut(&mut criterion::Bencher<'_>, &inerf_scenes::Dataset) {
        move |b, ds| {
            let mut trainer = Trainer::new(model.clone(), TrainConfig::tiny(), 7);
            b.iter(|| trainer.train_step(ds));
        }
    }

    group.bench_with_input(
        "ingp_morton",
        &dataset,
        iter_time(IngpModel::new(ModelConfig::tiny(), 1)),
    );
    group.bench_with_input(
        "ingp_original",
        &dataset,
        iter_time(IngpModel::new(
            {
                let mut cfg = ModelConfig::tiny();
                cfg.grid.hash = HashFunction::Original;
                cfg
            },
            1,
        )),
    );
    group.bench_with_input("nerf_lite", &dataset, iter_time(NerfLite::new(4, 16, 1)));
    group.bench_with_input(
        "tensorf_lite",
        &dataset,
        iter_time(TensorfLite::new(16, 4, 16, 1)),
    );
    group.bench_with_input(
        "fastnerf_lite",
        &dataset,
        iter_time(FastNerfLite::new(4, 16, 4, 1)),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
