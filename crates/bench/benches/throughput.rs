//! Training throughput benchmark: scalar reference vs batched SIMD engine,
//! in sampled points per second, on the Tab. II "small" workload
//! (`TrainConfig::small`: 256 rays × 32 samples = 8 K points/iteration,
//! `ModelConfig::small`). Each rate is the median of several timing
//! windows after a warm-up, so a single noisy window cannot skew the
//! recorded baseline. Also measures per-stage ns/point for the batched
//! 1-thread pipeline (gather → fused encode+density MLP → color MLP →
//! composite → backward), which is what shows whether the MLP stage still
//! dominates. Writes `BENCH_throughput.json` at the repo root so the perf
//! trajectory is recorded run over run; CI runs it in quick mode
//! (`INERF_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::{HashFunction, HashGrid};
use inerf_geom::Vec3;
use inerf_mlp::{AdamState, ParamStore};
use inerf_render::l2_loss;
use inerf_render::volume::{composite_backward_spans, composite_spans, RayBatch, RaySpan};
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_trainer::{
    engine, Engine, IngpModel, ModelConfig, Precision, TrainConfig, TrainableField, Trainer,
};
use serde::Serialize;
use std::time::Instant;

/// Per-stage cost of one batched training iteration at 1 thread, in
/// nanoseconds per sampled point. `encode_density_mlp` is one stage by
/// design: the fused pipeline streams hash-grid features straight into the
/// density MLP's first GEMM tile.
#[derive(Debug, Serialize)]
struct StageNsPerPoint {
    gather: f64,
    encode_density_mlp: f64,
    color_mlp: f64,
    composite: f64,
    composite_backward: f64,
    model_backward: f64,
    /// Grid clip-norm + Adam step under the default sparse path.
    optimizer: f64,
    /// Re-quantizing the touched fp16 working copy after the step.
    fp16_commit: f64,
}

/// Dense vs sparse grid-optimizer cost at the paper's table size
/// (`L=16, T=2^19, F=2` — 16.7 M parameter scalars), fp16 storage, over
/// the touched set of one tab2-small-shaped batch of 8 K points. This is
/// the per-iteration cost the sparse path removes: the dense reference
/// sweeps (and re-quantizes) every scalar, the sparse path only the
/// touched ones.
#[derive(Debug, Serialize)]
struct OptimizerMicrobench {
    levels: u32,
    table_size_log2: u32,
    features: u32,
    param_scalars: usize,
    touched_scalars: usize,
    dense_ms_per_iter: f64,
    sparse_ms_per_iter: f64,
    speedup_sparse_vs_dense: f64,
}

#[derive(Debug, Serialize)]
struct ThroughputReport {
    workload: String,
    rays_per_batch: usize,
    samples_per_ray: usize,
    /// Training iterations per timing window.
    timed_iterations: usize,
    /// Timing windows per engine; the recorded rate is their median.
    timing_windows: usize,
    threads: usize,
    /// Grid-optimizer path of the timed runs (`INERF_OPT`).
    opt_path: String,
    /// Active SIMD backend (`INERF_SIMD` / runtime detection).
    backend: String,
    simd_lanes: usize,
    scalar_points_per_sec: f64,
    batched_1_thread_points_per_sec: f64,
    batched_points_per_sec: f64,
    speedup_batched_vs_scalar: f64,
    speedup_batched_1_thread_vs_scalar: f64,
    stage_ns_per_point_1_thread: StageNsPerPoint,
    optimizer_paper_scale: OptimizerMicrobench,
}

fn quick_mode() -> bool {
    std::env::var("INERF_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median sampled-points-per-second over `windows` timing windows of
/// `iters` iterations each, after a warm-up that fills every cache, the
/// thread pool, and the engine's buffer arena.
fn points_per_sec(
    dataset: &Dataset,
    engine_kind: Engine,
    threads: usize,
    iters: usize,
    windows: usize,
) -> f64 {
    let model = IngpModel::new(ModelConfig::small(HashFunction::Morton), 7);
    let mut trainer =
        Trainer::new(model, TrainConfig::small().with_engine(engine_kind), 3).with_threads(threads);
    trainer.train(dataset, 2);
    let rates = (0..windows)
        .map(|_| {
            let queried_before = trainer.points_queried();
            let start = Instant::now();
            trainer.train(dataset, iters);
            let elapsed = start.elapsed().as_secs_f64();
            (trainer.points_queried() - queried_before) as f64 / elapsed
        })
        .collect();
    median(rates)
}

/// Times each stage of the batched pipeline in isolation through the same
/// public entry points the engine uses, at 1 thread, on one
/// `TrainConfig::small`-shaped batch.
fn stage_timings(dataset: &Dataset, reps: usize) -> StageNsPerPoint {
    let cfg = TrainConfig::small();
    let pool = engine::build_pool(1);
    let bounds = &dataset.bounds;
    let view = &dataset.train_views[0];
    let rays: Vec<_> = (0..cfg.rays_per_batch)
        .map(|i| {
            let px = (i as u32 * 7) % view.camera.width;
            let py = (i as u32 * 13) % view.camera.height;
            view.camera.ray_for_pixel(px, py)
        })
        .collect();
    let s = cfg.samples_per_ray;

    // Stage (b): gather — intersect, stratified sampling, normalization.
    let mut points: Vec<Vec3> = Vec::new();
    let mut dirs: Vec<Vec3> = Vec::new();
    let mut spans: Vec<RaySpan> = Vec::new();
    let mut ts: Vec<f32> = Vec::new();
    let mut gather_ns = 0u128;
    for _ in 0..reps {
        points.clear();
        dirs.clear();
        spans.clear();
        let t0 = Instant::now();
        for ray in &rays {
            let Some(hit) = bounds.intersect(ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            ray.stratified_ts_into(hit.t_near.max(1e-4), hit.t_far, s, None, &mut ts);
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / s as f32;
            let start = points.len();
            for &t in &ts {
                points.push(bounds.normalize(ray.at(t)));
                dirs.push(ray.direction);
            }
            spans.push(RaySpan {
                start,
                len: ts.len(),
                dt,
            });
        }
        gather_ns += t0.elapsed().as_nanos();
    }

    let n = points.len();
    let m = spans.len();
    assert!(n > 0, "stage batch gathered no samples");
    let live: Vec<u32> = (0..n as u32).collect();
    let targets = vec![Vec3::splat(0.5); m];
    let mut model = IngpModel::new(ModelConfig::small(HashFunction::Morton), 7);
    let mut sigmas = vec![0.0f32; n];
    let mut rgbs = vec![Vec3::ZERO; n];
    let mut ray_colors = vec![Vec3::ZERO; m];
    let mut backgrounds = vec![0.0f32; m];
    let mut weights = vec![0.0f32; n];
    let mut trans_after = vec![0.0f32; n];
    let mut d_sigmas = vec![0.0f32; n];
    let mut d_colors = vec![Vec3::ZERO; n];
    let (mut encode_ns, mut color_ns, mut comp_ns, mut cbwd_ns, mut mbwd_ns) = (0u128, 0, 0, 0, 0);
    let mut opt_ns = 0u128;
    for _ in 0..reps {
        model.begin_batch();
        // Stage (c1): fused hash-grid encode → density MLP.
        let t0 = Instant::now();
        let phased = model.query_batch_density(&points, &mut sigmas, &pool);
        encode_ns += t0.elapsed().as_nanos();
        assert!(phased, "IngpModel must support the phased pipeline");
        // Stage (c2): color MLP over (here: all-live) samples.
        let t0 = Instant::now();
        model.query_batch_color_compacted(&dirs, &live, &mut rgbs, &pool);
        color_ns += t0.elapsed().as_nanos();
        // Stage (d): volume rendering.
        let batch = RayBatch {
            sigmas: &sigmas,
            colors: &rgbs,
            spans: &spans,
            dts: None,
            sample_base: 0,
        };
        let t0 = Instant::now();
        composite_spans(
            &batch,
            &mut ray_colors,
            &mut backgrounds,
            &mut weights,
            &mut trans_after,
        );
        comp_ns += t0.elapsed().as_nanos();
        // Stages (e)-(f): loss, composite backward, model backward.
        let loss = l2_loss(&ray_colors, &targets);
        let t0 = Instant::now();
        composite_backward_spans(
            &batch,
            &weights,
            &trans_after,
            &loss.d_predictions,
            &mut d_sigmas,
            &mut d_colors,
        );
        cbwd_ns += t0.elapsed().as_nanos();
        let t0 = Instant::now();
        model.backward_batch_compacted(&d_sigmas, &d_colors, &pool);
        mbwd_ns += t0.elapsed().as_nanos();
        // Stage (g): optimizer — clip-norm + Adam over the touched grid
        // entries (sparse path by default) plus both MLP updates.
        let t0 = Instant::now();
        model.apply_gradients();
        opt_ns += t0.elapsed().as_nanos();
    }

    // The fp16 re-quantization of the touched working copy, measured on
    // an fp16-stored grid over the same batch's touched set (the stage
    // model above stores f32, where the commit is a no-op).
    let mut fp16_grid = HashGrid::with_precision(
        ModelConfig::small(HashFunction::Morton).grid,
        7,
        Precision::Fp16,
    );
    fp16_grid.enable_touch_tracking();
    fp16_grid.begin_touch_batch();
    fp16_grid.collect_touched_batch(&points);
    fp16_grid.mark_touched_synced();
    fp16_grid.finalize_touched();
    let t0 = Instant::now();
    for _ in 0..reps {
        fp16_grid.commit_touched();
    }
    let fp16_ns = t0.elapsed().as_nanos();

    let per_pt = |ns: u128| ns as f64 / (reps * n) as f64;
    StageNsPerPoint {
        gather: per_pt(gather_ns),
        encode_density_mlp: per_pt(encode_ns),
        color_mlp: per_pt(color_ns),
        composite: per_pt(comp_ns),
        composite_backward: per_pt(cbwd_ns),
        model_backward: per_pt(mbwd_ns),
        optimizer: per_pt(opt_ns),
        fp16_commit: per_pt(fp16_ns),
    }
}

/// A deterministic batch of ray-segment samples in the unit cube: `rays`
/// random segments, `samples` evenly spaced points each — the spatial
/// structure of a real training batch (adjacent samples share cells, so
/// coarse levels deduplicate heavily), without an RNG dependency in the
/// bench crate.
fn lcg_ray_samples(rays: usize, samples: usize) -> Vec<Vec3> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 40) as f32 / (1u64 << 24) as f32
    };
    let mut points = Vec::with_capacity(rays * samples);
    for _ in 0..rays {
        let a = Vec3::new(next(), next(), next());
        let b = Vec3::new(next(), next(), next());
        for s in 0..samples {
            let t = (s as f32 + 0.5) / samples as f32;
            points.push(a + (b - a) * t);
        }
    }
    points
}

/// Times the dense reference sweep vs the sparse path at the paper's
/// `L=16, T=2^19, F=2` table size on an fp16 store: per iteration,
/// clip-norm accumulation, the Adam step and the fp16 working-copy
/// re-quantization. The touched set comes from a real paper-scale
/// [`HashGrid`] collecting a tab2-small-shaped batch of 256 rays × 32
/// samples (8 corners × 16 levels, deduplicated), so per-level dedup is
/// as in training. Each path's per-iteration time is the median over its
/// iterations, which keeps a single scheduler hiccup out of the recorded
/// ratio.
fn optimizer_microbench(dense_iters: usize, sparse_iters: usize) -> OptimizerMicrobench {
    let grid_cfg = ModelConfig::paper(HashFunction::Morton).grid;
    let (init, touched) = {
        let mut grid = HashGrid::with_precision(grid_cfg, 7, Precision::Fp16);
        grid.enable_touch_tracking();
        grid.begin_touch_batch();
        grid.collect_touched_batch(&lcg_ray_samples(256, 32));
        grid.mark_touched_synced();
        grid.finalize_touched();
        let (scalars, _, _) = grid.touched_scalars_master_grads();
        let touched = scalars.to_vec();
        (grid.parameter_store().master().to_vec(), touched)
    };
    let n = init.len();
    let mut grads = vec![0.0f32; n];
    for &i in &touched {
        grads[i as usize] = 1e-4 * ((i % 997) as f32 - 498.0);
    }
    let clip = 32.0f64;
    let scale_of = |norm_sq: f64| {
        let norm = norm_sq.sqrt();
        if norm > clip {
            (clip / norm) as f32
        } else {
            1.0
        }
    };

    let mut dense_store = ParamStore::new(Precision::Fp16, init.clone());
    let mut dense_adam = AdamState::new(n, 0.01);
    let mut sparse_store = ParamStore::new(Precision::Fp16, init);
    let mut sparse_adam = AdamState::new(n, 0.01);
    sparse_adam.enable_lazy();
    // Interleave the two paths round-robin so slow machine-wide drift
    // (thermal throttling, co-tenants) hits both sides of the recorded
    // ratio equally instead of whichever path happened to run second.
    let mut dense_samples = Vec::with_capacity(dense_iters);
    let mut sparse_samples = Vec::with_capacity(sparse_iters);
    let sparse_per_round = sparse_iters.div_ceil(dense_iters);
    let mut gathered = vec![0.0f32; touched.len()];
    for _ in 0..dense_iters {
        let t0 = Instant::now();
        let norm_sq: f64 = grads.iter().map(|&g| (g as f64) * (g as f64)).sum();
        dense_adam.step_scaled(dense_store.master_mut(), &grads, scale_of(norm_sq));
        dense_store.commit();
        dense_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        for _ in 0..sparse_per_round {
            let t0 = Instant::now();
            // Clip-norm pass gathers the touched gradients compactly;
            // the fused step then streams them and re-quantizes each
            // fp16 scalar in place, exactly as the trainer does.
            let mut norm_sq = 0.0f64;
            for (j, &i) in touched.iter().enumerate() {
                let g = grads[i as usize];
                gathered[j] = g;
                norm_sq += (g as f64) * (g as f64);
            }
            sparse_adam.step_sparse_gathered(
                &mut sparse_store,
                &gathered,
                &touched,
                scale_of(norm_sq),
            );
            sparse_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let dense_ms = median(dense_samples);
    let sparse_ms = median(sparse_samples);

    OptimizerMicrobench {
        levels: grid_cfg.levels,
        table_size_log2: grid_cfg.table_size_log2,
        features: grid_cfg.features,
        param_scalars: n,
        touched_scalars: touched.len(),
        dense_ms_per_iter: dense_ms,
        sparse_ms_per_iter: sparse_ms,
        speedup_sparse_vs_dense: dense_ms / sparse_ms,
    }
}

fn bench(c: &mut Criterion) {
    let (iters, windows, stage_reps) = if quick_mode() { (4, 3, 2) } else { (12, 5, 10) };
    let threads = engine::default_threads();
    let scene = zoo::scene(zoo::SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);

    let scalar = points_per_sec(&dataset, Engine::Scalar, threads, iters, windows);
    let batched_1 = points_per_sec(&dataset, Engine::Batched, 1, iters, windows);
    let batched = points_per_sec(&dataset, Engine::Batched, threads, iters, windows);
    let stages = stage_timings(&dataset, stage_reps);
    let (dense_iters, sparse_iters) = if quick_mode() { (3, 30) } else { (12, 240) };
    let paper_opt = optimizer_microbench(dense_iters, sparse_iters);

    let cfg = TrainConfig::small();
    let report = ThroughputReport {
        workload: "tab2-small".to_string(),
        rays_per_batch: cfg.rays_per_batch,
        samples_per_ray: cfg.samples_per_ray,
        timed_iterations: iters,
        timing_windows: windows,
        threads,
        opt_path: inerf_trainer::OptPath::from_env().label().to_string(),
        backend: inerf_simd::backend().name().to_string(),
        simd_lanes: inerf_simd::f32x8::LANES,
        scalar_points_per_sec: scalar,
        batched_1_thread_points_per_sec: batched_1,
        batched_points_per_sec: batched,
        speedup_batched_vs_scalar: batched / scalar,
        speedup_batched_1_thread_vs_scalar: batched_1 / scalar,
        stage_ns_per_point_1_thread: stages,
        optimizer_paper_scale: paper_opt,
    };
    println!(
        "\nthroughput (tab2-small, median of {windows}x{iters} iterations, backend {}): \
         scalar {:.0} pts/s | batched x1 {:.0} pts/s ({:.2}x) | batched x{threads} {:.0} pts/s ({:.2}x)",
        report.backend,
        scalar,
        batched_1,
        batched_1 / scalar,
        batched,
        batched / scalar,
    );
    println!(
        "stages (ns/pt, 1 thread): gather {:.0} | encode+density {:.0} | color {:.0} | \
         composite {:.0} | composite-bwd {:.0} | model-bwd {:.0} | optimizer {:.0} | \
         fp16-commit {:.0}",
        report.stage_ns_per_point_1_thread.gather,
        report.stage_ns_per_point_1_thread.encode_density_mlp,
        report.stage_ns_per_point_1_thread.color_mlp,
        report.stage_ns_per_point_1_thread.composite,
        report.stage_ns_per_point_1_thread.composite_backward,
        report.stage_ns_per_point_1_thread.model_backward,
        report.stage_ns_per_point_1_thread.optimizer,
        report.stage_ns_per_point_1_thread.fp16_commit,
    );
    println!(
        "paper-scale optimizer (L={}, T=2^{}, {:.1}M scalars, {:.0}K touched): \
         dense {:.1} ms/iter | sparse {:.3} ms/iter | {:.0}x",
        report.optimizer_paper_scale.levels,
        report.optimizer_paper_scale.table_size_log2,
        report.optimizer_paper_scale.param_scalars as f64 / 1e6,
        report.optimizer_paper_scale.touched_scalars as f64 / 1e3,
        report.optimizer_paper_scale.dense_ms_per_iter,
        report.optimizer_paper_scale.sparse_ms_per_iter,
        report.optimizer_paper_scale.speedup_sparse_vs_dense,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    inerf_snapshot::atomic_write_file(std::path::Path::new(path), (json + "\n").as_bytes())
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");

    // A tracked criterion kernel so the suite's usual min/mean reporting
    // covers one batched step too.
    let mut trainer = Trainer::new(
        IngpModel::new(ModelConfig::small(HashFunction::Morton), 7),
        TrainConfig::small(),
        3,
    );
    trainer.train(&dataset, 1);
    c.bench_function("throughput/batched_train_step", |b| {
        b.iter(|| trainer.train_step(&dataset))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
