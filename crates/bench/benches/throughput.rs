//! Training throughput smoke benchmark: scalar reference vs batched SoA
//! engine, in sampled points per second, on the Tab. II "small" workload
//! (`TrainConfig::small`: 256 rays × 32 samples = 8 K points/iteration,
//! `ModelConfig::small`). Writes `BENCH_throughput.json` at the repo root
//! so the perf trajectory is recorded run over run; CI runs it in quick
//! mode (`INERF_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use inerf_encoding::HashFunction;
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_trainer::{engine, Engine, IngpModel, ModelConfig, TrainConfig, Trainer};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ThroughputReport {
    workload: String,
    rays_per_batch: usize,
    samples_per_ray: usize,
    timed_iterations: usize,
    threads: usize,
    scalar_points_per_sec: f64,
    batched_1_thread_points_per_sec: f64,
    batched_points_per_sec: f64,
    speedup_batched_vs_scalar: f64,
    speedup_batched_1_thread_vs_scalar: f64,
}

fn quick_mode() -> bool {
    std::env::var("INERF_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn points_per_sec(dataset: &Dataset, engine_kind: Engine, threads: usize, iters: usize) -> f64 {
    let model = IngpModel::new(ModelConfig::small(HashFunction::Morton), 7);
    let mut trainer =
        Trainer::new(model, TrainConfig::small().with_engine(engine_kind), 3).with_threads(threads);
    trainer.train(dataset, 2); // warm caches, pool, and allocator
    let queried_before = trainer.points_queried();
    let start = Instant::now();
    trainer.train(dataset, iters);
    let elapsed = start.elapsed().as_secs_f64();
    (trainer.points_queried() - queried_before) as f64 / elapsed
}

fn bench(c: &mut Criterion) {
    let iters = if quick_mode() { 6 } else { 24 };
    let threads = engine::default_threads();
    let scene = zoo::scene(zoo::SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);

    let scalar = points_per_sec(&dataset, Engine::Scalar, threads, iters);
    let batched_1 = points_per_sec(&dataset, Engine::Batched, 1, iters);
    let batched = points_per_sec(&dataset, Engine::Batched, threads, iters);

    let cfg = TrainConfig::small();
    let report = ThroughputReport {
        workload: "tab2-small".to_string(),
        rays_per_batch: cfg.rays_per_batch,
        samples_per_ray: cfg.samples_per_ray,
        timed_iterations: iters,
        threads,
        scalar_points_per_sec: scalar,
        batched_1_thread_points_per_sec: batched_1,
        batched_points_per_sec: batched,
        speedup_batched_vs_scalar: batched / scalar,
        speedup_batched_1_thread_vs_scalar: batched_1 / scalar,
    };
    println!(
        "\nthroughput (tab2-small, {iters} iterations): scalar {:.0} pts/s | batched x1 {:.0} pts/s ({:.2}x) | batched x{threads} {:.0} pts/s ({:.2}x)",
        scalar,
        batched_1,
        batched_1 / scalar,
        batched,
        batched / scalar,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_throughput.json");
    println!("wrote {path}");

    // A tracked criterion kernel so the suite's usual min/mean reporting
    // covers one batched step too.
    let mut trainer = Trainer::new(
        IngpModel::new(ModelConfig::small(HashFunction::Morton), 7),
        TrainConfig::small(),
        3,
    );
    trainer.train(&dataset, 1);
    c.bench_function("throughput/batched_train_step", |b| {
        b.iter(|| trainer.train_step(&dataset))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
