//! Mixed-precision benchmark: trains the Tab. II "small" workload with
//! parameters stored as f32 and as fp16 (f32 master weights), the NMP
//! memory system co-simulated online at the matching entry width. Writes
//! `BENCH_precision.json` at the repo root recording, per precision,
//! PSNR, modeled table bytes, DRAM requests/payload and the simulated
//! iteration time — the storage-precision axis, measured run over run.
//! CI runs it in quick mode (`INERF_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use instant_nerf::experiments::precision;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PrecisionReport {
    workload: String,
    result: precision::PrecisionResult,
}

fn quick_mode() -> bool {
    std::env::var("INERF_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn bench(c: &mut Criterion) {
    let iters = if quick_mode() { 12 } else { 60 };
    let result = precision::run(iters, 7);
    assert_eq!(
        2 * result.half.table_bytes,
        result.full.table_bytes,
        "fp16 must halve the modeled table bytes"
    );
    assert_eq!(
        2 * result.half.request_payload_bytes,
        result.full.request_payload_bytes,
        "fp16 must halve the per-run DRAM payload bytes"
    );
    assert!(
        result.psnr_gap_db.abs() < 0.5,
        "fp16 PSNR gap {:.3} dB exceeds the 0.5 dB budget",
        result.psnr_gap_db
    );
    for p in [&result.full, &result.half] {
        println!(
            "precision {} ({iters} iterations): PSNR {:.2} dB | table {} B | {} DRAM req | {} payload B | sim {:.3} ms/iter | {:.3} mJ",
            p.precision,
            p.psnr_db,
            p.table_bytes,
            p.dram_requests,
            p.request_payload_bytes,
            p.sim_seconds_per_iteration * 1e3,
            p.sim_dram_energy_pj * 1e-9,
        );
    }
    let report = PrecisionReport {
        workload: "tab2-small".to_string(),
        result,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_precision.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    inerf_snapshot::atomic_write_file(std::path::Path::new(path), (json + "\n").as_bytes())
        .expect("write BENCH_precision.json");
    println!("wrote {path}");

    // A tracked criterion kernel: one fp16 training step (quantized
    // encode + MLPs + master-weight Adam + RNE commit).
    use inerf_encoding::HashFunction;
    use inerf_scenes::{zoo, DatasetConfig};
    use inerf_trainer::{IngpModel, ModelConfig, Precision, TrainConfig, Trainer};
    let scene = zoo::scene(zoo::SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model_cfg = ModelConfig::small(HashFunction::Morton);
    let config = TrainConfig::small().with_precision(Precision::Fp16);
    let mut trainer = Trainer::new(IngpModel::for_config(model_cfg, &config, 7), config, 3);
    trainer.train(&dataset, 1);
    c.bench_function("precision/train_step_fp16", |b| {
        b.iter(|| trainer.train_step(&dataset))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
