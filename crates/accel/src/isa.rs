//! The per-bank microarchitecture at instruction level (paper Fig. 8).
//!
//! Fig. 8 shows a controller (instruction FIFO → decoder → compute-engine
//! control + bank command/address generators) driving a compute engine
//! (INT32 PE group, FP32 PE group, scratchpad, crossbar, hash registers,
//! and the row-buffer-sized `r0` register). This module makes that concrete:
//! a small instruction set, program generators for the HT/HT_b/MLP kernels,
//! and an in-order execution model with three occupied resources (INT PEs,
//! FP PEs, bank port). The analytical [`crate::microarch`] cycle counts are
//! cross-validated against executed programs in the tests.

use crate::config::AccelConfig;
use inerf_encoding::hash::index_int_ops;
use inerf_encoding::HashFunction;
use serde::{Deserialize, Serialize};

/// One instruction of the Instant-NeRF microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// Activate + stream a DRAM row's needed columns into `r0`
    /// (bank command generator path). `cols` 16-byte beats.
    LoadRow {
        /// 16-byte column beats streamed.
        cols: u32,
    },
    /// Write dirty `r0` columns back to the open row.
    StoreRow {
        /// 16-byte column beats written.
        cols: u32,
    },
    /// Hash-index calculation for `vertices` cube vertices on the INT32 PE
    /// group (reads the hash registers).
    HashIndex {
        /// Vertices to hash.
        vertices: u32,
    },
    /// Gather `entries` 32-bit embedding entries from `r0` through the
    /// crossbar into the scratchpad.
    Gather {
        /// Entries moved.
        entries: u32,
    },
    /// Trilinear interpolation for `points` points × `features` features
    /// (8 corners each) on the FP32 PE group.
    Interpolate {
        /// Points interpolated.
        points: u32,
        /// Features per point.
        features: u32,
    },
    /// A dense GEMV tile (`rows × cols` MACs) on the FP32 PE group.
    Gemv {
        /// Output rows.
        rows: u32,
        /// Input columns.
        cols: u32,
    },
    /// Scatter-accumulate `entries` gradient entries into `r0` (FP32 adds).
    ScatterAdd {
        /// Entries accumulated.
        entries: u32,
    },
    /// Wait until all outstanding unit work completes (controller barrier).
    Sync,
}

/// Which execution resource an instruction occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Int,
    Fp,
    Bank,
    None,
}

/// Cycle-level execution statistics of one program on one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Total cycles (makespan at the microarchitecture clock).
    pub cycles: u64,
    /// Cycles the INT32 PE group was busy.
    pub int_busy: u64,
    /// Cycles the FP32 PE group was busy.
    pub fp_busy: u64,
    /// Cycles the bank data port was busy.
    pub bank_busy: u64,
    /// Instructions executed.
    pub instructions: u64,
}

impl ExecutionStats {
    /// INT32 PE utilization in `[0, 1]`.
    pub fn int_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_busy as f64 / self.cycles as f64
        }
    }

    /// FP32 PE utilization in `[0, 1]`.
    pub fn fp_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fp_busy as f64 / self.cycles as f64
        }
    }
}

/// Occupancy of an instruction: `(unit, busy cycles)`.
fn occupancy(instr: &Instruction, accel: &AccelConfig, hash: HashFunction) -> (Unit, u64) {
    match *instr {
        // The bank port moves one 16-byte beat per cycle (128-bit prefetch).
        Instruction::LoadRow { cols } | Instruction::StoreRow { cols } => {
            (Unit::Bank, cols.max(1) as u64)
        }
        Instruction::HashIndex { vertices } => {
            let ops = vertices as u64 * index_int_ops(hash) as u64;
            (Unit::Int, ops.div_ceil(accel.int_pes as u64).max(1))
        }
        // Crossbar moves 4 entries (16 B) per cycle.
        Instruction::Gather { entries } => (Unit::Bank, (entries as u64).div_ceil(4).max(1)),
        Instruction::Interpolate { points, features } => {
            // 8 corners × features MACs + 3 weight muls per corner.
            let macs = points as u64 * (8 * features as u64 + 24);
            (Unit::Fp, macs.div_ceil(accel.fp_pes as u64).max(1))
        }
        Instruction::Gemv { rows, cols } => {
            let macs = rows as u64 * cols as u64;
            (Unit::Fp, macs.div_ceil(accel.fp_pes as u64).max(1))
        }
        Instruction::ScatterAdd { entries } => (
            Unit::Fp,
            (entries as u64).div_ceil(accel.fp_pes as u64).max(1),
        ),
        Instruction::Sync => (Unit::None, 0),
    }
}

/// Executes a program in order: the controller decodes one instruction per
/// cycle; an instruction issues when its unit frees, and different units
/// overlap (the decoupled control/data paths of Fig. 8). `Sync` joins all
/// units.
pub fn execute(program: &[Instruction], accel: &AccelConfig, hash: HashFunction) -> ExecutionStats {
    let mut unit_free = [0u64; 3]; // Int, Fp, Bank
    let mut decode = 0u64;
    let mut stats = ExecutionStats::default();
    for instr in program {
        decode += 1; // one decode slot per instruction
        let (unit, busy) = occupancy(instr, accel, hash);
        match unit {
            Unit::None => {
                // Barrier: decode waits for every unit.
                decode = decode.max(unit_free.iter().copied().max().unwrap_or(0));
            }
            Unit::Int => {
                let start = decode.max(unit_free[0]);
                unit_free[0] = start + busy;
                stats.int_busy += busy;
            }
            Unit::Fp => {
                let start = decode.max(unit_free[1]);
                unit_free[1] = start + busy;
                stats.fp_busy += busy;
            }
            Unit::Bank => {
                let start = decode.max(unit_free[2]);
                unit_free[2] = start + busy;
                stats.bank_busy += busy;
            }
        }
        stats.instructions += 1;
    }
    stats.cycles = decode.max(unit_free.iter().copied().max().unwrap_or(0));
    stats
}

/// Generates the HT-step program for one bank processing `points` points
/// over `levels_on_bank` co-resident levels, with `features` features per
/// entry and an average `rows_per_point` fresh rows per point (from the
/// trace statistics).
pub fn ht_program(
    points: u32,
    levels_on_bank: u32,
    features: u32,
    rows_per_point: f32,
) -> Vec<Instruction> {
    let mut prog = Vec::new();
    let rows_total = (points as f32 * rows_per_point).ceil() as u32;
    let rows_per_point_int = rows_total.div_ceil(points.max(1));
    for _ in 0..points {
        // Index calculation for all co-resident levels' cubes.
        prog.push(Instruction::HashIndex {
            vertices: 8 * levels_on_bank,
        });
        for _ in 0..rows_per_point_int {
            // Fresh row: stream only the needed entries' beats (8 entries
            // of 4 B ≈ 2 beats, padded for alignment).
            prog.push(Instruction::LoadRow { cols: 2 });
        }
        prog.push(Instruction::Gather {
            entries: 8 * levels_on_bank,
        });
        prog.push(Instruction::Interpolate {
            points: 1,
            features: features * levels_on_bank,
        });
    }
    prog.push(Instruction::Sync);
    prog
}

/// Generates the HT_b-step program (gradient scatter + batched drain).
pub fn htb_program(
    points: u32,
    levels_on_bank: u32,
    features: u32,
    rows_per_point: f32,
) -> Vec<Instruction> {
    let mut prog = Vec::new();
    let rows_total = ((points as f32 * rows_per_point).ceil() as u32).max(1);
    for _ in 0..points {
        prog.push(Instruction::HashIndex {
            vertices: 8 * levels_on_bank,
        });
        prog.push(Instruction::LoadRow { cols: 2 });
        prog.push(Instruction::ScatterAdd {
            entries: 8 * levels_on_bank * features,
        });
    }
    // Batched drain: one store per touched row.
    for _ in 0..rows_total {
        prog.push(Instruction::StoreRow { cols: 2 });
    }
    prog.push(Instruction::Sync);
    prog
}

/// Generates the MLP-forward program for one bank's share of the batch:
/// per point, one GEMV per layer streamed through scratchpad tiles.
pub fn mlp_program(points: u32, layer_dims: &[(u32, u32)]) -> Vec<Instruction> {
    let mut prog = Vec::new();
    for _ in 0..points {
        for &(rows, cols) in layer_dims {
            prog.push(Instruction::Gemv { rows, cols });
        }
    }
    prog.push(Instruction::Sync);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microarch::bank_compute_cycles;
    use inerf_trainer::workload::Step;
    use inerf_trainer::ModelConfig;

    fn accel() -> AccelConfig {
        AccelConfig::paper()
    }

    #[test]
    fn empty_program_takes_no_time() {
        let s = execute(&[], &accel(), HashFunction::Morton);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.instructions, 0);
    }

    #[test]
    fn sync_joins_units() {
        let a = accel();
        let prog = [
            Instruction::LoadRow { cols: 64 },
            Instruction::Sync,
            Instruction::HashIndex { vertices: 8 },
        ];
        let s = execute(&prog, &a, HashFunction::Morton);
        // HashIndex cannot start before the 64-cycle load completes.
        assert!(s.cycles > 64);
    }

    #[test]
    fn units_overlap_without_sync() {
        let a = accel();
        let parallel = [
            Instruction::LoadRow { cols: 50 },
            Instruction::HashIndex { vertices: 256 * 2 }, // ~dozens of INT cycles
        ];
        let s = execute(&parallel, &a, HashFunction::Morton);
        // Makespan is far below the serial sum of both occupancies.
        assert!(
            s.cycles < s.bank_busy + s.int_busy,
            "units must overlap: {} vs {} + {}",
            s.cycles,
            s.bank_busy,
            s.int_busy
        );
    }

    #[test]
    fn ht_program_is_int_dominated() {
        // The paper's rationale for the dedicated INT32 PE group.
        let prog = ht_program(64, 1, 2, 1.6);
        let s = execute(&prog, &accel(), HashFunction::Morton);
        assert!(
            s.int_busy >= s.fp_busy,
            "int {} vs fp {}",
            s.int_busy,
            s.fp_busy
        );
    }

    #[test]
    fn executed_ht_cycles_track_analytical_model() {
        // Cross-validation: the Fig. 8 execution model and the analytical
        // microarch model agree within 3x on the HT compute time.
        let a = accel();
        let model = ModelConfig::paper(HashFunction::Morton);
        let points = 512u32;
        // Analytical: full 16-level HT for `points`, divided over 8 banks.
        let analytical = bank_compute_cycles(&a, &model, Step::Ht, points as u64) / 8;
        // Executed: one bank with 2 co-resident levels (16/8). Compare the
        // compute occupancy (the execution model's bank-port cycles belong
        // to the DRAM side of the analytical split).
        let prog = ht_program(points, 2, 2, 1.6);
        let s = execute(&prog, &a, HashFunction::Morton);
        let compute = s.int_busy.max(s.fp_busy);
        let ratio = compute as f64 / analytical.max(1) as f64;
        assert!(
            (0.33..3.0).contains(&ratio),
            "executed compute {} vs analytical {} (ratio {ratio:.2})",
            compute,
            analytical
        );
    }

    #[test]
    fn htb_program_drains_rows_once() {
        let prog = htb_program(32, 1, 2, 1.5);
        let stores = prog
            .iter()
            .filter(|i| matches!(i, Instruction::StoreRow { .. }))
            .count();
        assert_eq!(stores, 48, "ceil(32 * 1.5) batched drain stores");
    }

    #[test]
    fn mlp_program_is_fp_bound() {
        // Density MLP dims for the paper config: 32→64→16.
        let prog = mlp_program(128, &[(64, 32), (16, 64)]);
        let s = execute(&prog, &accel(), HashFunction::Morton);
        assert_eq!(s.int_busy, 0);
        assert!(s.fp_busy > 0);
        assert!(
            s.fp_utilization() > 0.5,
            "fp util {:.2}",
            s.fp_utilization()
        );
    }

    #[test]
    fn morton_hash_costs_more_int_cycles_than_original() {
        let prog = ht_program(64, 1, 2, 1.6);
        let m = execute(&prog, &accel(), HashFunction::Morton);
        let o = execute(&prog, &accel(), HashFunction::Original);
        assert!(m.int_busy > o.int_busy, "{} vs {}", m.int_busy, o.int_busy);
    }
}
