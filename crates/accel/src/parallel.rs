//! Heterogeneous inter-bank parallelism (paper Sec. IV-C, Fig. 10).
//!
//! Two classic options exist per step: *data parallelism* (duplicate
//! parameters, split inputs) and *parameter parallelism* (split parameters,
//! duplicate inputs). Inter-bank transfers are expensive (16-bit shared
//! channel I/O), so the paper chooses per step whichever duplicates the
//! *smaller* operand: parameter parallelism for HT/HT_b (the 25 MB table is
//! split; the 3 MB inputs are duplicated) and data parallelism for MLP/MLP_b
//! (the 0.014 MB weights are duplicated; the 16 MB activations are split).

use crate::config::AccelConfig;
use inerf_trainer::workload::{mlp_combined_sizes_at, step_sizes_at, Step};
use inerf_trainer::{ModelConfig, Precision};
use serde::{Deserialize, Serialize};

/// Inter-bank parallelization of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelismKind {
    /// Split inputs, duplicate parameters.
    Data,
    /// Split parameters, duplicate inputs.
    Parameter,
}

/// The per-step parallelism choices of a full design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismPlan {
    /// HT forward.
    pub ht: ParallelismKind,
    /// MLP forward (MLPd → MLPc).
    pub mlp: ParallelismKind,
    /// MLP backward.
    pub mlp_b: ParallelismKind,
    /// HT backward.
    pub ht_b: ParallelismKind,
}

impl ParallelismPlan {
    /// The paper's heterogeneous plan.
    pub const fn paper() -> Self {
        ParallelismPlan {
            ht: ParallelismKind::Parameter,
            mlp: ParallelismKind::Data,
            mlp_b: ParallelismKind::Data,
            ht_b: ParallelismKind::Parameter,
        }
    }

    /// Ablation: data parallelism everywhere (the table is duplicated!).
    pub const fn all_data() -> Self {
        ParallelismPlan {
            ht: ParallelismKind::Data,
            mlp: ParallelismKind::Data,
            mlp_b: ParallelismKind::Data,
            ht_b: ParallelismKind::Data,
        }
    }

    /// Ablation: parameter parallelism everywhere (activations shuttle
    /// between banks inside the MLP).
    pub const fn all_parameter() -> Self {
        ParallelismPlan {
            ht: ParallelismKind::Parameter,
            mlp: ParallelismKind::Parameter,
            mlp_b: ParallelismKind::Parameter,
            ht_b: ParallelismKind::Parameter,
        }
    }
}

/// Inter-bank traffic of one training iteration, split into the paper's
/// four categories (Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MovementBreakdown {
    /// Category 1: parameter/data duplication for the chosen parallelism.
    pub cat1_duplication: u64,
    /// Category 2: input/output transfer between sequential steps.
    pub cat2_sequential: u64,
    /// Category 3: intermediate transfers within a single step.
    pub cat3_intermediate: u64,
    /// Category 4: parameter-gradient partial-sum transfers.
    pub cat4_gradients: u64,
}

impl MovementBreakdown {
    /// Total bytes moved between banks per iteration.
    pub fn total(&self) -> u64 {
        self.cat1_duplication + self.cat2_sequential + self.cat3_intermediate + self.cat4_gradients
    }

    /// Seconds to move this traffic over the inter-bank interconnect.
    pub fn seconds(&self, accel: &AccelConfig) -> f64 {
        self.total() as f64 / accel.interbank_bw_bytes_per_s
    }
}

/// Computes the per-iteration inter-bank traffic of `plan` for a batch of
/// `points` sampled points on `banks` banks.
pub fn movement_bytes(
    model: &ModelConfig,
    plan: &ParallelismPlan,
    points: u64,
    banks: u64,
) -> MovementBreakdown {
    movement_bytes_at(model, plan, points, banks, Precision::Fp16)
}

/// [`movement_bytes`] with parameters/activations stored at `precision`
/// (the argument-free version keeps the paper's fp16 convention).
pub fn movement_bytes_at(
    model: &ModelConfig,
    plan: &ParallelismPlan,
    points: u64,
    banks: u64,
    precision: Precision,
) -> MovementBreakdown {
    let ht = step_sizes_at(model, Step::Ht, points, precision);
    let mlp = mlp_combined_sizes_at(model, points, precision);
    let ht_b = step_sizes_at(model, Step::HtB, points, precision);
    let mut m = MovementBreakdown::default();

    // Category 1 — duplication.
    m.cat1_duplication += match plan.ht {
        // Inputs (coordinates) broadcast to every table-holding bank.
        ParallelismKind::Parameter => ht.input_bytes * (banks - 1),
        // The whole hash table replicated per bank.
        ParallelismKind::Data => ht.param_bytes * (banks - 1),
    };
    m.cat1_duplication += match plan.mlp {
        ParallelismKind::Data => mlp.param_bytes * (banks - 1),
        ParallelismKind::Parameter => mlp.input_bytes * (banks - 1),
    };

    // Category 2 — sequential-step transfers: HT output → MLP input when the
    // layouts differ (parameter-parallel HT leaves per-level features on
    // table banks; data-parallel MLP wants per-point partitions), and the
    // mirrored transfer feeding HT_b.
    let ht_to_mlp_differs = plan.ht != plan.mlp;
    if ht_to_mlp_differs {
        m.cat2_sequential += ht.output_bytes;
    }
    let mlpb_to_htb_differs = plan.mlp_b != plan.ht_b;
    if mlpb_to_htb_differs {
        m.cat2_sequential += ht_b.input_bytes;
    }

    // Category 3 — intra-step intermediates: parameter-parallel MLPs must
    // move activations between banks at every layer boundary.
    if plan.mlp == ParallelismKind::Parameter {
        m.cat3_intermediate += mlp.intermediate_bytes;
    }
    if plan.mlp_b == ParallelismKind::Parameter {
        m.cat3_intermediate += mlp.intermediate_bytes;
    }

    // Category 4 — gradient partial sums: data-parallel backward steps must
    // all-reduce their parameter gradients.
    if plan.mlp_b == ParallelismKind::Data {
        m.cat4_gradients += mlp.param_bytes * (banks - 1);
    }
    if plan.ht_b == ParallelismKind::Data {
        m.cat4_gradients += ht_b.param_bytes * (banks - 1);
    }
    m
}

/// Transfer-time-relevant bus traffic of one iteration, in bytes.
///
/// Unlike [`movement_bytes`] (which accounts the duplication *footprint*,
/// the quantity the paper's Category table minimizes), this counts bytes
/// crossing the die's shared I/O once per transfer: a broadcast reaches all
/// banks in one bus pass, while a gradient all-reduce collects one partial
/// per bank.
pub fn bus_bytes(model: &ModelConfig, plan: &ParallelismPlan, points: u64, banks: u64) -> u64 {
    bus_bytes_at(model, plan, points, banks, Precision::Fp16)
}

/// [`bus_bytes`] with parameters/activations stored at `precision` —
/// f32 storage doubles the bytes crossing the shared I/O.
pub fn bus_bytes_at(
    model: &ModelConfig,
    plan: &ParallelismPlan,
    points: u64,
    banks: u64,
    precision: Precision,
) -> u64 {
    let ht = step_sizes_at(model, Step::Ht, points, precision);
    let mlp = mlp_combined_sizes_at(model, points, precision);
    let ht_b = step_sizes_at(model, Step::HtB, points, precision);
    let mut bytes = 0u64;
    // Category 1 (broadcast once).
    bytes += match plan.ht {
        ParallelismKind::Parameter => ht.input_bytes,
        ParallelismKind::Data => ht.param_bytes,
    };
    bytes += match plan.mlp {
        ParallelismKind::Data => mlp.param_bytes,
        ParallelismKind::Parameter => mlp.input_bytes,
    };
    // Category 2.
    if plan.ht != plan.mlp {
        bytes += ht.output_bytes;
    }
    if plan.mlp_b != plan.ht_b {
        bytes += ht_b.input_bytes;
    }
    // Category 3.
    if plan.mlp == ParallelismKind::Parameter {
        bytes += mlp.intermediate_bytes;
    }
    if plan.mlp_b == ParallelismKind::Parameter {
        bytes += mlp.intermediate_bytes;
    }
    // Category 4 (one partial per bank).
    if plan.mlp_b == ParallelismKind::Data {
        bytes += mlp.param_bytes * banks;
    }
    if plan.ht_b == ParallelismKind::Data {
        bytes += ht_b.param_bytes * banks;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::HashFunction;
    use inerf_trainer::workload::{mlp_combined_sizes, step_sizes};

    const POINTS: u64 = 256 * 1024;
    const BANKS: u64 = 16;

    fn model() -> ModelConfig {
        ModelConfig::paper(HashFunction::Morton)
    }

    #[test]
    fn paper_plan_matches_fig10_categories() {
        let m = movement_bytes(&model(), &ParallelismPlan::paper(), POINTS, BANKS);
        // Fig. 10 table: HT duplicates data (yes), MLP duplicates params
        // (yes), one sequential transfer each direction, no intermediates,
        // gradients only for the small MLPs.
        assert!(m.cat1_duplication > 0);
        assert!(m.cat2_sequential > 0);
        assert_eq!(
            m.cat3_intermediate, 0,
            "paper plan has no Category-3 traffic"
        );
        assert!(m.cat4_gradients > 0);
        // Category 4 covers only the tiny MLP weights, not the 25 MB table.
        let mlp_params = mlp_combined_sizes(&model(), POINTS).param_bytes;
        assert_eq!(m.cat4_gradients, mlp_params * (BANKS - 1));
    }

    #[test]
    fn paper_plan_beats_both_homogeneous_plans() {
        // The central Sec. IV-C claim.
        let paper = movement_bytes(&model(), &ParallelismPlan::paper(), POINTS, BANKS).total();
        let all_data =
            movement_bytes(&model(), &ParallelismPlan::all_data(), POINTS, BANKS).total();
        let all_param =
            movement_bytes(&model(), &ParallelismPlan::all_parameter(), POINTS, BANKS).total();
        assert!(
            paper < all_data / 2,
            "paper {paper} should be far below all-data {all_data} (table duplication)"
        );
        assert!(
            paper < all_param,
            "paper {paper} should beat all-parameter {all_param} (activation shuttling)"
        );
    }

    #[test]
    fn all_data_duplicates_the_table() {
        let m = movement_bytes(&model(), &ParallelismPlan::all_data(), POINTS, BANKS);
        let table = step_sizes(&model(), Step::Ht, POINTS).param_bytes;
        assert!(m.cat1_duplication >= table * (BANKS - 1));
    }

    #[test]
    fn all_parameter_moves_intermediates() {
        let m = movement_bytes(&model(), &ParallelismPlan::all_parameter(), POINTS, BANKS);
        assert!(m.cat3_intermediate > 0);
        assert_eq!(
            m.cat4_gradients, 0,
            "parameter-parallel backward needs no all-reduce"
        );
    }

    #[test]
    fn bus_bytes_preserves_plan_ordering() {
        let paper = bus_bytes(&model(), &ParallelismPlan::paper(), POINTS, BANKS);
        let all_data = bus_bytes(&model(), &ParallelismPlan::all_data(), POINTS, BANKS);
        let all_param = bus_bytes(&model(), &ParallelismPlan::all_parameter(), POINTS, BANKS);
        assert!(paper < all_data, "paper {paper} vs all-data {all_data}");
        assert!(paper < all_param, "paper {paper} vs all-param {all_param}");
    }

    #[test]
    fn bus_bytes_smaller_than_footprint() {
        let plan = ParallelismPlan::paper();
        let bus = bus_bytes(&model(), &plan, POINTS, BANKS);
        let footprint = movement_bytes(&model(), &plan, POINTS, BANKS).total();
        assert!(
            bus < footprint,
            "broadcast counting must shrink traffic: {bus} vs {footprint}"
        );
    }

    #[test]
    fn movement_seconds_positive() {
        let accel = AccelConfig::paper();
        let m = movement_bytes(&model(), &ParallelismPlan::paper(), POINTS, BANKS);
        assert!(m.seconds(&accel) > 0.0);
        assert_eq!(
            m.total(),
            m.cat1_duplication + m.cat2_sequential + m.cat4_gradients
        );
    }
}
