//! The Instant-NeRF near-memory-processing accelerator model.
//!
//! Implements Sec. IV of the paper on top of the [`inerf_dram`] timing
//! simulator:
//!
//! * [`config`] — Tab. III microarchitecture parameters (200 MHz, 256 INT32
//!   and 256 FP32 PEs and 2 KB scratchpad per bank, 3.6 mm² / 596.3 mW from
//!   the paper's post-layout results, taken as calibrated constants — see
//!   DESIGN.md).
//! * [`mapping`] — the hash-table mapping scheme: intra-level spreading of
//!   sequential rows across subarrays and inter-level clustering of levels
//!   onto banks (Sec. IV-B), plus request-stream generation with the
//!   row-buffer-sized `r0` register filter.
//! * [`microarch`] — per-bank compute-time model for the PE arrays.
//! * [`isa`] — the Fig. 8 microarchitecture at instruction level: a small
//!   ISA, kernel program generators and an in-order execution model that
//!   cross-validates the analytical cycle counts.
//! * [`parallel`] — the heterogeneous inter-bank parallelism design
//!   (Sec. IV-C): parameter parallelism for HT/HT_b, data parallelism for
//!   MLP/MLP_b, and the four inter-bank data-movement categories of Fig. 10.
//! * [`pipeline`] — end-to-end per-iteration and per-scene training
//!   time/energy estimation (the Fig. 11 numbers), fed either from a
//!   materialized trace or online from the streaming trace bus.
//! * [`cosim`] — the trainer-facing co-simulation sink: plugs into the
//!   training loop's trace-bus slot and simulates the NMP memory system
//!   per iteration, at constant memory, while training runs.
//!
//! # Example
//!
//! ```
//! use inerf_accel::{AccelConfig, mapping::{HashTableMapping, MappingScheme}};
//!
//! let accel = AccelConfig::paper();
//! let mapping = HashTableMapping::paper(MappingScheme::Clustered, 8);
//! assert_eq!(accel.banks, 16);
//! assert!(mapping.bank_of_level(0) == mapping.bank_of_level(4)); // clustered coarse levels
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod cosim;
pub mod isa;
pub mod mapping;
pub mod microarch;
pub mod parallel;
pub mod pipeline;

pub use config::AccelConfig;
pub use cosim::{CosimSink, CosimStats};
pub use mapping::{HashTableMapping, MappingScheme, RequestConsumer, RequestSink, RequestStream};
pub use parallel::{MovementBreakdown, ParallelismKind, ParallelismPlan};
pub use pipeline::{IterationEstimate, IterationSink, PipelineModel, StepTime};
