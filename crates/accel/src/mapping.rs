//! Hash-table-to-DRAM mapping (paper Sec. IV-B).
//!
//! Two composable decisions:
//!
//! * **Inter-level mapping** — which bank stores which level. The paper
//!   clusters the cheap coarse levels (their conflict load is unbalanced —
//!   Fig. 9) into groups `{0–4}`, `{5–8}`, `{9–10}` and gives every finer
//!   level its own bank, balancing per-bank processing time.
//! * **Intra-level mapping** — where a level's rows land inside its bank.
//!   Spreading *sequential* row addresses round-robin across subarrays
//!   converts the >50% of conflicts caused by sequential-address requests
//!   into subarray-parallel accesses.

use inerf_dram::{AccessKind, DramConfig, DramSim, PhysAddr, Request};
use inerf_encoding::trace::CubeLookup;
use inerf_encoding::{EntryLayout, LookupTrace, TraceSink};
use serde::{Deserialize, Serialize};
// inerf-lint: allow(hash-order) -- membership-only set (see `touched_keys`); iteration never happens
use std::collections::HashSet;

/// Inter-level bank-assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// The paper's scheme: coarse levels clustered ({0–4}, {5–8}, {9–10}),
    /// fine levels one bank each.
    Clustered,
    /// Naive scheme for ablation: level `l` on bank `l % banks`.
    OneLevelPerBank,
    /// Naive scheme for ablation: sequential rows stay sequential within a
    /// subarray (no intra-level spreading). Inter-level as `Clustered`.
    ClusteredNoSpread,
}

/// Maps `(level, entry)` hash-table coordinates to physical DRAM addresses
/// and generates request streams from lookup traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashTableMapping {
    scheme: MappingScheme,
    /// `assignment[level]` = bank holding that level.
    assignment: Vec<u32>,
    /// Subarrays per bank used by the intra-level spread.
    subarrays: u32,
    /// Row geometry at the table's storage width: 4 B entries for the
    /// paper's fp16 pairs (the default), 8 B for f32 storage.
    layout: EntryLayout,
}

impl HashTableMapping {
    /// Builds the mapping for the paper's 16-level table.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays == 0`.
    pub fn paper(scheme: MappingScheme, subarrays: u32) -> Self {
        Self::new(scheme, 16, 16, subarrays)
    }

    /// Builds a mapping for `levels` hash-table levels over `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(scheme: MappingScheme, levels: u32, banks: u32, subarrays: u32) -> Self {
        assert!(
            levels > 0 && banks > 0 && subarrays > 0,
            "mapping parameters must be positive"
        );
        let assignment = match scheme {
            MappingScheme::OneLevelPerBank => (0..levels).map(|l| l % banks).collect(),
            MappingScheme::Clustered | MappingScheme::ClusteredNoSpread => {
                // Groups: {0..=4} {5..=8} {9..=10}, then one bank per level.
                (0..levels)
                    .map(|l| {
                        let group = match l {
                            0..=4 => 0,
                            5..=8 => 1,
                            9..=10 => 2,
                            _ => 3 + (l - 11),
                        };
                        group % banks
                    })
                    .collect()
            }
        };
        HashTableMapping {
            scheme,
            assignment,
            subarrays,
            layout: EntryLayout::default(),
        }
    }

    /// The same mapping with `entry_bytes`-wide table entries — how the
    /// storage precision reaches the DRAM row model (f32 entries are
    /// twice the default fp16 width, so fewer entries share a row).
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` is zero or exceeds the row size.
    pub fn with_entry_bytes(mut self, entry_bytes: u32) -> Self {
        self.layout = EntryLayout::new(entry_bytes);
        self
    }

    /// The active scheme.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// The row geometry (bytes per table entry) this mapping assumes.
    pub fn layout(&self) -> EntryLayout {
        self.layout
    }

    /// The bank storing `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the configured level count.
    pub fn bank_of_level(&self, level: u32) -> u32 {
        self.assignment[level as usize]
    }

    /// Number of distinct banks used.
    pub fn banks_used(&self) -> usize {
        let mut b: Vec<u32> = self.assignment.clone();
        b.sort_unstable();
        b.dedup();
        b.len()
    }

    /// Maps one table entry to its physical address.
    ///
    /// Levels sharing a bank partition its subarrays (each co-resident level
    /// owns `S / co_resident` subarrays), so the interleaved per-point level
    /// streams never fight over a subarray. Within a level's share, the
    /// spread policy places sequential rows round-robin across its
    /// subarrays; the no-spread ablation packs them sequentially instead.
    pub fn map_entry(&self, level: u32, entry: u32, dram: &DramConfig) -> PhysAddr {
        let bank = self.bank_of_level(level);
        let co_resident = self.assignment.iter().filter(|&&b| b == bank).count() as u32;
        let stack_index = self.assignment[..level as usize]
            .iter()
            .filter(|&&b| b == bank)
            .count() as u32;
        let share = (self.subarrays / co_resident).max(1);
        let sa_base = (stack_index * share) % self.subarrays;
        let entries_per_row = self.layout.entries_per_row();
        let rows_per_level = (1u32 << 19) / entries_per_row; // paper table: 2^19 entries
        let row_idx = self.layout.row_of_entry(entry);
        let (subarray, row) = match self.scheme {
            MappingScheme::ClusteredNoSpread => {
                // Sequential rows stay sequential inside one subarray.
                (sa_base, stack_index * rows_per_level + row_idx)
            }
            _ => (
                sa_base + row_idx % share,
                // Distinct row region per co-resident level (subarray shares
                // can overlap when co_resident > S).
                stack_index * rows_per_level + row_idx / share,
            ),
        };
        PhysAddr {
            channel: bank / dram.banks_per_channel % dram.channels,
            bank: bank % dram.banks_per_channel,
            subarray: subarray % dram.subarrays_per_bank,
            row: row % dram.rows_per_subarray,
            col: (entry % entries_per_row) * self.layout.entry_bytes(),
        }
    }

    /// Generates the DRAM request stream of the HT step for a lookup trace.
    ///
    /// The materialized-trace wrapper over [`RequestStream`]: streams the
    /// trace's cubes through the same online state machine, so the two
    /// paths are bit-identical by construction. See [`RequestStream`] for
    /// the datapath semantics.
    pub fn requests_for_trace(
        &self,
        trace: &LookupTrace,
        dram: &DramConfig,
        write_back: bool,
    ) -> Vec<Request> {
        let mut out = Vec::new();
        let mut stream = RequestStream::new(self, dram, write_back);
        for cube in trace.cubes() {
            stream.push_cube(cube, |r| out.push(r));
        }
        stream.end_batch(|r| out.push(r));
        out
    }
}

/// Online DRAM-request generation from the streaming trace bus.
///
/// Mirrors the accelerator datapath: per level, a two-row `r0` register
/// pair retains the most recently streamed rows (a cube straddles at most
/// two rows under the Morton layout), so a request is emitted only when a
/// cube needs a row not already held; the per-level register cache
/// additionally skips cubes identical to the previous point's.
///
/// With `write_back` (the HT_b model), embedding gradients accumulate in
/// the scratchpad during the read sweep and drain as one batched write
/// pass over the touched rows at [`RequestStream::end_batch`]
/// (deduplicated), avoiding per-access read/write turnarounds. `end_batch`
/// also resets the per-batch register state, so one stream serves a whole
/// training run iteration by iteration.
#[derive(Debug, Clone)]
pub struct RequestStream {
    mapping: HashTableMapping,
    dram: DramConfig,
    write_back: bool,
    /// Per-level register-cache state: the previous point's cube id.
    last_cube: Vec<Option<u64>>,
    /// Two-entry LRU of (subarray, row) per level — the r0 register pair.
    r0: Vec<[Option<(u32, u32)>; 2]>,
    /// Rows touched by the read sweep (write-back drain, insertion order).
    touched: Vec<PhysAddr>,
    /// Membership filter over `touched`; the drain order that reaches the
    /// DRAM model always comes from the insertion-ordered `Vec` above.
    // inerf-lint: allow(hash-order) -- deduplication membership only; drain order comes from `touched`
    touched_keys: HashSet<(u32, u32, u32)>,
}

impl RequestStream {
    /// Creates an idle stream for one batch sequence.
    pub fn new(mapping: &HashTableMapping, dram: &DramConfig, write_back: bool) -> Self {
        let levels = mapping.assignment.len();
        RequestStream {
            mapping: mapping.clone(),
            dram: *dram,
            write_back,
            last_cube: vec![None; levels],
            r0: vec![[None; 2]; levels],
            touched: Vec::new(),
            // inerf-lint: allow(hash-order) -- deduplication membership only; drain order comes from `touched`
            touched_keys: HashSet::new(),
        }
    }

    /// Processes one cube, emitting the DRAM read requests it causes.
    pub fn push_cube(&mut self, cube: &CubeLookup, mut emit: impl FnMut(Request)) {
        let li = cube.level as usize;
        if li >= self.last_cube.len() {
            return;
        }
        if self.last_cube[li] == Some(cube.cube_id) {
            return; // register-cache hit: embeddings already loaded
        }
        self.last_cube[li] = Some(cube.cube_id);
        // Distinct rows of the cube, filtered through the r0 pair.
        let layout = self.mapping.layout();
        let mut seen = [u32::MAX; 8];
        let mut n = 0usize;
        for &e in &cube.entries {
            let r = layout.row_of_entry(e);
            if seen[..n].contains(&r) {
                continue;
            }
            seen[n] = r;
            n += 1;
            let addr = self.mapping.map_entry(cube.level, e, &self.dram);
            let key = (addr.subarray, addr.row);
            if self.r0[li].contains(&Some(key)) {
                continue; // already resident in a row register
            }
            self.r0[li][1] = self.r0[li][0];
            self.r0[li][0] = Some(key);
            emit(Request::new(addr, AccessKind::Read));
            if self.write_back
                && self
                    .touched_keys
                    .insert((addr.bank, addr.subarray, addr.row))
            {
                self.touched.push(addr);
            }
        }
    }

    /// Ends the current batch: emits the batched HT_b gradient drain (one
    /// write per touched row, streamed row-major so consecutive writes
    /// round-robin the subarrays and the drain itself is conflict-light)
    /// and resets the per-batch register state for the next iteration.
    pub fn end_batch(&mut self, emit: impl FnMut(Request)) {
        if self.write_back {
            // Batched gradient drain, deduplicated per touched row.
            self.touched
                .sort_unstable_by_key(|a| (a.bank, a.row, a.subarray));
            self.touched
                .drain(..)
                .map(|a| Request::new(a, AccessKind::Write))
                .for_each(emit);
            self.touched_keys.clear();
        }
        self.last_cube.fill(None);
        for r in &mut self.r0 {
            *r = [None; 2];
        }
    }

    /// Approximate heap bytes of the stream's mutable state (constant in
    /// the number of streamed points; the write-back set grows with the
    /// touched *rows*, which the table size bounds).
    pub fn state_bytes(&self) -> usize {
        self.mapping.assignment.capacity() * std::mem::size_of::<u32>()
            + self.last_cube.capacity() * std::mem::size_of::<Option<u64>>()
            + self.r0.capacity() * std::mem::size_of::<[Option<(u32, u32)>; 2]>()
            + self.touched.capacity() * std::mem::size_of::<PhysAddr>()
            + self.touched_keys.capacity() * std::mem::size_of::<(u32, u32, u32)>()
    }
}

/// A destination for streamed DRAM requests.
pub trait RequestConsumer {
    /// Accepts one emitted request.
    fn accept(&mut self, req: Request);
}

impl RequestConsumer for Vec<Request> {
    fn accept(&mut self, req: Request) {
        self.push(req);
    }
}

/// Feeding the cycle-level simulator online — the co-simulation path.
impl RequestConsumer for DramSim {
    fn accept(&mut self, req: Request) {
        self.push_request(&req);
    }
}

/// [`TraceSink`] adapter pairing a [`RequestStream`] with a
/// [`RequestConsumer`]: cube events in, mapped DRAM requests out, with the
/// write-back drain flushed on `end_batch`.
#[derive(Debug, Clone)]
pub struct RequestSink<C> {
    stream: RequestStream,
    consumer: C,
}

impl<C: RequestConsumer> RequestSink<C> {
    /// Builds the adapter.
    pub fn new(stream: RequestStream, consumer: C) -> Self {
        RequestSink { stream, consumer }
    }

    /// The wrapped consumer.
    pub fn consumer(&self) -> &C {
        &self.consumer
    }

    /// Mutable access to the wrapped consumer (e.g. to drain simulator
    /// statistics between iterations).
    pub fn consumer_mut(&mut self) -> &mut C {
        &mut self.consumer
    }

    /// Approximate heap bytes of the request-generation state.
    pub fn state_bytes(&self) -> usize {
        self.stream.state_bytes()
    }
}

impl<C: RequestConsumer> TraceSink for RequestSink<C> {
    fn push_cube(&mut self, cube: &CubeLookup) {
        let consumer = &mut self.consumer;
        self.stream.push_cube(cube, |r| consumer.accept(r));
    }

    fn end_batch(&mut self) {
        let consumer = &mut self.consumer;
        self.stream.end_batch(|r| consumer.accept(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::requests::ENTRIES_PER_ROW;
    use inerf_encoding::{HashFunction, HashGrid, HashGridConfig};
    use inerf_geom::Vec3;

    #[test]
    fn clustered_assignment_matches_paper_groups() {
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        // Levels 0–4 share a bank.
        for l in 1..=4 {
            assert_eq!(m.bank_of_level(l), m.bank_of_level(0));
        }
        // Levels 5–8 share a different bank.
        for l in 6..=8 {
            assert_eq!(m.bank_of_level(l), m.bank_of_level(5));
        }
        assert_ne!(m.bank_of_level(0), m.bank_of_level(5));
        // Levels 9–10 share.
        assert_eq!(m.bank_of_level(9), m.bank_of_level(10));
        // Levels 11..=15 each alone.
        let fine: Vec<u32> = (11..16).map(|l| m.bank_of_level(l)).collect();
        let mut dedup = fine.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            5,
            "fine levels must use distinct banks: {fine:?}"
        );
        // 3 groups + 5 singles = 8 banks.
        assert_eq!(m.banks_used(), 8);
    }

    #[test]
    fn one_level_per_bank_uses_all_banks() {
        let m = HashTableMapping::paper(MappingScheme::OneLevelPerBank, 8);
        assert_eq!(m.banks_used(), 16);
    }

    #[test]
    fn map_entry_spreads_sequential_rows_over_subarrays() {
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        // Entries 0 and 256 are in consecutive rows → different subarrays.
        let a = m.map_entry(12, 0, &dram);
        let b = m.map_entry(12, ENTRIES_PER_ROW, &dram);
        assert_eq!(a.bank, b.bank);
        assert_ne!(
            (a.subarray, a.row),
            (b.subarray, b.row),
            "sequential rows must not collide"
        );
        assert_ne!(a.subarray, b.subarray, "spread must change the subarray");
    }

    #[test]
    fn no_spread_keeps_sequential_rows_in_one_subarray() {
        let m = HashTableMapping::paper(MappingScheme::ClusteredNoSpread, 8);
        let dram = DramConfig::paper(8);
        let a = m.map_entry(12, 0, &dram);
        let b = m.map_entry(12, ENTRIES_PER_ROW, &dram);
        assert_eq!(a.subarray, b.subarray);
        assert_eq!(b.row, a.row + 1);
    }

    #[test]
    fn same_entry_same_address() {
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        assert_eq!(m.map_entry(7, 1234, &dram), m.map_entry(7, 1234, &dram));
    }

    #[test]
    fn co_resident_levels_do_not_alias() {
        // Levels 0 and 1 share a bank; identical entry indices must map to
        // different rows (stacked level regions).
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        let a = m.map_entry(0, 0, &dram);
        let b = m.map_entry(1, 0, &dram);
        assert_eq!(a.bank, b.bank);
        assert_ne!((a.subarray, a.row), (b.subarray, b.row));
    }

    fn ray_trace(grid: &HashGrid, rays: usize, samples: usize) -> LookupTrace {
        let mut t = LookupTrace::new();
        for r in 0..rays {
            let y = 0.05 + 0.9 * r as f32 / rays as f32;
            for s in 0..samples {
                let x = (s as f32 + 0.5) / samples as f32;
                t.push_point(&grid.cube_lookups(Vec3::new(x, y, 0.4)));
            }
        }
        t
    }

    #[test]
    fn request_generation_filters_reuse() {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 3);
        let trace = ray_trace(&grid, 4, 64);
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        let reqs = m.requests_for_trace(&trace, &dram, false);
        // Without any filtering there would be 4*64*16*8 = 32768 accesses;
        // reuse must cut this by a large factor.
        assert!(!reqs.is_empty());
        assert!(
            reqs.len() < 32768 / 4,
            "r0/register filtering too weak: {} requests",
            reqs.len()
        );
        assert!(reqs.iter().all(|r| r.kind == AccessKind::Read));
    }

    #[test]
    fn write_back_appends_batched_drain() {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 3);
        let trace = ray_trace(&grid, 2, 32);
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        let rd = m.requests_for_trace(&trace, &dram, false);
        let rw = m.requests_for_trace(&trace, &dram, true);
        let writes: Vec<_> = rw.iter().filter(|r| r.kind == AccessKind::Write).collect();
        // Reads are identical; writes cover each touched row exactly once.
        assert_eq!(rw.len() - writes.len(), rd.len());
        assert!(!writes.is_empty());
        assert!(writes.len() <= rd.len(), "drain must be deduplicated");
        let mut keys: Vec<_> = writes
            .iter()
            .map(|r| (r.addr.bank, r.addr.subarray, r.addr.row))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), writes.len(), "each row written once");
        // All writes come after all reads (scratchpad-accumulated drain).
        let first_write = rw
            .iter()
            .position(|r| r.kind == AccessKind::Write)
            .expect("write-back sweep must emit at least one write");
        assert!(rw[first_write..]
            .iter()
            .all(|r| r.kind == AccessKind::Write));
    }

    #[test]
    fn streamed_requests_match_materialized_replay_bitwise() {
        // The sink path must produce the exact request sequence of
        // requests_for_trace, batch by batch, including the write drain.
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 9);
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        for write_back in [false, true] {
            let trace = ray_trace(&grid, 3, 48);
            let reference = m.requests_for_trace(&trace, &dram, write_back);
            let mut sink = RequestSink::new(
                RequestStream::new(&m, &dram, write_back),
                Vec::<Request>::new(),
            );
            use inerf_encoding::TraceSink;
            for cube in trace.cubes() {
                sink.push_cube(cube);
            }
            sink.end_batch();
            assert_eq!(&reference, sink.consumer(), "write_back={write_back}");
            // A second identical batch through the same stream must repeat
            // the sequence exactly (end_batch reset the register state).
            for cube in trace.cubes() {
                sink.push_cube(cube);
            }
            sink.end_batch();
            assert_eq!(sink.consumer().len(), 2 * reference.len());
            assert_eq!(&sink.consumer()[reference.len()..], &reference[..]);
        }
    }

    #[test]
    fn f32_entries_widen_rows_and_increase_requests() {
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 3);
        let trace = ray_trace(&grid, 4, 64);
        let dram = DramConfig::paper(8);
        let fp16 = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let f32m = HashTableMapping::paper(MappingScheme::Clustered, 8).with_entry_bytes(8);
        assert_eq!(fp16.layout().entry_bytes(), 4);
        assert_eq!(f32m.layout().entry_bytes(), 8);
        // Same entry, twice the column offset and half the entries per row.
        let a = fp16.map_entry(12, 100, &dram);
        let b = f32m.map_entry(12, 100, &dram);
        assert_eq!(b.col, 2 * a.col);
        // On the same lookup stream, wider entries scatter cubes over more
        // rows, so the request stream grows.
        let r16 = fp16.requests_for_trace(&trace, &dram, false);
        let r32 = f32m.requests_for_trace(&trace, &dram, false);
        assert!(
            r32.len() > r16.len(),
            "f32 rows {} should exceed fp16 rows {}",
            r32.len(),
            r16.len()
        );
    }

    #[test]
    fn morton_needs_fewer_requests_than_original_end_to_end() {
        // The full co-design chain: Morton hashing produces fewer mapped DRAM
        // requests than the original hash on the same point stream.
        let mg = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 3);
        let og = HashGrid::new(HashGridConfig::paper(HashFunction::Original), 3);
        let m = HashTableMapping::paper(MappingScheme::Clustered, 8);
        let dram = DramConfig::paper(8);
        let rm = m.requests_for_trace(&ray_trace(&mg, 8, 64), &dram, false);
        let ro = m.requests_for_trace(&ray_trace(&og, 8, 64), &dram, false);
        assert!(
            (rm.len() as f64) < 0.8 * ro.len() as f64,
            "Morton {} vs original {}",
            rm.len(),
            ro.len()
        );
    }
}
