//! Per-bank compute-time model of the Instant-NeRF microarchitecture.
//!
//! The compute engine (paper Fig. 8) has separate INT32 and FP32 PE groups.
//! INT32 PEs execute the hash-index calculation; FP32 PEs the interpolation
//! and MLP arithmetic. The 2 KB scratchpad cannot hold the MLP weights
//! (~14 KB), so weight tiles stream from the local bank between GEMV tiles —
//! modelled as a per-layer reload overhead.

use crate::config::AccelConfig;
use inerf_trainer::workload::{step_ops_at, Step};
use inerf_trainer::{ModelConfig, Precision};

/// Compute cycles one bank needs to process `points` points of `step`, at
/// the paper's fp16 storage convention.
pub fn bank_compute_cycles(
    accel: &AccelConfig,
    model: &ModelConfig,
    step: Step,
    points: u64,
) -> u64 {
    bank_compute_cycles_at(accel, model, step, points, Precision::Fp16)
}

/// [`bank_compute_cycles`] with weights stored at `precision`.
///
/// PEs are throughput-1: one INT op or one FP MAC (2 FLOPs) per cycle. The
/// INT and FP groups run concurrently, so the step's compute time is the
/// maximum of the two pipelines. The op counts are precision-independent
/// (computation runs in FP32/INT32 either way); only the weight-tile
/// reload traffic scales with the storage width.
pub fn bank_compute_cycles_at(
    accel: &AccelConfig,
    model: &ModelConfig,
    step: Step,
    points: u64,
    precision: Precision,
) -> u64 {
    let ops = step_ops_at(model, step, precision);
    let int_cycles = (ops.int_ops * points).div_ceil(accel.int_pes as u64);
    let fp_cycles = (ops.fp_ops * points).div_ceil(2 * accel.fp_pes as u64);
    let compute = int_cycles.max(fp_cycles);
    compute + weight_reload_cycles(accel, model, step, points, precision)
}

/// Extra cycles spent re-streaming MLP weight tiles that exceed the
/// scratchpad. HT steps keep their working set (hash registers + one cube)
/// on chip and pay nothing.
fn weight_reload_cycles(
    accel: &AccelConfig,
    model: &ModelConfig,
    step: Step,
    points: u64,
    precision: Precision,
) -> u64 {
    let weight_bytes = match step {
        Step::MlpD | Step::MlpDB | Step::MlpC | Step::MlpCB => {
            inerf_trainer::workload::mlp_param_bytes_at(model, precision) / 2
        }
        Step::Ht | Step::HtB => return 0,
    };
    if weight_bytes <= accel.scratchpad_bytes as u64 {
        return 0;
    }
    // Weight-stationary dataflow: each scratchpad-sized weight tile is
    // loaded once per batch and the whole point stream flows through it
    // (activation traffic is accounted in the DRAM model). The load streams
    // at the 128-bit (16 B/cycle) internal width.
    let _ = points;
    weight_bytes.div_ceil(16)
}

/// Seconds for `cycles` accelerator cycles.
pub fn cycles_to_seconds(accel: &AccelConfig, cycles: u64) -> f64 {
    cycles as f64 * accel.cycle_seconds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::HashFunction;
    use inerf_trainer::workload::step_ops;

    fn setup() -> (AccelConfig, ModelConfig) {
        (
            AccelConfig::paper(),
            ModelConfig::paper(HashFunction::Morton),
        )
    }

    #[test]
    fn compute_scales_linearly_with_points() {
        let (a, m) = setup();
        let one = bank_compute_cycles(&a, &m, Step::Ht, 1000);
        let two = bank_compute_cycles(&a, &m, Step::Ht, 2000);
        let ratio = two as f64 / one as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn ht_is_int_bound_mlp_is_fp_bound() {
        let (a, m) = setup();
        // HT with the Morton hash runs many INT ops per point; MLPs none.
        let ht = step_ops(&m, Step::Ht);
        assert!(ht.int_ops * 2 * a.fp_pes as u64 > ht.fp_ops * a.int_pes as u64);
        let mlp = step_ops(&m, Step::MlpD);
        assert_eq!(mlp.int_ops, 0);
    }

    #[test]
    fn mlp_pays_weight_reload() {
        let (a, m) = setup();
        let mlp_ops = step_ops(&m, Step::MlpD);
        let raw = (mlp_ops.fp_ops * 1000).div_ceil(2 * a.fp_pes as u64);
        let with_reload = bank_compute_cycles(&a, &m, Step::MlpD, 1000);
        assert!(
            with_reload > raw,
            "weights (~14 KB) exceed the 2 KB scratchpad"
        );
    }

    #[test]
    fn tiny_mlp_fits_scratchpad() {
        let a = AccelConfig::paper();
        let m = ModelConfig::tiny();
        // Tiny config weights are small enough to fit in 2 KB.
        if inerf_trainer::workload::mlp_param_bytes(&m) / 2 <= a.scratchpad_bytes as u64 {
            let ops = step_ops(&m, Step::MlpD);
            let raw = (ops.fp_ops * 500).div_ceil(2 * a.fp_pes as u64);
            assert_eq!(bank_compute_cycles(&a, &m, Step::MlpD, 500), raw);
        }
    }

    #[test]
    fn seconds_conversion() {
        let a = AccelConfig::paper();
        assert!((cycles_to_seconds(&a, 200_000_000) - 1.0).abs() < 1e-9);
    }
}
