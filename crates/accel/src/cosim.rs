//! Online algorithm/accelerator co-simulation.
//!
//! [`CosimSink`] closes the loop the paper's co-design argues for: it
//! plugs into the trainer's trace-bus slot, so while a training run
//! executes, every iteration's hash-table access stream is mapped to DRAM
//! requests and replayed through the cycle-level NMP memory simulator
//! *online* — no materialized [`inerf_encoding::LookupTrace`], no
//! run-length-proportional buffering. At each `end_batch` (one training
//! iteration) it produces the same [`IterationEstimate`] the offline
//! [`PipelineModel::estimate_iteration`] path computes from a buffered
//! trace, bit-identically, and folds it into running totals.

use crate::pipeline::{IterationEstimate, PipelineModel, SceneEstimate};
use inerf_dram::SimStats;
use inerf_encoding::trace::CubeLookup;
use inerf_encoding::TraceSink;
use serde::{Deserialize, Serialize};

/// Running totals of an online co-simulated training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CosimStats {
    /// Training iterations co-simulated (one per `end_batch`).
    pub iterations: u64,
    /// Total sample points streamed through the memory system.
    pub points: u64,
    /// Summed steady-state pipelined iteration time (seconds of simulated
    /// accelerator time for the whole run).
    pub pipelined_seconds: f64,
    /// Summed serial (unpipelined) iteration time — the ablation total.
    pub serial_seconds: f64,
    /// Summed DRAM energy over the run, picojoules.
    pub dram_energy_pj: f64,
    /// HT-replay row hits over the run (unscaled simulator counts).
    pub ht_row_hits: u64,
    /// HT-replay row misses over the run.
    pub ht_row_misses: u64,
    /// HT-replay bank conflicts over the run.
    pub ht_bank_conflicts: u64,
    /// DRAM requests issued by the HT and HT_b replays together.
    pub dram_requests: u64,
    /// Peak heap bytes of the co-simulation state observed at any
    /// iteration boundary — the constant-memory claim, measured.
    pub peak_state_bytes: usize,
}

impl CosimStats {
    /// Mean pipelined seconds per iteration.
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.pipelined_seconds / self.iterations as f64
        }
    }
}

/// The trainer-facing co-simulation sink: cube events in, per-iteration
/// NMP memory-system estimates out.
///
/// Stream order of operations per iteration: the trainer pushes every
/// sample point's cubes (`push_cube`/`end_point`), then signals
/// `end_batch`; the sink flushes the HT_b write-back drain, drains both
/// incremental simulators, computes the iteration estimate and accumulates
/// it. Bank state and request-generation registers are reset in place —
/// the run's memory footprint stays constant regardless of length.
#[derive(Debug, Clone)]
pub struct CosimSink {
    model: PipelineModel,
    inner: crate::pipeline::IterationSink,
    /// Points the estimate scales each iteration to (the workload's
    /// nominal batch size; streamed points are the trace sample).
    batch_points: u64,
    stats: CosimStats,
    last: Option<IterationEstimate>,
}

impl CosimSink {
    /// Creates a sink co-simulating `model`, scaling each iteration to
    /// `batch_points` sampled points.
    pub fn new(model: PipelineModel, batch_points: u64) -> Self {
        CosimSink {
            inner: model.iteration_sink(),
            model,
            batch_points,
            stats: CosimStats::default(),
            last: None,
        }
    }

    /// The accumulated run totals.
    pub fn stats(&self) -> &CosimStats {
        &self.stats
    }

    /// The most recent iteration's estimate, if any iteration completed.
    pub fn last_estimate(&self) -> Option<&IterationEstimate> {
        self.last.as_ref()
    }

    /// Scales the accumulated mean iteration to a full training run of
    /// `iterations` steps (the Fig. 11 quantity, from live training).
    pub fn scene_estimate(&self, iterations: u64) -> Option<SceneEstimate> {
        self.last.as_ref().map(|est| {
            let mean = IterationEstimate {
                pipelined_seconds: self.stats.seconds_per_iteration(),
                dram_energy_pj: if self.stats.iterations == 0 {
                    0.0
                } else {
                    self.stats.dram_energy_pj / self.stats.iterations as f64
                },
                ..est.clone()
            };
            self.model.scene_estimate(&mean, iterations)
        })
    }

    /// Approximate heap bytes of the co-simulation state right now.
    pub fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }

    fn accumulate(&mut self, ht: &SimStats, htb: &SimStats, points: u64) {
        let est = self
            .model
            .estimate_iteration_from_stats(ht, htb, points, self.batch_points);
        self.stats.iterations += 1;
        self.stats.points += points;
        self.stats.pipelined_seconds += est.pipelined_seconds;
        self.stats.serial_seconds += est.serial_seconds;
        self.stats.dram_energy_pj += est.dram_energy_pj;
        self.stats.ht_row_hits += ht.row_hits;
        self.stats.ht_row_misses += ht.row_misses;
        self.stats.ht_bank_conflicts += ht.bank_conflicts;
        self.stats.dram_requests += ht.requests + htb.requests;
        self.last = Some(est);
    }
}

impl TraceSink for CosimSink {
    fn push_cube(&mut self, cube: &CubeLookup) {
        self.inner.push_cube(cube);
    }

    fn end_point(&mut self) {
        self.inner.end_point();
    }

    fn end_batch(&mut self) {
        let state_bytes = self.inner.state_bytes();
        self.stats.peak_state_bytes = self.stats.peak_state_bytes.max(state_bytes);
        let (ht, htb, points) = self.inner.drain();
        if points == 0 {
            return; // an empty iteration (all rays missed the bounds)
        }
        self.accumulate(&ht, &htb, points);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::{HashFunction, HashGrid, LookupTrace};
    use inerf_geom::Vec3;
    use inerf_trainer::ModelConfig;

    fn ray_points(rays: usize, samples: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for r in 0..rays {
            let y = 0.05 + 0.9 * r as f32 / rays as f32;
            for s in 0..samples {
                let x = (s as f32 + 0.5) / samples as f32;
                pts.push(Vec3::new(x, y, 0.45));
            }
        }
        pts
    }

    #[test]
    fn online_iterations_match_offline_estimates_bitwise() {
        let model_cfg = ModelConfig::paper(HashFunction::Morton);
        let grid = HashGrid::new(model_cfg.grid, 7);
        let pm = PipelineModel::paper(model_cfg);
        let batch = 64 * 1024;
        let mut cosim = CosimSink::new(PipelineModel::paper(model_cfg), batch);
        let mut offline_pipelined = 0.0f64;
        let mut offline_energy = 0.0f64;
        for iter in 0..3 {
            let pts = ray_points(2 + iter, 64);
            let mut trace = LookupTrace::new();
            grid.stream_batch(&pts, &mut (&mut cosim, &mut trace));
            cosim.end_batch();
            let est = pm.estimate_iteration(&trace, pts.len() as u64, batch);
            offline_pipelined += est.pipelined_seconds;
            offline_energy += est.dram_energy_pj;
            assert_eq!(
                cosim.last_estimate().expect("estimate"),
                &est,
                "iteration {iter} diverged"
            );
        }
        let stats = cosim.stats();
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.pipelined_seconds, offline_pipelined);
        assert_eq!(stats.dram_energy_pj, offline_energy);
        assert!(stats.peak_state_bytes > 0);
    }

    #[test]
    fn empty_iteration_is_skipped() {
        let model_cfg = ModelConfig::paper(HashFunction::Morton);
        let mut cosim = CosimSink::new(PipelineModel::paper(model_cfg), 1024);
        cosim.end_batch();
        assert_eq!(cosim.stats().iterations, 0);
        assert!(cosim.last_estimate().is_none());
    }

    #[test]
    fn state_stays_constant_across_iterations() {
        // The constant-memory claim: after a warm-up iteration sizes the
        // buffers, further identical iterations must not grow the state.
        let model_cfg = ModelConfig::paper(HashFunction::Morton);
        let grid = HashGrid::new(model_cfg.grid, 3);
        let mut cosim = CosimSink::new(PipelineModel::paper(model_cfg), 4096);
        let pts = ray_points(4, 64);
        grid.stream_batch(&pts, &mut cosim);
        cosim.end_batch();
        let after_first = cosim.state_bytes();
        for _ in 0..4 {
            grid.stream_batch(&pts, &mut cosim);
            cosim.end_batch();
        }
        assert_eq!(
            cosim.state_bytes(),
            after_first,
            "co-simulation state must not grow with run length"
        );
    }
}
