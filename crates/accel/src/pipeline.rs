//! End-to-end per-iteration and per-scene timing/energy estimation.
//!
//! Combines the DRAM timing simulator (HT/HT_b request replay), the per-bank
//! compute model (PE arrays) and the inter-bank traffic model into the
//! quantities Fig. 11 reports: training time and energy per scene.
//!
//! The heterogeneous design overlaps stages across bank groups (table banks
//! run HT/HT_b while all banks run the data-parallel MLPs on other point
//! blocks, with transfers on the shared I/O), so the steady-state iteration
//! time is the *maximum* of the per-resource occupancies; the serial sum is
//! also reported for the no-pipelining ablation.

use crate::config::AccelConfig;
use crate::mapping::{HashTableMapping, RequestSink, RequestStream};
use crate::microarch::{bank_compute_cycles_at, cycles_to_seconds};
use crate::parallel::{bus_bytes_at, ParallelismPlan};
use inerf_dram::{DramSim, SimStats};
use inerf_encoding::trace::CubeLookup;
use inerf_encoding::{LookupTrace, Precision, TraceSink};
use inerf_trainer::workload::{mlp_combined_sizes_at, Step};
use inerf_trainer::ModelConfig;
use serde::{Deserialize, Serialize};

/// Timing of one pipeline step for a full batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTime {
    /// Which step.
    pub step: Step,
    /// DRAM access seconds (near-bank timing simulation, scaled to batch).
    pub dram_seconds: f64,
    /// PE-array compute seconds.
    pub compute_seconds: f64,
}

impl StepTime {
    /// The step's occupancy: compute and local DRAM access overlap.
    pub fn seconds(&self) -> f64 {
        self.dram_seconds.max(self.compute_seconds)
    }
}

/// A full iteration estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationEstimate {
    /// Per-step timings.
    pub steps: Vec<StepTime>,
    /// Inter-bank transfer seconds on the shared I/O.
    pub bus_seconds: f64,
    /// Steady-state pipelined iteration time.
    pub pipelined_seconds: f64,
    /// Serial (unpipelined) iteration time — the scheduling ablation.
    pub serial_seconds: f64,
    /// DRAM energy per iteration in picojoules.
    pub dram_energy_pj: f64,
    /// Bank-conflict count observed in the HT replay (per batch, scaled).
    pub ht_bank_conflicts: f64,
}

impl IterationEstimate {
    /// Time of a named step.
    pub fn step_seconds(&self, step: Step) -> f64 {
        self.steps
            .iter()
            .find(|s| s.step == step)
            .map_or(0.0, |s| s.seconds())
    }
}

/// The Fig. 11 scene-level results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneEstimate {
    /// Per-scene training time in seconds.
    pub training_seconds: f64,
    /// Per-scene training energy in joules.
    pub training_joules: f64,
}

/// The assembled accelerator model.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    accel: AccelConfig,
    model: ModelConfig,
    mapping: HashTableMapping,
    plan: ParallelismPlan,
    subarrays: u32,
    /// Storage precision of hash-table entries and activations — sets the
    /// entry width of the DRAM row model and the byte volumes of the MLP
    /// streaming model. The paper's datapath is fp16.
    precision: Precision,
}

impl PipelineModel {
    /// The paper's design point: clustered mapping, 32 subarrays (Tab. III
    /// sweeps 1–64; Fig. 9 shows conflicts still dropping up to 32–64),
    /// heterogeneous parallelism, fp16 storage (`F × 2` bytes per entry —
    /// 4 B at the paper's `F = 2`).
    pub fn paper(model: ModelConfig) -> Self {
        let precision = Precision::Fp16;
        PipelineModel {
            accel: AccelConfig::paper(),
            mapping: HashTableMapping::paper(crate::mapping::MappingScheme::Clustered, 32)
                .with_entry_bytes(model.grid.entry_bytes(precision)),
            model,
            plan: ParallelismPlan::paper(),
            subarrays: 32,
            precision,
        }
    }

    /// Replaces the mapping (ablations). The mapping's entry width is
    /// normalized to this model's storage precision, so scheme ablations
    /// and [`PipelineModel::with_precision`] compose in either order.
    pub fn with_mapping(mut self, mapping: HashTableMapping, subarrays: u32) -> Self {
        self.mapping = mapping.with_entry_bytes(self.model.grid.entry_bytes(self.precision));
        self.subarrays = subarrays;
        self
    }

    /// Models the hash table stored at `precision`: the mapping's entry
    /// width becomes `F × bytes_per_param` (8 B for f32 vs the paper's
    /// 4 B fp16 pairs, `F = 2`) and the MLP byte volumes scale with the
    /// activation width — so f32 storage touches more rows, moves more
    /// bytes, and costs more energy on the same lookup stream.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        let entry_bytes = self.model.grid.entry_bytes(precision);
        self.mapping = self.mapping.with_entry_bytes(entry_bytes);
        self
    }

    /// The modeled storage precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Replaces the parallelism plan (ablations).
    pub fn with_plan(mut self, plan: ParallelismPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The accelerator configuration.
    pub fn accel(&self) -> &AccelConfig {
        &self.accel
    }

    /// Builds the streaming sink that feeds one iteration's cube events
    /// into the two incremental DRAM replays the estimate needs (HT read
    /// sweep and HT_b read + write-back). Stream a batch through it, then
    /// call [`PipelineModel::estimate_streamed`] — constant memory in the
    /// number of points, reusable across iterations.
    pub fn iteration_sink(&self) -> IterationSink {
        let dram_cfg = self.accel.nmp_dram(self.subarrays);
        IterationSink {
            ht: RequestSink::new(
                RequestStream::new(&self.mapping, &dram_cfg, false),
                DramSim::new(dram_cfg),
            ),
            htb: RequestSink::new(
                RequestStream::new(&self.mapping, &dram_cfg, true),
                DramSim::new(dram_cfg),
            ),
            points: 0,
        }
    }

    /// Drains `sink`'s accumulated iteration (write-back flush + simulator
    /// statistics) and produces the estimate, leaving the sink ready for
    /// the next iteration. The streamed point count is used as the trace
    /// sample size (an empty stream behaves like a one-point empty trace:
    /// all-zero DRAM occupancy).
    pub fn estimate_streamed(
        &self,
        sink: &mut IterationSink,
        batch_points: u64,
    ) -> IterationEstimate {
        let (ht_stats, htb_stats, points) = sink.drain();
        self.estimate_iteration_from_stats(&ht_stats, &htb_stats, points.max(1), batch_points)
    }

    /// Estimates one training iteration from a sampled lookup trace.
    ///
    /// `trace` covers `trace_points` sample points; results are scaled to
    /// the full `batch_points` batch (DRAM makespans scale linearly in the
    /// request count at fixed locality, which the trace preserves).
    ///
    /// This is the materialized wrapper over the streaming path: the trace
    /// is replayed through [`PipelineModel::iteration_sink`], so buffered
    /// and online estimates are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `trace_points` is zero.
    pub fn estimate_iteration(
        &self,
        trace: &LookupTrace,
        trace_points: u64,
        batch_points: u64,
    ) -> IterationEstimate {
        assert!(trace_points > 0, "need a non-empty trace sample");
        let mut sink = self.iteration_sink();
        for cube in trace.cubes() {
            sink.push_cube(cube);
        }
        let (ht_stats, htb_stats, _) = sink.drain();
        self.estimate_iteration_from_stats(&ht_stats, &htb_stats, trace_points, batch_points)
    }

    /// Assembles the iteration estimate from already-simulated HT/HT_b
    /// DRAM statistics covering `trace_points` sample points — the core
    /// both the buffered and the online co-simulation paths share.
    ///
    /// # Panics
    ///
    /// Panics if `trace_points` is zero.
    pub fn estimate_iteration_from_stats(
        &self,
        ht_stats: &SimStats,
        htb_stats: &SimStats,
        trace_points: u64,
        batch_points: u64,
    ) -> IterationEstimate {
        assert!(trace_points > 0, "need a non-empty trace sample");
        let scale = batch_points as f64 / trace_points as f64;
        let dram_cfg = self.accel.nmp_dram(self.subarrays);
        let banks_used = self.mapping.banks_used().max(1) as u64;

        // --- HT forward: the mapped request stream's replay. ---
        let ht_dram = ht_stats.seconds(dram_cfg.cycle_seconds()) * scale;
        let ht_compute = cycles_to_seconds(
            &self.accel,
            bank_compute_cycles_at(
                &self.accel,
                &self.model,
                Step::Ht,
                batch_points,
                self.precision,
            ) / banks_used,
        );

        // --- HT backward: read-modify-write stream. ---
        let htb_dram = htb_stats.seconds(dram_cfg.cycle_seconds()) * scale;
        let htb_compute = cycles_to_seconds(
            &self.accel,
            bank_compute_cycles_at(
                &self.accel,
                &self.model,
                Step::HtB,
                batch_points,
                self.precision,
            ) / banks_used,
        );

        // --- MLP steps: data-parallel across all banks; activations stream
        // from the local bank at the 16 B/cycle internal width. ---
        let banks = self.accel.banks as u64;
        let per_bank_points = batch_points.div_ceil(banks);
        let internal_bw = 16.0 * dram_cfg.clock_mhz as f64 * 1e6; // bytes/s per bank
        let mlp_sizes = mlp_combined_sizes_at(&self.model, batch_points, self.precision);
        let mlp_local_bytes = (mlp_sizes.input_bytes
            + mlp_sizes.output_bytes
            + 2 * mlp_sizes.intermediate_bytes) as f64
            / banks as f64;
        let mlp_dram = mlp_local_bytes / internal_bw;
        let mut steps = vec![StepTime {
            step: Step::Ht,
            dram_seconds: ht_dram,
            compute_seconds: ht_compute,
        }];
        for step in [Step::MlpD, Step::MlpC, Step::MlpCB, Step::MlpDB] {
            let compute = cycles_to_seconds(
                &self.accel,
                bank_compute_cycles_at(
                    &self.accel,
                    &self.model,
                    step,
                    per_bank_points,
                    self.precision,
                ),
            );
            steps.push(StepTime {
                step,
                dram_seconds: mlp_dram / 4.0, // split across the four MLP phases
                compute_seconds: compute,
            });
        }
        steps.push(StepTime {
            step: Step::HtB,
            dram_seconds: htb_dram,
            compute_seconds: htb_compute,
        });

        let bus_seconds = bus_bytes_at(&self.model, &self.plan, batch_points, banks, self.precision)
            as f64
            / self.accel.interbank_bw_bytes_per_s;

        // Resource occupancies: table banks (HT + HT_b), compute banks (the
        // four MLP phases), shared I/O (all transfers). Stage overlap is
        // only possible when the inter-level clustering leaves banks free
        // for the MLP work — the actual payoff of the clustered mapping;
        // if every bank holds table data, the stages serialize on them.
        let table_occ = steps[0].seconds() + steps[5].seconds();
        let mlp_occ: f64 = steps[1..5].iter().map(|s| s.seconds()).sum();
        let pipelined = if banks_used * 2 <= banks {
            table_occ.max(mlp_occ).max(bus_seconds)
        } else {
            (table_occ + mlp_occ).max(bus_seconds)
        };
        let serial = steps.iter().map(|s| s.seconds()).sum::<f64>() + bus_seconds;

        IterationEstimate {
            dram_energy_pj: (ht_stats.energy_pj + htb_stats.energy_pj) * scale,
            ht_bank_conflicts: ht_stats.bank_conflicts as f64 * scale,
            steps,
            bus_seconds,
            pipelined_seconds: pipelined,
            serial_seconds: serial,
        }
    }

    /// Scales an iteration estimate to a full training run (Fig. 11).
    pub fn scene_estimate(&self, iter: &IterationEstimate, iterations: u64) -> SceneEstimate {
        let seconds = iter.pipelined_seconds * iterations as f64;
        let accel_joules = self.accel.total_power_w() * seconds;
        let dram_joules = iter.dram_energy_pj * 1e-12 * iterations as f64;
        SceneEstimate {
            training_seconds: seconds,
            training_joules: accel_joules + dram_joules,
        }
    }
}

/// The trace-bus sink behind [`PipelineModel::estimate_streamed`]: fans
/// each cube event into the HT read replay and the HT_b read+write-back
/// replay, each driving its own incremental [`DramSim`], and counts the
/// streamed points. Memory is constant in the number of points.
///
/// `end_batch` flushes the HT_b write-back drain and resets the per-batch
/// register state (per the bus protocol), but the simulator statistics
/// keep accumulating until [`PipelineModel::estimate_streamed`] drains
/// them — so a multi-batch stream yields one aggregate estimate. For
/// *per-iteration* estimates over a training run, use
/// [`crate::cosim::CosimSink`], which drains at every batch boundary.
#[derive(Debug, Clone)]
pub struct IterationSink {
    ht: RequestSink<DramSim>,
    htb: RequestSink<DramSim>,
    points: u64,
}

impl IterationSink {
    /// Points streamed since the last drain.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// Approximate heap bytes of the full co-simulation state (request
    /// generation + both simulators).
    pub fn state_bytes(&self) -> usize {
        self.ht.state_bytes()
            + self.htb.state_bytes()
            + self.ht.consumer().state_bytes()
            + self.htb.consumer().state_bytes()
    }

    /// Flushes the write-back drain and returns `(ht, htb, points)` since
    /// the last drain, resetting the sink for the next iteration.
    pub(crate) fn drain(&mut self) -> (SimStats, SimStats, u64) {
        TraceSink::end_batch(&mut self.ht);
        TraceSink::end_batch(&mut self.htb);
        let ht = self.ht.consumer_mut().drain_stats();
        let htb = self.htb.consumer_mut().drain_stats();
        let points = self.points;
        self.points = 0;
        (ht, htb, points)
    }
}

impl TraceSink for IterationSink {
    fn push_cube(&mut self, cube: &CubeLookup) {
        self.ht.push_cube(cube);
        self.htb.push_cube(cube);
    }

    fn end_point(&mut self) {
        self.points += 1;
    }

    fn end_batch(&mut self) {
        // Flush the write-back drain and reset the register state at the
        // batch boundary; idempotent, so the drain in estimate_streamed
        // may follow immediately.
        self.ht.end_batch();
        self.htb.end_batch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingScheme;
    use inerf_encoding::{HashFunction, HashGrid};
    use inerf_geom::Vec3;

    fn ray_trace(grid: &HashGrid, rays: usize, samples: usize) -> (LookupTrace, u64) {
        let mut t = LookupTrace::new();
        for r in 0..rays {
            let y = 0.05 + 0.9 * r as f32 / rays as f32;
            for s in 0..samples {
                let x = (s as f32 + 0.5) / samples as f32;
                t.push_point(&grid.cube_lookups(Vec3::new(x, y, 0.45)));
            }
        }
        ((t, (rays * samples) as u64).0, (rays * samples) as u64)
    }

    fn paper_setup() -> (PipelineModel, LookupTrace, u64) {
        let model = ModelConfig::paper(HashFunction::Morton);
        let grid = HashGrid::new(model.grid, 7);
        // The paper's batch shape: 128 samples per ray (2 K rays × 128 =
        // 256 K points); a 4-ray sample preserves the per-ray locality.
        let (trace, n) = ray_trace(&grid, 4, 128);
        (PipelineModel::paper(model), trace, n)
    }

    #[test]
    fn iteration_estimate_is_positive_and_consistent() {
        let (pm, trace, n) = paper_setup();
        let est = pm.estimate_iteration(&trace, n, 256 * 1024);
        assert!(est.pipelined_seconds > 0.0);
        assert!(est.serial_seconds >= est.pipelined_seconds);
        assert_eq!(est.steps.len(), 6);
        for s in &est.steps {
            assert!(s.seconds() >= 0.0);
            assert!(s.seconds().is_finite());
        }
    }

    #[test]
    fn iteration_time_in_plausible_band() {
        // Paper: XNX needs ~202 ms/iteration; the accelerator's 22–49x
        // speedup implies ~4–10 ms/iteration. Allow a generous band.
        let (pm, trace, n) = paper_setup();
        let est = pm.estimate_iteration(&trace, n, 256 * 1024);
        let ms = est.pipelined_seconds * 1e3;
        assert!(
            (1.0..20.0).contains(&ms),
            "iteration time {ms:.2} ms outside the plausible NMP band"
        );
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let (pm, trace, n) = paper_setup();
        let est = pm.estimate_iteration(&trace, n, 256 * 1024);
        assert!(
            est.pipelined_seconds < 0.8 * est.serial_seconds,
            "pipelining should hide a substantial share: {} vs {}",
            est.pipelined_seconds,
            est.serial_seconds
        );
    }

    #[test]
    fn morton_beats_original_hash_on_the_accelerator() {
        // The algorithm/accelerator co-design claim end to end.
        let model_m = ModelConfig::paper(HashFunction::Morton);
        let model_o = ModelConfig::paper(HashFunction::Original);
        let gm = HashGrid::new(model_m.grid, 7);
        let go = HashGrid::new(model_o.grid, 7);
        let (tm, n) = ray_trace(&gm, 4, 128);
        let (to, _) = ray_trace(&go, 4, 128);
        let em = PipelineModel::paper(model_m).estimate_iteration(&tm, n, 256 * 1024);
        let eo = PipelineModel::paper(model_o).estimate_iteration(&to, n, 256 * 1024);
        let ht_m = em.step_seconds(Step::Ht);
        let ht_o = eo.step_seconds(Step::Ht);
        assert!(ht_m < ht_o, "Morton HT {ht_m} should beat original {ht_o}");
    }

    #[test]
    fn subarray_spreading_reduces_conflicts() {
        let model = ModelConfig::paper(HashFunction::Morton);
        let grid = HashGrid::new(model.grid, 7);
        let (trace, n) = ray_trace(&grid, 4, 128);
        let spread = PipelineModel::paper(model)
            .with_mapping(HashTableMapping::paper(MappingScheme::Clustered, 8), 8);
        let no_spread = PipelineModel::paper(model).with_mapping(
            HashTableMapping::paper(MappingScheme::ClusteredNoSpread, 8),
            8,
        );
        let cs = spread
            .estimate_iteration(&trace, n, 64 * 1024)
            .ht_bank_conflicts;
        let cn = no_spread
            .estimate_iteration(&trace, n, 64 * 1024)
            .ht_bank_conflicts;
        assert!(
            cs <= cn,
            "intra-level spreading should not increase conflicts: {cs} vs {cn}"
        );
    }

    #[test]
    fn fp16_storage_is_the_default_and_f32_costs_more() {
        let (pm, trace, n) = paper_setup();
        assert_eq!(pm.precision(), Precision::Fp16);
        let fp16 = pm.clone().estimate_iteration(&trace, n, 256 * 1024);
        // Asking for fp16 explicitly is a no-op: the paper model already
        // assumes 4-byte entries.
        let explicit = pm
            .clone()
            .with_precision(Precision::Fp16)
            .estimate_iteration(&trace, n, 256 * 1024);
        assert_eq!(explicit, fp16);
        // f32 storage doubles the entry width: more rows touched on the
        // same stream, more bytes streamed, more energy.
        let f32e = pm
            .with_precision(Precision::F32)
            .estimate_iteration(&trace, n, 256 * 1024);
        assert!(
            f32e.dram_energy_pj > fp16.dram_energy_pj,
            "f32 energy {} should exceed fp16 {}",
            f32e.dram_energy_pj,
            fp16.dram_energy_pj
        );
        assert!(f32e.step_seconds(Step::Ht) >= fp16.step_seconds(Step::Ht));
        assert!(
            f32e.bus_seconds > fp16.bus_seconds,
            "f32 doubles the bytes crossing the shared I/O"
        );
        assert!(f32e.serial_seconds > fp16.serial_seconds);
        assert!(f32e.pipelined_seconds >= fp16.pipelined_seconds);
    }

    #[test]
    fn scene_estimate_scales_with_iterations() {
        let (pm, trace, n) = paper_setup();
        let est = pm.estimate_iteration(&trace, n, 256 * 1024);
        let one = pm.scene_estimate(&est, 1000);
        let ten = pm.scene_estimate(&est, 10_000);
        assert!((ten.training_seconds / one.training_seconds - 10.0).abs() < 1e-9);
        assert!(ten.training_joules > one.training_joules);
    }

    #[test]
    fn heterogeneous_plan_minimizes_bus_time() {
        let (pm, trace, n) = paper_setup();
        let paper = pm
            .clone()
            .estimate_iteration(&trace, n, 256 * 1024)
            .bus_seconds;
        let all_data = pm
            .clone()
            .with_plan(ParallelismPlan::all_data())
            .estimate_iteration(&trace, n, 256 * 1024)
            .bus_seconds;
        assert!(paper < all_data, "paper bus {paper} vs all-data {all_data}");
    }
}
