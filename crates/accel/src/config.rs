//! Accelerator configuration (paper Tab. III and Sec. V-C constants).

use inerf_dram::{DramConfig, Timing};
use serde::{Deserialize, Serialize};

/// Instant-NeRF per-bank microarchitecture and system parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Microarchitecture clock in MHz (Tab. III: 200 MHz).
    pub frequency_mhz: u32,
    /// INT32 PEs per bank (index calculation).
    pub int_pes: u32,
    /// FP32 PEs per bank (interpolation, MLPs).
    pub fp_pes: u32,
    /// Scratchpad bytes per bank.
    pub scratchpad_bytes: u32,
    /// Banks equipped with a microarchitecture (one DRAM die = 16 banks).
    pub banks: u32,
    /// Post-layout area per microarchitecture in mm² (Sec. V-C).
    pub area_mm2_per_bank: f64,
    /// Post-layout power per microarchitecture in mW (Sec. V-C).
    pub power_mw_per_bank: f64,
    /// Inter-bank transfer bandwidth in bytes/second (through the shared
    /// 16-bit channel I/O at 2400 MT/s).
    pub interbank_bw_bytes_per_s: f64,
    /// Points processed in parallel in HT/HT_b (Sec. IV-B: 32).
    pub ht_parallel_points: u32,
}

impl AccelConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        AccelConfig {
            frequency_mhz: 200,
            int_pes: 256,
            fp_pes: 256,
            scratchpad_bytes: 2048,
            banks: 16,
            area_mm2_per_bank: 3.6,
            power_mw_per_bank: 596.3,
            // 16-bit channel at 2400 MT/s = 4.8 GB/s.
            interbank_bw_bytes_per_s: 4.8e9,
            ht_parallel_points: 32,
        }
    }

    /// The near-bank DRAM view: one die (one channel of 16 banks), no
    /// shared-bus crossing, column reads served from the open row through
    /// the 128-bit (16 B/cycle) internal prefetch interface (Fig. 5).
    ///
    /// A 32 B cube-gather burst occupies the internal column path for just
    /// 2 cycles — this is the ~10× bandwidth head-room bank-level NMP
    /// unlocks relative to the 16-bit external channel I/O.
    pub fn nmp_dram(&self, subarrays: u32) -> DramConfig {
        let base = DramConfig::paper(subarrays);
        DramConfig {
            channels: 1,
            use_channel_bus: false,
            burst_cycles: 2,
            timing: Timing {
                ccd: 2,
                ..base.timing
            },
            ..base
        }
    }

    /// Total accelerator power in watts (all per-bank microarchitectures).
    pub fn total_power_w(&self) -> f64 {
        self.banks as f64 * self.power_mw_per_bank / 1000.0
    }

    /// Total accelerator area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.banks as f64 * self.area_mm2_per_bank
    }

    /// Seconds per accelerator clock cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.frequency_mhz as f64 * 1e6)
    }

    /// Peak INT32 operations/second across all banks.
    pub fn peak_int_ops(&self) -> f64 {
        self.banks as f64 * self.int_pes as f64 * self.frequency_mhz as f64 * 1e6
    }

    /// Peak FP32 FLOP/s across all banks (one MAC = 2 FLOPs per PE-cycle).
    pub fn peak_fp_flops(&self) -> f64 {
        self.banks as f64 * self.fp_pes as f64 * self.frequency_mhz as f64 * 1e6 * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = AccelConfig::paper();
        assert_eq!(c.frequency_mhz, 200);
        assert_eq!(c.int_pes, 256);
        assert_eq!(c.fp_pes, 256);
        assert_eq!(c.scratchpad_bytes, 2048);
        assert!((c.total_power_w() - 9.5408).abs() < 1e-3);
        assert!((c.total_area_mm2() - 57.6).abs() < 1e-9);
    }

    #[test]
    fn area_is_small_fraction_of_bank() {
        // Sec. V-C: 3.6 mm² is 1.5% of one DRAM bank area → bank ≈ 240 mm².
        let c = AccelConfig::paper();
        let bank_area = c.area_mm2_per_bank / 0.015;
        assert!((bank_area - 240.0).abs() < 1.0);
    }

    #[test]
    fn nmp_dram_shape() {
        let c = AccelConfig::paper();
        let d = c.nmp_dram(8);
        assert_eq!(d.channels, 1);
        assert!(!d.use_channel_bus);
        assert_eq!(d.burst_cycles, 2);
        assert_eq!(d.timing.ccd, 2);
        assert_eq!(d.subarrays_per_bank, 8);
    }

    #[test]
    fn peak_rates() {
        let c = AccelConfig::paper();
        // 16 banks × 256 PEs × 200 MHz = 819.2 G int-ops/s.
        assert!((c.peak_int_ops() - 819.2e9).abs() < 1e6);
        assert!((c.peak_fp_flops() - 1638.4e9).abs() < 1e6);
    }
}
