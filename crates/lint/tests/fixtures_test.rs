//! The linter against its seeded fixture corpus: every rule must fire on
//! exactly the planted violations, honour exactly the planted waivers, and
//! inventory exactly the planted `unsafe` sites.
//!
//! The corpus lives in `tests/fixtures/ws` (a miniature workspace layout);
//! the real workspace walk skips any directory named `fixtures`, so these
//! seeded violations never leak into the self-scan.

use std::path::PathBuf;

use inerf_lint::{lint_workspace, render_unsafe_audit, Report};

// inerf-lint: allow(vendor-isolation) -- test data: a path inside the fixture corpus, not a reach into the real vendored tree
const FAKE_VENDOR_FILE: &str = "vendor/fake/src/lib.rs";

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Report {
    lint_workspace(&fixture_root(name)).expect("fixture corpus must lint without I/O errors")
}

/// `(file, line, rule, waived)` for every finding, in report order.
fn tuples(report: &Report) -> Vec<(String, u32, String, bool)> {
    report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone(), f.waived.is_some()))
        .collect()
}

#[test]
fn corpus_findings_are_exactly_the_seeded_ones() {
    let report = lint_fixture("ws");
    let expect: Vec<(&str, u32, &str, bool)> = vec![
        ("crates/accel/src/lanes.rs", 3, "simd-lane", false),
        ("crates/accel/src/lanes.rs", 6, "simd-lane", false),
        ("crates/accel/src/lanes.rs", 9, "simd-lane", false),
        ("crates/accel/src/lanes.rs", 14, "simd-lane", true),
        ("crates/accel/src/lanes.rs", 21, "simd-lane", false),
        ("crates/core/src/clock.rs", 6, "wall-clock", false),
        ("crates/core/src/clock.rs", 12, "wall-clock", true),
        ("crates/dram/src/order.rs", 3, "hash-order", false),
        ("crates/dram/src/order.rs", 11, "hash-order", true),
        ("crates/dram/src/order.rs", 17, "hash-order", false),
        ("crates/dram/src/order.rs", 21, "hash-order", false),
        ("crates/encoding/src/widths.rs", 16, "entry-width", false),
        ("crates/encoding/src/widths.rs", 21, "entry-width", true),
        ("crates/encoding/src/widths.rs", 25, "entry-width", false),
        ("crates/encoding/src/widths.rs", 29, "entry-width", false),
        ("crates/encoding/src/widths.rs", 37, "panic-path", false),
        ("crates/encoding/src/widths.rs", 42, "panic-path", true),
        ("crates/mlp/src/waivers.rs", 3, "waiver-syntax", false),
        ("crates/mlp/src/waivers.rs", 8, "unused-waiver", false),
        ("crates/mlp/src/waivers.rs", 13, "waiver-syntax", false),
        ("crates/snapshot/src/io.rs", 4, "snapshot-io", false),
        ("crates/snapshot/src/io.rs", 9, "snapshot-io", true),
        ("crates/trainer/src/render.rs", 6, "panic-path", false),
        ("crates/trainer/src/render.rs", 11, "panic-path", true),
        (
            "crates/trainer/src/vendorref.rs",
            4,
            "vendor-isolation",
            false,
        ),
        (
            "crates/trainer/src/vendorref.rs",
            7,
            "vendor-isolation",
            false,
        ),
        (
            "crates/trainer/src/vendorref.rs",
            11,
            "vendor-isolation",
            true,
        ),
        (
            "crates/trainer/src/vendorref.rs",
            14,
            "vendor-isolation",
            false,
        ),
        (FAKE_VENDOR_FILE, 13, "unsafe-audit", false),
    ];
    let got = tuples(&report);
    let want: Vec<(String, u32, String, bool)> = expect
        .into_iter()
        .map(|(f, l, r, w)| (f.to_string(), l, r.to_string(), w))
        .collect();
    assert_eq!(got, want, "fixture findings drifted from the seeded corpus");
    assert_eq!(report.files_scanned, 12);
    assert_eq!(report.unwaived_count(), 21);
}

#[test]
fn waiver_justifications_are_recorded() {
    let report = lint_fixture("ws");
    let justifications: Vec<&str> = report
        .findings
        .iter()
        .filter_map(|f| f.waived.as_deref())
        .collect();
    assert_eq!(
        justifications,
        vec![
            "fixture: feature probe pending port to inerf_simd",
            "fixture: host timestamp for a log line only",
            "fixture: membership probe, order never observed",
            "fixture: literal is a register count, not a width",
            "fixture: caller guarantees Some",
            "fixture: caller validated the length",
            "fixture: the engine pushes one cut per span",
            "fixture: stand-in extension pending README row",
        ]
    );
}

#[test]
fn unsafe_inventory_lists_both_seeded_sites() {
    let report = lint_fixture("ws");
    assert_eq!(report.unsafe_sites.len(), 2);
    let bare = &report.unsafe_sites[0];
    assert_eq!(
        (bare.file.as_str(), bare.line, bare.enclosing_fn.as_str()),
        (FAKE_VENDOR_FILE, 13, "raw_read")
    );
    assert!(bare.safety.is_none());
    let justified = &report.unsafe_sites[1];
    assert_eq!(
        (
            justified.file.as_str(),
            justified.line,
            justified.enclosing_fn.as_str()
        ),
        (FAKE_VENDOR_FILE, 20, "checked_read")
    );
    let text = justified.safety.as_deref().expect("SAFETY text captured");
    assert!(
        text.starts_with("`p` is derived from a live shared reference"),
        "joined SAFETY text: {text}"
    );
    assert!(
        text.contains("valid for reads"),
        "multi-line SAFETY comment must be joined: {text}"
    );

    let audit = render_unsafe_audit(&report);
    assert!(audit.contains(&format!(
        "| `{FAKE_VENDOR_FILE}:13` | `fn raw_read` | **MISSING** |"
    )));
    assert!(audit.contains(&format!("`{FAKE_VENDOR_FILE}:20` | `fn checked_read` |")));
    assert!(audit.contains("2 `unsafe` site(s) in the workspace."));
}

#[test]
fn clean_corpus_is_clean() {
    let report = lint_fixture("clean");
    assert_eq!(report.findings.len(), 0, "{:?}", report.findings);
    assert_eq!(report.unwaived_count(), 0);
    assert_eq!(report.files_scanned, 1);
    assert!(report.unsafe_sites.is_empty());
}

#[test]
fn tricky_lexer_file_yields_no_findings() {
    let report = lint_fixture("ws");
    let geom: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/geom/"))
        .collect();
    assert!(
        geom.is_empty(),
        "strings/comments/raw strings must be inert: {geom:?}"
    );
    let bench: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/bench/"))
        .collect();
    assert!(
        bench.is_empty(),
        "crates/bench is wall-clock-exempt: {bench:?}"
    );
}
