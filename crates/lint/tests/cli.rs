//! End-to-end tests of the `inerf-lint` binary: exit codes, formats,
//! `--explain`, `--list-rules` and the audit staleness check.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_inerf-lint"))
        .args(args)
        .output()
        .expect("inerf-lint binary must run")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no exit code")
}

#[test]
fn clean_tree_exits_zero() {
    let root = fixture_root("clean");
    let out = run(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 unwaived finding(s), 0 waived, 1 file(s) scanned"));
}

#[test]
fn seeded_tree_exits_one_and_lists_findings() {
    let root = fixture_root("ws");
    let out = run(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(code(&out), 1);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("crates/dram/src/order.rs:3: [hash-order]"));
    assert!(text.contains("21 unwaived finding(s), 8 waived, 12 file(s) scanned"));
    // Waived findings are only listed under --verbose.
    assert!(!text.contains("waived: fixture:"));
}

#[test]
fn verbose_lists_waived_findings_with_justifications() {
    let root = fixture_root("ws");
    let out = run(&["--root", root.to_str().expect("utf-8 path"), "--verbose"]);
    assert_eq!(code(&out), 1);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("waived: fixture: membership probe, order never observed"));
}

#[test]
fn json_format_reports_summary_and_waivers() {
    let root = fixture_root("ws");
    let out = run(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--format=json",
    ]);
    assert_eq!(code(&out), 1);
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains(
        "\"summary\": {\"files_scanned\": 12, \"findings\": 29, \"waived\": 8, \
\"unwaived\": 21, \"unsafe_sites\": 2}"
    ));
    assert!(json.contains("\"rule\": \"unsafe-audit\""));
    assert!(json.contains("\"waived\": \"fixture: caller guarantees Some\""));
    // Space-separated --format works too.
    let out2 = run(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    assert_eq!(code(&out2), 1);
    assert_eq!(out.stdout, out2.stdout);
}

#[test]
fn explain_documents_each_rule() {
    for rule in [
        "hash-order",
        "wall-clock",
        "unsafe-audit",
        "entry-width",
        "panic-path",
        "vendor-isolation",
        "waiver-syntax",
        "unused-waiver",
    ] {
        let out = run(&["--explain", rule]);
        assert_eq!(code(&out), 0, "--explain {rule}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(rule), "--explain {rule} must name the rule");
        assert!(
            text.contains(&format!("allow({rule})")),
            "--explain {rule} must show the waiver template"
        );
    }
}

#[test]
fn list_rules_covers_the_catalogue() {
    let out = run(&["--list-rules"]);
    assert_eq!(code(&out), 0);
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in ["hash-order", "wall-clock", "unsafe-audit", "entry-width"] {
        assert!(text.contains(rule), "missing {rule} in --list-rules");
    }
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(code(&run(&["--explain", "no-such-rule"])), 2);
    assert_eq!(code(&run(&["--frobnicate"])), 2);
    assert_eq!(code(&run(&["--root"])), 2);
    let missing = fixture_root("does-not-exist");
    assert_eq!(
        code(&run(&["--root", missing.to_str().expect("utf-8 path")])),
        2
    );
}

#[test]
fn check_unsafe_audit_detects_staleness() {
    // Run against a throwaway copy of the clean corpus so the committed
    // fixture tree stays pristine.
    let src = fixture_root("clean");
    let dir = std::env::temp_dir().join(format!("inerf-lint-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&src, &dir);
    let root = dir.to_str().expect("utf-8 path");

    // No committed audit at all: the check is an I/O error (exit 2).
    assert_eq!(code(&run(&["--check-unsafe-audit", "--root", root])), 2);

    // Freshly written audit passes.
    assert_eq!(code(&run(&["--write-unsafe-audit", "--root", root])), 0);
    assert_eq!(code(&run(&["--check-unsafe-audit", "--root", root])), 0);

    // A drifted audit fails the check.
    let audit = dir.join("UNSAFE_AUDIT.md");
    std::fs::write(&audit, "# Unsafe audit\n\nstale\n").expect("write stale audit");
    assert_eq!(code(&run(&["--check-unsafe-audit", "--root", root])), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

fn copy_tree(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create temp dir");
    for entry in std::fs::read_dir(src).expect("read fixture dir") {
        let entry = entry.expect("fixture dir entry");
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy fixture file");
        }
    }
}
