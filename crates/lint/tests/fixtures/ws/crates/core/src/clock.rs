//! Seeded wall-clock violations (lint fixture).

use std::time::Instant;

pub fn elapsed_ms() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_millis() as u64
}

pub fn stamp_is_waived() -> u64 {
    // inerf-lint: allow(wall-clock) -- fixture: host timestamp for a log line only
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
