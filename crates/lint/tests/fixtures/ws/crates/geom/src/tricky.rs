//! Lexer corner cases that must produce no findings (lint fixture).
//!
//! The linter reads token streams, not raw text: keywords and type names
//! inside strings, comments, raw strings and char literals are inert.

/// Docs may mention `HashMap`, `unsafe` or `Instant::now()`, and may show
/// the waiver syntax — `// inerf-lint: allow(hash-order) -- why` — without
/// creating a waiver.
pub fn strings() -> Vec<String> {
    vec![
        "unsafe { HashMap::new() }".to_string(),
        r#"SystemTime::now() in a raw "string""#.to_string(),
        String::from("Instant::now()"),
    ]
}

/* Block comments are inert too: unsafe HashMap SystemTime
   /* nested block comments close correctly: unsafe */
   still inside the outer comment: Instant::now() */
pub fn lifetimes<'a>(x: &'a [u8]) -> &'a [u8] {
    let _marker: char = 'u';
    let _bytes: &[u8] = b"unsafe bytes";
    let _range = 0..x.len();
    x
}
