//! crates/simd is the one sanctioned home for raw lane code (lint fixture).

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::_mm256_add_ps;

pub fn probe() -> bool {
    is_x86_feature_detected!("avx2")
}
