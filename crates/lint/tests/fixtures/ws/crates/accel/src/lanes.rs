//! Seeded simd-lane violations (lint fixture).

use std::arch::x86_64::__m256;

pub fn splat(x: f32) -> __m256 {
    _mm256_set1_ps(x)
}

#[target_feature(enable = "avx2")]
pub fn avx2_kernel() {}

pub fn host_has_avx2() -> bool {
    // inerf-lint: allow(simd-lane) -- fixture: feature probe pending port to inerf_simd
    is_x86_feature_detected!("avx2")
}

#[cfg(test)]
mod tests {
    #[test]
    fn lane_intrinsics_in_tests_are_flagged_too() {
        let _ = core::arch::x86_64::_mm256_setzero_ps();
    }
}
