//! Seeded waiver-protocol violations (lint fixture).

// inerf-lint: allow(hash-order)
pub fn missing_justification() -> u32 {
    1
}

// inerf-lint: allow(wall-clock) -- fixture: nothing here to waive
pub fn stale_waiver() -> u32 {
    2
}

// TODO inerf-lint: allow(panic-path) -- buried tag is a likely typo
pub fn buried_tag() -> u32 {
    3
}
