//! Fixture: seeded snapshot-io violations.

pub fn first_byte(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}

pub fn commit(v: Option<u8>) -> u8 {
    // inerf-lint: allow(snapshot-io) -- fixture: caller validated the length
    v.expect("validated by the caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(super::first_byte(&[7]).checked_add(1).unwrap(), 8);
    }
}
