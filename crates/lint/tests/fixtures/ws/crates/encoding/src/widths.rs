//! Seeded entry-width and panic-path violations (lint fixture).

pub struct EntryLayout(pub u32);

impl EntryLayout {
    pub fn new(b: u32) -> Self {
        EntryLayout(b)
    }

    pub fn with_entry_bytes(self, b: u32) -> Self {
        EntryLayout(b)
    }
}

pub fn row_bytes(entries: u64) -> u64 {
    entries * 4
}

pub fn padded_bytes(n: u64) -> u64 {
    // inerf-lint: allow(entry-width) -- fixture: literal is a register count, not a width
    8 * n
}

pub fn default_layout() -> EntryLayout {
    EntryLayout::new(16)
}

pub fn half_layout(l: EntryLayout) -> EntryLayout {
    l.with_entry_bytes(2)
}

pub fn corners(points: u64) -> u64 {
    points * 8
}

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn checked(v: Option<u32>) -> u32 {
    // inerf-lint: allow(panic-path) -- fixture: caller guarantees Some
    v.expect("always Some in the fixture")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x = super::first(&[1]);
        let bytes = x as u64 * 4;
        assert_eq!(bytes, Some(4u64).unwrap());
    }
}
