//! crates/bench is exempt from wall-clock (lint fixture): host-cost
//! measurement is this crate's whole job.

pub fn host_micros() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_micros()
}
