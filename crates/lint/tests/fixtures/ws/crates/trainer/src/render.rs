//! Seeded panic-path violations in the trainer's render engine (lint
//! fixture): rule 4 covers this file by name even though the rest of the
//! trainer crate is exempt.

pub fn first_weight(weights: &[f32]) -> f32 {
    *weights.first().unwrap()
}

pub fn cut_of(cuts: Option<u32>) -> u32 {
    // inerf-lint: allow(panic-path) -- fixture: the engine pushes one cut per span
    cuts.expect("one cut per span")
}
