//! Seeded vendor-isolation violations (lint fixture).

use rand::rngs::SmallRng;
use rand::{internal, Rng};
use serde_json::to_string;

#[path = "../../../vendor/rand/src/extra.rs"]
mod extra;

// inerf-lint: allow(vendor-isolation) -- fixture: stand-in extension pending README row
pub use rand::undocumented_helper;

pub fn poke() -> u32 {
    criterion::secret_knob()
}

pub fn fine(rng: &mut SmallRng) -> String {
    let x: u32 = rng.gen();
    let _ = internal::noop;
    to_string(&x).unwrap_or_default()
}

pub fn exempt_elsewhere(v: Option<u32>) -> u32 {
    // The trainer crate is not hot-path scope outside render.rs: no
    // panic-path finding here.
    v.unwrap()
}
