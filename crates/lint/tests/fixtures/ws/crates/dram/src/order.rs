//! Seeded hash-order violations (lint fixture).

use std::collections::HashMap;

/// Doc prose may mention HashMap without tripping the rule.
pub fn names() -> Vec<String> {
    vec!["HashMap".to_string()]
}

// inerf-lint: allow(hash-order) -- fixture: membership probe, order never observed
pub fn probe(m: &HashMap<u32, u32>) -> bool {
    m.contains_key(&1)
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_order_applies_to_tests_too() {
        let mut s = HashSet::new();
        s.insert(1);
        assert!(s.contains(&1));
    }
}
