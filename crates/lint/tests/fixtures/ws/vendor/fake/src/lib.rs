//! Vendored stand-in with seeded unsafe sites (lint fixture).
//!
//! Vendored code is exempt from hash-order (the HashMap below must not be
//! flagged) but NOT from unsafe-audit: every `unsafe` needs `// SAFETY:`.

use std::collections::HashMap;

pub fn vendor_may_hash() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn raw_read(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn checked_read(r: &u32) -> u32 {
    let p = r as *const u32;
    // SAFETY: `p` is derived from a live shared reference, so it is
    // non-null, aligned and valid for reads for the whole call.
    unsafe { *p }
}
