//! A clean fixture workspace: zero findings, exit code 0.

use std::collections::BTreeMap;

pub fn deterministic() -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    m
}
