//! Workspace walking, waiver matching, and report assembly.

use std::fs;
use std::path::{Path, PathBuf};

use crate::context::FileContext;
use crate::rules::{self, FileClass, UNUSED_WAIVER, WAIVER_SYNTAX};
use crate::waiver;

/// One reported finding, after waiver matching.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-oriented description of the hazard.
    pub message: String,
    /// `Some(justification)` when an inline waiver covers this finding.
    pub waived: Option<String>,
}

/// One `unsafe` site in the workspace-wide audit inventory.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    pub file: String,
    pub line: u32,
    pub enclosing_fn: String,
    pub safety: Option<String>,
}

/// The result of linting a workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings (waived ones included — the waiver trail is part of
    /// the report), sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every `unsafe` occurrence, waived or not, sorted by (file, line).
    pub unsafe_sites: Vec<AuditEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver — the ones that fail the build.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Number of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }
}

/// Lints every `.rs` file under `root`, honouring inline waivers.
///
/// Skipped subtrees: `target`, `.git`, and any directory named `fixtures`
/// (the linter's own test corpus is made of seeded violations).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in &files {
        let src =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("{}: {e}", rel.display()))?;
        let rel_str = rel_to_slash(rel);
        lint_source(&rel_str, &src, &mut report);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .unsafe_sites
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Lints one in-memory file, appending to `report`. Exposed for tests.
pub fn lint_source(rel: &str, src: &str, report: &mut Report) {
    let class = FileClass::from_rel(rel);
    let ctx = FileContext::new(src);
    let (raw, sites) = rules::check_file(&class, &ctx);
    let (waivers, malformed) = waiver::parse_waivers(&ctx);

    let mut used = vec![false; waivers.len()];
    for f in raw {
        let matched = waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.rule == f.rule && w.target_line == f.line);
        let waived = matched.map(|(wi, w)| {
            used[wi] = true;
            w.justification.clone()
        });
        report.findings.push(Finding {
            rule: f.rule.to_string(),
            file: rel.to_string(),
            line: f.line,
            message: f.message,
            waived,
        });
    }
    for m in malformed {
        report.findings.push(Finding {
            rule: WAIVER_SYNTAX.to_string(),
            file: rel.to_string(),
            line: m.line,
            message: m.reason,
            waived: None,
        });
    }
    for (wi, w) in waivers.iter().enumerate() {
        if !used[wi] {
            report.findings.push(Finding {
                rule: UNUSED_WAIVER.to_string(),
                file: rel.to_string(),
                line: w.comment_line,
                message: format!(
                    "waiver for `{}` matches no finding on line {}; remove or move it",
                    w.rule, w.target_line
                ),
                waived: None,
            });
        }
    }
    for s in sites {
        report.unsafe_sites.push(AuditEntry {
            file: rel.to_string(),
            line: s.line,
            enclosing_fn: s.enclosing_fn,
            safety: s.safety,
        });
    }
    report.files_scanned += 1;
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_to_slash(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the UNSAFE_AUDIT.md inventory for a report. Byte-deterministic
/// so CI can regenerate and diff.
pub fn render_unsafe_audit(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("# Unsafe audit\n\n");
    out.push_str("<!-- Generated by `cargo run -p inerf_lint -- --write-unsafe-audit`. -->\n");
    out.push_str("<!-- Do not edit by hand; CI regenerates and diffs this file. -->\n\n");
    out.push_str(
        "Workspace policy: every first-party crate is `#![forbid(unsafe_code)]`\n\
(and `#![deny(unsafe_op_in_unsafe_fn)]`), so `unsafe` can appear only in\n\
the vendored dependency stand-ins. Each site must carry a `// SAFETY:`\n\
justification (lint rule `unsafe-audit`); the full inventory is below.\n\n",
    );
    if report.unsafe_sites.is_empty() {
        out.push_str("No `unsafe` sites in the workspace.\n");
        return out;
    }
    out.push_str("| location | enclosing item | SAFETY justification |\n");
    out.push_str("|---|---|---|\n");
    for s in &report.unsafe_sites {
        let item = if s.enclosing_fn.is_empty() {
            "(item level)".to_string()
        } else {
            format!("`fn {}`", s.enclosing_fn)
        };
        let safety = match &s.safety {
            Some(text) => excerpt(text, 160),
            None => "**MISSING**".to_string(),
        };
        out.push_str(&format!(
            "| `{}:{}` | {} | {} |\n",
            s.file, s.line, item, safety
        ));
    }
    out.push_str(&format!(
        "\n{} `unsafe` site(s) in the workspace.\n",
        report.unsafe_sites.len()
    ));
    out
}

/// First `max` characters of `text`, on char boundaries, `...`-terminated
/// when truncated; pipes escaped so the Markdown table stays a table.
fn excerpt(text: &str, max: usize) -> String {
    let clean = text.replace('|', "\\|");
    let mut s: String = clean.chars().take(max).collect();
    if clean.chars().count() > max {
        s.push_str("...");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_matching_rule_only() {
        let src = "\
// inerf-lint: allow(hash-order) -- membership only, order never observed
use std::collections::HashMap;
use std::collections::HashSet;
";
        let mut report = Report::default();
        lint_source("crates/dram/src/x.rs", src, &mut report);
        let unwaived: Vec<_> = report.unwaived().collect();
        assert_eq!(unwaived.len(), 1, "{unwaived:?}");
        assert_eq!(unwaived[0].line, 3);
        let waived: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.waived.is_some())
            .collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(
            waived[0].waived.as_deref(),
            Some("membership only, order never observed")
        );
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "// inerf-lint: allow(hash-order) -- nothing here\nfn f() {}\n";
        let mut report = Report::default();
        lint_source("crates/dram/src/x.rs", src, &mut report);
        assert_eq!(report.unwaived_count(), 1);
        assert_eq!(report.findings[0].rule, UNUSED_WAIVER);
    }

    #[test]
    fn audit_renders_missing_and_present_safety() {
        let mut report = Report::default();
        report.unsafe_sites.push(AuditEntry {
            file: "a.rs".into(),
            line: 3,
            enclosing_fn: "f".into(),
            safety: Some("the scope outlives the borrow".into()),
        });
        report.unsafe_sites.push(AuditEntry {
            file: "b.rs".into(),
            line: 9,
            enclosing_fn: String::new(),
            safety: None,
        });
        let md = render_unsafe_audit(&report);
        assert!(md.contains("`a.rs:3` | `fn f` | the scope outlives the borrow"));
        assert!(md.contains("**MISSING**"));
        assert!(md.contains("2 `unsafe` site(s)"));
    }
}
