//! A minimal Rust lexer for the lint pass.
//!
//! The rules only need a *token-accurate* view of source text — enough to
//! tell an `unsafe` keyword from the string `"unsafe"`, a `HashMap` type
//! from a doc comment mentioning one, and a `4` literal from the `4` in
//! `0x40`. There is no route to crates.io on this box, so pulling in `syn`
//! is not an option; this hand-rolled lexer covers the constructs that
//! actually occur in the workspace: line/doc comments, nested block
//! comments, string/char/byte/raw-string literals, lifetimes, numbers
//! (with separators, radix prefixes, and type suffixes), identifiers, and
//! single-character punctuation.

/// Kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal; the payload is the parsed integer value when the
    /// literal is an integer the rules can reason about (`4`, `4_u32`,
    /// `0x8`...), `None` for floats and oversized values.
    Num(Option<u64>),
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); the token
    /// text is the *content* (delimiters stripped, escapes left as-is).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime such as `'scope`.
    Lifetime,
    /// Single punctuation character.
    Punct(char),
    /// Line or block comment; the token text includes the delimiters.
    Comment,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The integer value of a numeric literal, if known.
    pub fn int_value(&self) -> Option<u64> {
        match self.kind {
            TokKind::Num(v) => v,
            _ => None,
        }
    }
}

/// Lexes `src` into a token stream (comments included).
///
/// The lexer is total: unrecognized bytes become single-character `Punct`
/// tokens, so a pathological file degrades to noise instead of a panic.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' | 'c' if self.raw_or_byte_literal(line) => {}
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    /// A plain (escaped) string body after the opening `"` is consumed by
    /// the caller having seen it; consumes through the closing quote.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
    /// byte chars (`b'…'`) and C strings (`c"…"`). Returns false when the
    /// leading letter is an ordinary identifier start.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c0 = self.peek(0).unwrap_or(' ');
        // Determine the shape by lookahead without consuming.
        let mut i = 1;
        if c0 == 'b' && (self.peek(1) == Some('r') || self.peek(1) == Some('"')) {
            if self.peek(1) == Some('r') {
                i = 2;
            }
        } else if c0 == 'b' && self.peek(1) == Some('\'') {
            // Byte char b'x'.
            self.bump(); // b
            self.char_literal(line);
            return true;
        } else if (c0 == 'r' || c0 == 'c')
            && (self.peek(1) == Some('"') || self.peek(1) == Some('#'))
        {
            i = 1;
        } else {
            return false;
        }
        // Count '#'s after the prefix.
        let mut hashes = 0usize;
        while self.peek(i) == Some('#') {
            hashes += 1;
            i += 1;
        }
        if self.peek(i) != Some('"') {
            return false; // e.g. the identifier `r#raw_ident` or plain `b`.
        }
        let raw = c0 == 'r' || self.peek(1) == Some('r') || c0 == 'c';
        // Consume prefix, hashes and opening quote.
        for _ in 0..=i {
            self.bump();
        }
        let mut text = String::new();
        if raw || hashes > 0 {
            // Raw: ends at '"' followed by `hashes` '#'s; no escapes.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break 'outer;
                    }
                }
                text.push(c);
            }
        } else {
            // b"..." with escapes.
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        text.push(c);
                        if let Some(e) = self.bump() {
                            text.push(e);
                        }
                    }
                    '"' => break,
                    c => text.push(c),
                }
            }
        }
        self.push(TokKind::Str, text, line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` / `'scope` (lifetime) vs `'x'` / `'\n'` (char literal):
        // a lifetime is `'` + ident-start NOT followed by a closing quote.
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = matches!(next, Some(c) if c == '_' || c.is_alphabetic())
            && after != Some('\'')
            && next != Some('\\');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_literal(line);
        }
    }

    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening '
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                c => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // Decimal point, but never consume `..` range syntax.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let value = parse_int(&text);
        self.push(TokKind::Num(value), text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

/// Parses an integer literal's value: separators stripped, `0x`/`0o`/`0b`
/// radix prefixes honoured, type suffixes (`u32`, `usize`, `i64`...)
/// ignored. Returns `None` for floats and anything else unparseable.
fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.contains('.') {
        return None;
    }
    let (radix, digits) = if let Some(rest) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = t.strip_prefix("0o") {
        (8, rest)
    } else if let Some(rest) = t.strip_prefix("0b") {
        (2, rest)
    } else {
        (10, t.as_str())
    };
    // Strip a trailing type suffix: the longest trailing run that is not a
    // valid digit in this radix.
    let digits_end = digits
        .char_indices()
        .take_while(|&(_, c)| c.is_digit(radix))
        .last()
        .map(|(i, c)| i + c.len_utf8())?;
    // Suffix must look like a type (starts with u/i/f and, for decimal,
    // 'e' exponents make it a float -> reject).
    let suffix = &digits[digits_end..];
    if radix == 10 && (suffix.starts_with('e') || suffix.starts_with('E')) {
        return None;
    }
    if suffix.starts_with('f') {
        return None;
    }
    u64::from_str_radix(&digits[..digits_end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("let x = foo();");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokKind::Punct('='), "=".into()));
    }

    #[test]
    fn keyword_in_string_is_not_an_ident() {
        let toks = lex(r#"let s = "unsafe { HashMap }";"#);
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("HashMap")));
    }

    #[test]
    fn keyword_in_comments_is_not_an_ident() {
        let toks = lex("// unsafe unwrap()\n/* HashMap /* nested unsafe */ still */ fn f() {}");
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks.iter().all(|t| !t.is_ident("HashMap")));
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        // The nested block comment is one token and the trailing code lexes.
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[1].text.contains("still"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_keywords() {
        let toks = lex(r##"let s = r#"a "quoted" unsafe Instant::now()"#; f();"##);
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks.iter().all(|t| !t.is_ident("Instant")));
        assert!(toks.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = lex(r#"let a = b"unsafe"; let b = c"HashMap"; let c = br#x#;"#);
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks.iter().all(|t| !t.is_ident("HashMap")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex(r"fn f<'a>(x: &'a u8) { let c = 'u'; let n = '\n'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "u"));
    }

    #[test]
    fn numeric_values_parse_through_suffixes_and_radix() {
        assert_eq!(lex("4")[0].int_value(), Some(4));
        assert_eq!(lex("4_u32")[0].int_value(), Some(4));
        assert_eq!(lex("0x8")[0].int_value(), Some(8));
        assert_eq!(lex("8usize")[0].int_value(), Some(8));
        assert_eq!(lex("1024")[0].int_value(), Some(1024));
        assert_eq!(lex("4.0")[0].int_value(), None);
        assert_eq!(lex("1e6")[0].int_value(), None);
        assert_eq!(lex("4f32")[0].int_value(), None);
    }

    #[test]
    fn range_syntax_is_not_a_float() {
        let toks = lex("0..8");
        assert_eq!(toks[0].int_value(), Some(0));
        assert!(toks[1].is_punct('.'));
        assert!(toks[2].is_punct('.'));
        assert_eq!(toks[3].int_value(), Some(8));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        // `r#raw` must not be mistaken for a raw string opener.
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("r")));
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }
}
