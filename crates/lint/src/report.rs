//! Text and JSON rendering of a lint [`Report`].
//!
//! The JSON emitter is hand-rolled: the linter is dependency-free by
//! design (it must never be able to break the crates it checks), and the
//! schema is flat enough that an escaper plus string pushes is simpler
//! than dragging a serializer into the build graph.

use crate::engine::Report;

/// Renders the human-oriented text report. Waived findings are listed
/// only with `verbose`; the summary always counts them.
pub fn render_text(report: &Report, verbose: bool) -> String {
    let mut out = String::new();
    for f in report.unwaived() {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    let waived = report.findings.len() - report.unwaived_count();
    if verbose {
        for f in report.findings.iter().filter(|f| f.waived.is_some()) {
            out.push_str(&format!(
                "{}:{}: [{}] waived: {}\n",
                f.file,
                f.line,
                f.rule,
                f.waived.as_deref().unwrap_or("")
            ));
        }
    }
    out.push_str(&format!(
        "{} unwaived finding(s), {} waived, {} file(s) scanned\n",
        report.unwaived_count(),
        waived,
        report.files_scanned
    ));
    out
}

/// Renders the machine-oriented JSON report: every finding (waived ones
/// carry their recorded justification) plus a summary object.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        match &f.waived {
            Some(j) => out.push_str(&format!("\"waived\": {}", json_str(j))),
            None => out.push_str("\"waived\": null"),
        }
        out.push('}');
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \"waived\": {}, \
\"unwaived\": {}, \"unsafe_sites\": {}}}\n}}\n",
        report.files_scanned,
        report.findings.len(),
        report.findings.len() - report.unwaived_count(),
        report.unwaived_count(),
        report.unsafe_sites.len()
    ));
    out
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_source;

    #[test]
    fn json_escapes_and_counts() {
        let mut report = Report::default();
        lint_source(
            "crates/dram/src/x.rs",
            "use std::collections::HashMap;\n",
            &mut report,
        );
        let json = render_json(&report);
        assert!(json.contains("\"rule\": \"hash-order\""));
        assert!(json.contains("\"line\": 1"));
        assert!(json.contains("\"unwaived\": 1"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn text_summary_counts_waived() {
        let mut report = Report::default();
        lint_source(
            "crates/dram/src/x.rs",
            "use std::collections::HashMap; // inerf-lint: allow(hash-order) -- lookup only\n",
            &mut report,
        );
        let text = render_text(&report, false);
        assert!(text.contains("0 unwaived finding(s), 1 waived"));
        let verbose = render_text(&report, true);
        assert!(verbose.contains("waived: lookup only"));
    }
}
