//! `inerf_lint` — the offline workspace invariant linter.
//!
//! The headline results of this reproduction rest on invariants the
//! compiler cannot see: bitwise determinism at any thread count,
//! bit-identical streamed-vs-buffered DRAM statistics, and entry
//! byte-widths that flow only through `EntryLayout`/`Precision`. Golden-bit
//! tests catch regressions *after* they land; this crate is the static
//! pass that catches the hazard classes *before* — a hand-rolled,
//! comment/string-aware Rust lexer (no `syn`: the build box has no
//! crates.io route) feeding a rule engine with per-rule inline waivers.
//!
//! Rules (see [`rules::RULES`] or `inerf-lint --explain <rule>`):
//!
//! - `hash-order`: no `std` `HashMap`/`HashSet` (RandomState iteration
//!   order varies per process).
//! - `wall-clock`: no `Instant::now`/`SystemTime` outside `crates/bench`,
//!   `benches/`, `tests/` and `examples/`.
//! - `unsafe-audit`: every `unsafe` carries a `// SAFETY:` comment; the
//!   inventory is generated into `UNSAFE_AUDIT.md`.
//! - `entry-width`: no hardcoded entry-byte literals or `* 4`/`* 8` byte
//!   arithmetic in `encoding`/`accel`/`dram` outside the `EntryLayout`
//!   definition site.
//! - `panic-path`: no `.unwrap()`/`.expect()` in library code of the
//!   hot-path crates (`encoding`, `mlp`, `dram`, `accel`, `render`).
//! - `vendor-isolation`: first-party code touches only the documented
//!   stand-in APIs of the vendored dependency tree.
//!
//! A finding is suppressed by an inline waiver with a mandatory,
//! recorded justification (see [`waiver`]); malformed and stale waivers
//! are themselves findings (`waiver-syntax`, `unused-waiver`).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod context;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;

pub use engine::{lint_workspace, render_unsafe_audit, AuditEntry, Finding, Report};
pub use report::{render_json, render_text};
pub use rules::{rule_info, RuleInfo, RULES};

use std::path::Path;

/// File name of the committed unsafe inventory at the workspace root.
pub const UNSAFE_AUDIT_FILE: &str = "UNSAFE_AUDIT.md";

/// Lints `root` and renders the audit inventory in one call — the
/// convenience entry point the workspace-scan test and CI check share.
pub fn lint_and_audit(root: &Path) -> Result<(Report, String), String> {
    let report = lint_workspace(root)?;
    let audit = render_unsafe_audit(&report);
    Ok((report, audit))
}
