//! The rule set.
//!
//! Every rule is a pure function over one file's [`FileContext`] plus its
//! workspace classification ([`FileClass`]); rules never do I/O. Each is
//! grounded in an invariant this repository's results rest on — see
//! `--explain <rule>` (or DESIGN.md, "Static analysis") for the full
//! story of each.

use crate::context::FileContext;
use crate::lexer::TokKind;

/// Where a file sits in the workspace — computed from its relative path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Under the vendored stand-in tree.
    pub vendor: bool,
    /// `Some("encoding")` for `crates/encoding/...`.
    pub crate_name: Option<String>,
    /// Under a `tests/` or `benches/` directory (integration tests and
    /// benchmark harnesses), or under `examples/`.
    pub test_path: bool,
}

impl FileClass {
    /// Classifies a `/`-separated workspace-relative path.
    pub fn from_rel(rel: &str) -> Self {
        let parts: Vec<&str> = rel.split('/').collect();
        let vendor = parts.first() == Some(&"vendor");
        let crate_name = if parts.first() == Some(&"crates") {
            parts.get(1).map(|s| s.to_string())
        } else {
            None
        };
        let test_path = parts
            .iter()
            .any(|&p| p == "tests" || p == "benches" || p == "examples");
        FileClass {
            rel: rel.to_string(),
            vendor,
            crate_name,
            test_path,
        }
    }

    fn crate_is(&self, names: &[&str]) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| names.contains(&c))
    }
}

/// One rule violation, before waiver matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// One `unsafe` occurrence, for the generated audit inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    /// Innermost enclosing function, or "" at item level.
    pub enclosing_fn: String,
    /// The `SAFETY:` justification found above the site, if any.
    pub safety: Option<String>,
}

/// Static description of one rule, for `--explain` and the docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

pub const HASH_ORDER: &str = "hash-order";
pub const WALL_CLOCK: &str = "wall-clock";
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
pub const ENTRY_WIDTH: &str = "entry-width";
pub const PANIC_PATH: &str = "panic-path";
pub const SNAPSHOT_IO: &str = "snapshot-io";
pub const VENDOR_ISOLATION: &str = "vendor-isolation";
pub const SIMD_LANE: &str = "simd-lane";
pub const WAIVER_SYNTAX: &str = "waiver-syntax";
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Every rule the linter knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: HASH_ORDER,
        summary: "no std HashMap/HashSet: RandomState iteration order varies per process",
        explain: "Bitwise determinism at any thread count (PR 2) and bit-identical \
streamed-vs-buffered DRAM statistics (PR 3) are pinned by golden-bit tests. Iterating a \
std::collections::HashMap or HashSet visits entries in RandomState order, which differs \
per process, so any statistic or trace folded out of such an iteration silently varies \
between runs. The rule flags every HashMap/HashSet mention (tests included: a \
flaky golden-bit test is as bad as a flaky result). Use BTreeMap/BTreeSet, or waive \
sites that only insert and look up and never observe order.",
    },
    RuleInfo {
        id: WALL_CLOCK,
        summary: "no Instant::now/SystemTime outside crates/bench, benches and tests",
        explain: "Simulated time is the product here: DRAM cycle counts and energy come \
from the bank-timeline model, never from the host clock. A wall-clock read in library \
code is either dead weight or — worse — a nondeterministic input to something the \
golden-bit tests pin. Wall-clock timing belongs in crates/bench, benches/, tests/ and \
examples/, which measure the *host* cost of running the models. Waive measurement-only \
sites elsewhere (e.g. an experiment reporting its own runtime).",
    },
    RuleInfo {
        id: UNSAFE_AUDIT,
        summary: "every `unsafe` needs a `// SAFETY:` justification and is inventoried",
        explain: "All first-party crates are #![forbid(unsafe_code)]; the only unsafe in \
the tree lives in the vendored stand-ins (one lifetime-erasure transmute in the rayon \
stand-in's scoped pool). Each unsafe block/fn/impl must carry a `// SAFETY:` comment in \
the lines directly above it. The full inventory is generated into UNSAFE_AUDIT.md \
(`inerf-lint --write-unsafe-audit`), and CI fails if the committed inventory is stale, \
so a new unsafe block cannot land unaudited.",
    },
    RuleInfo {
        id: ENTRY_WIDTH,
        summary: "entry byte-widths flow through EntryLayout/Precision, not literals",
        explain: "PR 4 threaded the table-entry byte width end-to-end: EntryLayout \
parameterizes row geometry and the workload::*_at functions parameterize sizes by \
Precision. A hardcoded `* 4`/`* 8` in byte arithmetic, or a literal entry width passed \
to EntryLayout::new/with_entry_bytes, re-freezes the width at one precision and \
silently unravels that threading (f32 tables would be modeled at fp16 widths). The \
rule covers non-test code of the encoding, accel and dram crates; byte-size \
multiplications by a literal 4 or 8 are flagged when the line or enclosing function \
deals in bytes. The EntryLayout definition site (crates/encoding/src/requests.rs) is \
the one allowed home for such literals.",
    },
    RuleInfo {
        id: PANIC_PATH,
        summary: "no unwrap()/expect() in library code of the hot-path crates",
        explain: "The encoding, mlp, dram, accel and render crates sit on the training \
hot path, and the trainer's inference render engine (crates/trainer/src/render.rs) on \
the evaluation hot path; a panic there takes down a whole training, rendering or \
co-simulation run. Library code in that scope must not call .unwrap() or .expect(): \
return a Result, restructure so the invariant is type-enforced, or waive a genuinely \
infallible site with a justification stating *why* it cannot fail. Test code is \
exempt — panics are how tests report.",
    },
    RuleInfo {
        id: SNAPSHOT_IO,
        summary: "no unwrap()/expect() in the snapshot crate's library code",
        explain: "The snapshot crate's whole contract is that corrupt bytes, torn \
writes and failed I/O surface as typed SnapshotError values — the fault-injection \
sweep pins 'never panics' at every kill point and for every flipped bit. A single \
.unwrap() or .expect() in library code is a latent violation of that contract waiting \
for the input the tests didn't generate. Propagate with `?` instead; test code is \
exempt. (Same mechanics as panic-path, but scoped to crates/snapshot and \
non-waivable in spirit: there is no infallible I/O.)",
    },
    RuleInfo {
        id: VENDOR_ISOLATION,
        summary: "first-party code uses only the documented stand-in APIs",
        explain: "The vendored dependency stand-ins promise only the API subset listed \
in their README's table; the swap-back to real crates.io releases relies on nothing \
else being touched. The rule flags first-party paths into any vendored crate whose \
first segment is outside that documented surface, and any literal path that reaches \
into the vendored tree (#[path], include!). If a new API is genuinely needed, extend \
the stand-in, document it in the README table, and add it to the allowlist in the same \
change.",
    },
    RuleInfo {
        id: SIMD_LANE,
        summary: "no raw std::arch/intrinsics outside crates/simd",
        explain: "Every SIMD backend must produce bitwise-identical results, and that \
guarantee is enforced at exactly one choke point: crates/simd, whose f32x8 lane tests \
pin each backend against the portable reference and whose madd documents the \
two-rounding (non-FMA) contract. A raw std::arch/core::arch path, a `_mm*` intrinsic, \
a #[target_feature] attribute, or an is_x86_feature_detected! probe anywhere else \
creates lane code with no such pin — its results can drift between machines without \
any test noticing. Write kernels against inerf_simd::f32x8 and vectorize(); if an \
operation is missing, add it to crates/simd together with its lane tests.",
    },
    RuleInfo {
        id: WAIVER_SYNTAX,
        summary: "waiver comments must parse and carry a justification",
        explain: "A waiver is `// inerf-lint: allow(<rule>) -- <justification>` trailing \
the offending line or on its own line directly above it. The justification after `--` \
is mandatory and is recorded in the report: an allow without a reason is \
indistinguishable from a silenced regression. This finding fires on waiver-shaped \
comments that fail to parse; it cannot itself be waived.",
    },
    RuleInfo {
        id: UNUSED_WAIVER,
        summary: "waivers that match no finding must be removed",
        explain: "A waiver that no longer suppresses anything is stale: either the \
hazard was fixed (delete the waiver) or the code moved and the waiver silently stopped \
covering it (move the waiver). Stale allows are how invariants rot, so unused waivers \
are findings; this rule cannot itself be waived.",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Crates whose library code is the training/co-simulation hot path.
const HOT_PATH_CRATES: &[&str] = &["encoding", "mlp", "dram", "accel", "render"];
/// Individual hot-path files in crates that are otherwise exempt: the
/// trainer's inference render engine sits on the evaluation hot path even
/// though the rest of the trainer crate (setup, checkpointing, reporting)
/// does not.
const HOT_PATH_FILES: &[&str] = &["crates/trainer/src/render.rs"];
/// Crates the entry-width rule covers (where byte widths become addresses
/// and traffic).
const WIDTH_CRATES: &[&str] = &["encoding", "accel", "dram"];
/// The one file allowed to own entry-byte literals: the EntryLayout /
/// ENTRY_BYTES definition site.
const WIDTH_DEFINITION_FILE: &str = "crates/encoding/src/requests.rs";
/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_LOOKBACK: u32 = 8;

/// Documented API surface of each vendored stand-in (first path segment
/// after the crate name) — the table in the vendored README, as code.
const VENDOR_API: &[(&str, &[&str])] = &[
    ("serde", &["Serialize", "Deserialize"]),
    (
        "serde_json",
        &["to_string", "to_string_pretty", "Value", "Error", "Result"],
    ),
    ("rand", &["Rng", "SeedableRng", "rngs", "seq", "prelude"]),
    ("proptest", &["prelude", "collection", "proptest"]),
    (
        "criterion",
        &[
            "criterion_group",
            "criterion_main",
            "Criterion",
            "Bencher",
            "black_box",
        ],
    ),
    ("rayon", &["ThreadPool", "ThreadPoolBuilder", "Scope"]),
];

/// Runs every rule over one file. Returns the findings plus the file's
/// `unsafe` inventory (for UNSAFE_AUDIT.md).
pub fn check_file(class: &FileClass, ctx: &FileContext) -> (Vec<RawFinding>, Vec<UnsafeSite>) {
    let mut out = Vec::new();
    let mut sites = Vec::new();
    hash_order(class, ctx, &mut out);
    wall_clock(class, ctx, &mut out);
    unsafe_audit(class, ctx, &mut out, &mut sites);
    entry_width(class, ctx, &mut out);
    panic_path(class, ctx, &mut out);
    snapshot_io(class, ctx, &mut out);
    vendor_isolation(class, ctx, &mut out);
    simd_lane(class, ctx, &mut out);
    // One finding per (rule, line): `HashMap::<K,V>::new()` should read as
    // one hazard, not two.
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    (out, sites)
}

/// Rule 1a: hash-order.
fn hash_order(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    if class.vendor {
        return;
    }
    for t in &ctx.code {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(RawFinding {
                rule: HASH_ORDER,
                line: t.line,
                message: format!(
                    "`{}` has per-process iteration order (RandomState); \
use BTreeMap/BTreeSet, or waive if order is never observed",
                    t.text
                ),
            });
        }
    }
}

/// Rule 1b: wall-clock.
fn wall_clock(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    if class.vendor || class.test_path || class.crate_is(&["bench"]) {
        return;
    }
    for (i, t) in ctx.code.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" => {
                ctx.code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && ctx.code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && ctx.code.get(i + 3).is_some_and(|a| a.is_ident("now"))
            }
            "SystemTime" => true,
            _ => false,
        };
        if flagged {
            out.push(RawFinding {
                rule: WALL_CLOCK,
                line: t.line,
                message: format!(
                    "`{}` reads the host clock; simulated stats must not depend on it \
(wall-clock timing belongs in crates/bench, benches/ or tests/)",
                    t.text
                ),
            });
        }
    }
}

/// Rule 2: unsafe-audit. Scans *everything*, vendored code included.
fn unsafe_audit(
    _class: &FileClass,
    ctx: &FileContext,
    out: &mut Vec<RawFinding>,
    sites: &mut Vec<UnsafeSite>,
) {
    for (i, t) in ctx.code.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let safety = safety_comment_above(ctx, t.line);
        if safety.is_none() {
            out.push(RawFinding {
                rule: UNSAFE_AUDIT,
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` justification in the lines above"
                    .to_string(),
            });
        }
        sites.push(UnsafeSite {
            line: t.line,
            enclosing_fn: ctx.enclosing_fn(i).to_string(),
            safety,
        });
    }
}

/// The `SAFETY:` comment block ending within [`SAFETY_LOOKBACK`] lines
/// above `line`, joined into one string.
fn safety_comment_above(ctx: &FileContext, line: u32) -> Option<String> {
    let lo = line.saturating_sub(SAFETY_LOOKBACK);
    let mut start = None;
    for (ci, c) in ctx.comments.iter().enumerate() {
        if c.line >= lo && c.line <= line && c.text.contains("SAFETY:") {
            start = Some(ci);
            break;
        }
    }
    let start = start?;
    // Collect the contiguous comment block from the SAFETY line down.
    let mut text = Vec::new();
    let mut prev_line = None;
    for c in &ctx.comments[start..] {
        if c.line > line {
            break;
        }
        if let Some(p) = prev_line {
            if c.line > p + 1 {
                break;
            }
        }
        prev_line = Some(c.line);
        text.push(
            c.text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim()
                .to_string(),
        );
    }
    let joined = text.join(" ");
    let after = joined.find("SAFETY:").map(|i| i + "SAFETY:".len())?;
    Some(joined[after..].trim().to_string())
}

/// Rule 3: entry-width.
fn entry_width(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    if class.vendor
        || class.test_path
        || !class.crate_is(WIDTH_CRATES)
        || class.rel == WIDTH_DEFINITION_FILE
    {
        return;
    }
    let is_width_lit = |i: usize| {
        ctx.code
            .get(i)
            .and_then(|t| t.int_value())
            .is_some_and(|v| v == 4 || v == 8)
    };
    let byte_context = |i: usize, line: u32| {
        ctx.enclosing_fn(i).to_ascii_lowercase().contains("byte")
            || ctx.line_text(line).to_ascii_lowercase().contains("byte")
    };
    for (i, t) in ctx.code.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        // `* 4`, `* 8`, `4 *`, `8 *` in byte-flavoured context.
        if t.is_punct('*') {
            for j in [i + 1, i.wrapping_sub(1)] {
                if j < ctx.code.len() && is_width_lit(j) && byte_context(j, ctx.code[j].line) {
                    out.push(RawFinding {
                        rule: ENTRY_WIDTH,
                        line: ctx.code[j].line,
                        message: format!(
                            "byte-size arithmetic with a literal `{}`; widths must flow \
through EntryLayout / Precision::bytes_per_param",
                            ctx.code[j].text
                        ),
                    });
                }
            }
        }
        // `EntryLayout::new(<literal>)` / `.with_entry_bytes(<literal>)`.
        let hardcoded = (t.is_ident("EntryLayout")
            && ctx.code.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && ctx.code.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && ctx.code.get(i + 3).is_some_and(|a| a.is_ident("new"))
            && ctx.code.get(i + 4).is_some_and(|a| a.is_punct('('))
            && ctx
                .code
                .get(i + 5)
                .is_some_and(|a| matches!(a.kind, TokKind::Num(_))))
            || (t.is_ident("with_entry_bytes")
                && ctx.code.get(i + 1).is_some_and(|a| a.is_punct('('))
                && ctx
                    .code
                    .get(i + 2)
                    .is_some_and(|a| matches!(a.kind, TokKind::Num(_))));
        if hardcoded {
            out.push(RawFinding {
                rule: ENTRY_WIDTH,
                line: t.line,
                message: "hardcoded entry width; derive it from the model's Precision \
(e.g. grid.entry_bytes(precision))"
                    .to_string(),
            });
        }
    }
}

/// Rule 4: panic-path.
fn panic_path(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    let hot = class.crate_is(HOT_PATH_CRATES) || HOT_PATH_FILES.contains(&class.rel.as_str());
    if class.vendor || class.test_path || !hot {
        return;
    }
    for (i, t) in ctx.code.iter().enumerate() {
        if !(t.is_ident("unwrap") || t.is_ident("expect")) || ctx.is_test_line(t.line) {
            continue;
        }
        let is_method_call = i > 0
            && ctx.code[i - 1].is_punct('.')
            && ctx.code.get(i + 1).is_some_and(|a| a.is_punct('('));
        if is_method_call {
            out.push(RawFinding {
                rule: PANIC_PATH,
                line: t.line,
                message: format!(
                    "`.{}()` can panic on the hot path; return a Result or waive with \
the reason it is infallible",
                    t.text
                ),
            });
        }
    }
}

/// Rule 4b: snapshot-io — the crash-safety analogue of panic-path.
fn snapshot_io(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    if class.vendor || class.test_path || !class.crate_is(&["snapshot"]) {
        return;
    }
    for (i, t) in ctx.code.iter().enumerate() {
        if !(t.is_ident("unwrap") || t.is_ident("expect")) || ctx.is_test_line(t.line) {
            continue;
        }
        let is_method_call = i > 0
            && ctx.code[i - 1].is_punct('.')
            && ctx.code.get(i + 1).is_some_and(|a| a.is_punct('('));
        if is_method_call {
            out.push(RawFinding {
                rule: SNAPSHOT_IO,
                line: t.line,
                message: format!(
                    "`.{}()` in the snapshot crate defeats the never-panic recovery \
contract; propagate a SnapshotError with `?`",
                    t.text
                ),
            });
        }
    }
}

/// Rule 5: vendor-isolation.
fn vendor_isolation(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    if class.vendor {
        return;
    }
    let needle = format!("{}{}", "vendor", '/');
    for t in &ctx.code {
        if t.kind == TokKind::Str && t.text.contains(&needle) {
            out.push(RawFinding {
                rule: VENDOR_ISOLATION,
                line: t.line,
                message: "literal path into the vendored tree; depend on the crate's \
documented API instead"
                    .to_string(),
            });
        }
    }
    for (i, t) in ctx.code.iter().enumerate() {
        let Some((_, allowed)) = VENDOR_API
            .iter()
            .find(|(name, _)| t.is_ident(name))
            .copied()
        else {
            continue;
        };
        if !(ctx.code.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && ctx.code.get(i + 2).is_some_and(|a| a.is_punct(':')))
        {
            continue;
        }
        for (seg_line, seg) in first_path_segments(ctx, i + 3) {
            if !allowed.contains(&seg.as_str()) {
                out.push(RawFinding {
                    rule: VENDOR_ISOLATION,
                    line: seg_line,
                    message: format!(
                        "`{}::{}` is not part of the documented stand-in API \
(see the vendored README table); extend the stand-in and its docs instead",
                        t.text, seg
                    ),
                });
            }
        }
    }
}

/// Rule 6: simd-lane. Applies everywhere outside the vendored tree and
/// crates/simd itself, tests included — unpinned lane code in a test can
/// green-light results that diverge across machines.
fn simd_lane(class: &FileClass, ctx: &FileContext, out: &mut Vec<RawFinding>) {
    if class.vendor || class.crate_is(&["simd"]) {
        return;
    }
    for (i, t) in ctx.code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = if t.text == "std" || t.text == "core" {
            ctx.code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && ctx.code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && ctx.code.get(i + 3).is_some_and(|a| a.is_ident("arch"))
        } else {
            t.text.starts_with("_mm")
                || t.text == "target_feature"
                || t.text == "is_x86_feature_detected"
        };
        if flagged {
            out.push(RawFinding {
                rule: SIMD_LANE,
                line: t.line,
                message: format!(
                    "`{}` is raw lane/feature code outside crates/simd; go through \
inerf_simd::f32x8 + vectorize() so the backend stays bitwise-pinned",
                    t.text
                ),
            });
        }
    }
}

/// First path segments following `crate::` at code index `i`: either the
/// single ident there, or — for a `{...}` group — every ident that opens
/// a group entry (`rand::{rngs::SmallRng, Rng}` yields `rngs` and `Rng`).
fn first_path_segments(ctx: &FileContext, i: usize) -> Vec<(u32, String)> {
    let mut segs = Vec::new();
    match ctx.code.get(i) {
        Some(t) if t.kind == TokKind::Ident => segs.push((t.line, t.text.clone())),
        Some(t) if t.is_punct('{') => {
            let mut depth = 1usize;
            let mut expect_segment = true;
            let mut j = i + 1;
            while let Some(t) = ctx.code.get(j) {
                match &t.kind {
                    TokKind::Punct('{') => {
                        depth += 1;
                        expect_segment = false;
                    }
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Punct(',') if depth == 1 => expect_segment = true,
                    TokKind::Ident if depth == 1 && expect_segment => {
                        if t.text != "self" {
                            segs.push((t.line, t.text.clone()));
                        }
                        expect_segment = false;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        _ => {}
    }
    segs
}
