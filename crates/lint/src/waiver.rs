//! Inline waiver comments.
//!
//! A finding is suppressed — but still recorded, with its justification —
//! by a comment of the form
//!
//! ```text
//! // inerf-lint: allow(rule-name) -- why this site is sound
//! ```
//!
//! either trailing on the offending line or on its own line directly
//! above it (several stacked waiver lines may precede one code line; each
//! applies to that line). The justification after `--` is mandatory: a
//! waiver without one is itself reported (`waiver-syntax`), as is a
//! waiver that matches no finding (`unused-waiver`) — stale allows are
//! how invariants rot silently.

use crate::context::FileContext;

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver targets.
    pub rule: String,
    /// Mandatory justification text (after `--`).
    pub justification: String,
    /// Line of the waiver comment itself.
    pub comment_line: u32,
    /// Line whose findings this waiver covers.
    pub target_line: u32,
}

/// A waiver-shaped comment that failed to parse.
#[derive(Debug, Clone)]
pub struct MalformedWaiver {
    pub line: u32,
    pub reason: String,
}

/// Marker every waiver comment must contain.
pub const WAIVER_TAG: &str = "inerf-lint:";

/// Extracts all waivers (and malformed waiver attempts) from a file.
///
/// Only plain line comments count: doc comments (`///`, `//!`) are prose
/// and may legitimately *mention* the waiver syntax (this module does),
/// so they are never interpreted as waivers.
pub fn parse_waivers(ctx: &FileContext) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for c in &ctx.comments {
        let Some(body) = c.text.strip_prefix("//") else {
            continue; // block comment
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment
        }
        let body = body.trim_start();
        if !body.starts_with(WAIVER_TAG) {
            if body.contains(WAIVER_TAG) {
                // A waiver tag buried mid-comment is a likely typo, not prose.
                malformed.push(MalformedWaiver {
                    line: c.line,
                    reason: format!("`{WAIVER_TAG}` must start the comment"),
                });
            }
            continue;
        }
        let directive = body[WAIVER_TAG.len()..].trim();
        match parse_directive(directive) {
            Ok((rule, justification)) => {
                let target_line = target_line_for(ctx, c.line);
                waivers.push(Waiver {
                    rule,
                    justification,
                    comment_line: c.line,
                    target_line,
                });
            }
            Err(reason) => malformed.push(MalformedWaiver {
                line: c.line,
                reason,
            }),
        }
    }
    (waivers, malformed)
}

/// Parses `allow(<rule>) -- <justification>`.
fn parse_directive(s: &str) -> Result<(String, String), String> {
    let Some(rest) = s.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<rule>) -- <justification>`, got `{s}`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("`{rule}` is not a rule name"));
    }
    let after = rest[close + 1..].trim();
    let Some(justification) = after.strip_prefix("--") else {
        return Err("missing ` -- <justification>` (justification is mandatory)".to_string());
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err("empty justification (justification is mandatory)".to_string());
    }
    Ok((rule.to_string(), justification.to_string()))
}

/// The code line a waiver on `comment_line` covers: the comment's own line
/// when it carries code (trailing waiver), otherwise the next line that
/// does (skipping blank lines and further comment-only lines, so stacked
/// waivers all land on the same target).
fn target_line_for(ctx: &FileContext, comment_line: u32) -> u32 {
    if ctx.line_has_code(comment_line) {
        return comment_line;
    }
    let mut l = comment_line + 1;
    let last = ctx.lines.len() as u32;
    while l <= last {
        if ctx.line_has_code(l) {
            return l;
        }
        l += 1;
    }
    comment_line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let x = f(); // inerf-lint: allow(hash-order) -- lookup only\n";
        let ctx = FileContext::new(src);
        let (ws, bad) = parse_waivers(&ctx);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "hash-order");
        assert_eq!(ws[0].justification, "lookup only");
        assert_eq!(ws[0].target_line, 1);
    }

    #[test]
    fn standalone_and_stacked_waivers_target_next_code_line() {
        let src = "\
// inerf-lint: allow(hash-order) -- membership only
// inerf-lint: allow(wall-clock) -- measurement only

let x = f();
";
        let ctx = FileContext::new(src);
        let (ws, bad) = parse_waivers(&ctx);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target_line, 4);
        assert_eq!(ws[1].target_line, 4);
    }

    #[test]
    fn missing_justification_is_malformed() {
        for src in [
            "// inerf-lint: allow(hash-order)\n",
            "// inerf-lint: allow(hash-order) -- \n",
            "// inerf-lint: deny(hash-order) -- x\n",
            "// inerf-lint: allow(hash order) -- x\n",
        ] {
            let ctx = FileContext::new(src);
            let (ws, bad) = parse_waivers(&ctx);
            assert!(ws.is_empty(), "parsed from {src:?}");
            assert_eq!(bad.len(), 1, "not flagged: {src:?}");
        }
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let ctx = FileContext::new("// inerf-lint is great\nlet x = 1;\n");
        let (ws, bad) = parse_waivers(&ctx);
        assert!(ws.is_empty());
        assert!(bad.is_empty());
    }
}
