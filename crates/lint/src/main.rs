//! `inerf-lint` — CLI driver for the workspace invariant linter.
//!
//! ```text
//! inerf-lint [--root <dir>] [--format=text|json] [--verbose]
//! inerf-lint --explain <rule>
//! inerf-lint --list-rules
//! inerf-lint --write-unsafe-audit [--root <dir>]
//! inerf-lint --check-unsafe-audit [--root <dir>]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unwaived findings (or stale audit),
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use inerf_lint::{lint_and_audit, render_json, render_text, rule_info, RULES, UNSAFE_AUDIT_FILE};

struct Args {
    root: PathBuf,
    format: Format,
    verbose: bool,
    mode: Mode,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

#[derive(PartialEq)]
enum Mode {
    Lint,
    Explain(String),
    ListRules,
    WriteAudit,
    CheckAudit,
}

fn usage() -> String {
    "usage: inerf-lint [--root <dir>] [--format=text|json] [--verbose]\n\
     \x20      inerf-lint --explain <rule> | --list-rules\n\
     \x20      inerf-lint --write-unsafe-audit | --check-unsafe-audit [--root <dir>]\n"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Text,
        verbose: false,
        mode: Mode::Lint,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--format=text" => args.format = Format::Text,
            "--format=json" => args.format = Format::Json,
            "--format" => {
                let v = it.next().ok_or("--format needs text|json")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--verbose" | "-v" => args.verbose = true,
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule id")?;
                args.mode = Mode::Explain(rule);
            }
            "--list-rules" => args.mode = Mode::ListRules,
            "--write-unsafe-audit" => args.mode = Mode::WriteAudit,
            "--check-unsafe-audit" => args.mode = Mode::CheckAudit,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Temp-then-rename write, so a crash mid-write cannot leave a torn
/// `UNSAFE_AUDIT.md` for `--check-unsafe-audit` to compare against.
/// Local copy of `inerf_snapshot::atomic_write_file` — the lint binary
/// stays free of workspace dependencies by design (see Cargo.toml).
fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.flush()?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Prints to stdout, ignoring write failures: Rust ignores SIGPIPE, so a
/// closed pipe (`inerf-lint --explain foo | head`) would otherwise turn
/// into a `println!` panic. The exit code stays meaningful either way.
fn emit(text: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("inerf-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Args) -> Result<ExitCode, String> {
    match &args.mode {
        Mode::ListRules => {
            for r in RULES {
                emit(&format!("{:16} {}\n", r.id, r.summary));
            }
            Ok(ExitCode::SUCCESS)
        }
        Mode::Explain(rule) => match rule_info(rule) {
            Some(info) => {
                emit(&format!("{} — {}\n\n", info.id, info.summary));
                emit(&format!("{}\n", wrap(info.explain, 78)));
                emit(&format!(
                    "\nWaive a specific site with:\n  \
// inerf-lint: allow({}) -- <why this site is sound>\n",
                    info.id
                ));
                Ok(ExitCode::SUCCESS)
            }
            None => Err(format!(
                "unknown rule `{rule}`; try --list-rules for the catalogue"
            )),
        },
        Mode::Lint => {
            let (report, _) = lint_and_audit(&args.root)?;
            match args.format {
                Format::Text => emit(&render_text(&report, args.verbose)),
                Format::Json => emit(&render_json(&report)),
            }
            if report.unwaived_count() == 0 {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::from(1))
            }
        }
        Mode::WriteAudit => {
            let (_, audit) = lint_and_audit(&args.root)?;
            let path = args.root.join(UNSAFE_AUDIT_FILE);
            atomic_write(&path, audit.as_bytes())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            emit(&format!("wrote {}\n", path.display()));
            Ok(ExitCode::SUCCESS)
        }
        Mode::CheckAudit => {
            let (_, audit) = lint_and_audit(&args.root)?;
            let path = args.root.join(UNSAFE_AUDIT_FILE);
            let committed =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            if committed == audit {
                emit(&format!("{UNSAFE_AUDIT_FILE} is up to date\n"));
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!(
                    "{UNSAFE_AUDIT_FILE} is stale; regenerate with \
`cargo run -p inerf_lint -- --write-unsafe-audit`"
                );
                Ok(ExitCode::from(1))
            }
        }
    }
}

/// Greedy word wrap for `--explain` prose.
fn wrap(text: &str, width: usize) -> String {
    let mut out = String::new();
    let mut col = 0usize;
    for word in text.split_whitespace() {
        if col > 0 && col + 1 + word.len() > width {
            out.push('\n');
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out
}
