//! Structural context on top of the raw token stream.
//!
//! Rules need three structural facts the flat lexer cannot answer:
//! which lines sit inside `#[cfg(test)]` items (test code is exempt from
//! most rules), which function encloses a token (the precision-width rule
//! keys off `*_bytes` function names), and which lines carry code at all
//! (waiver comments attach to the next code line).

use crate::lexer::{lex, Tok, TokKind};

/// Token stream plus derived structure for one source file.
pub struct FileContext {
    /// Non-comment tokens in source order.
    pub code: Vec<Tok>,
    /// Comment tokens in source order.
    pub comments: Vec<Tok>,
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<String>,
    /// Per line (1-indexed via `line - 1`): inside a `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// Per line: carries at least one non-comment token.
    code_lines: Vec<bool>,
    /// Per code-token index: name of the innermost enclosing `fn`, or "".
    fn_names: Vec<String>,
}

impl FileContext {
    /// Lexes and analyzes `src`.
    pub fn new(src: &str) -> Self {
        let toks = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let n_lines = lines.len().max(1);
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in toks {
            if t.kind == TokKind::Comment {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let mut code_lines = vec![false; n_lines];
        for t in &code {
            if let Some(slot) = code_lines.get_mut(t.line as usize - 1) {
                *slot = true;
            }
        }
        let test_lines = mark_cfg_test_lines(&code, n_lines);
        let fn_names = enclosing_fn_names(&code);
        FileContext {
            code,
            comments,
            lines,
            test_lines,
            code_lines,
            fn_names,
        }
    }

    /// Whether `line` (1-indexed) is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// Whether `line` (1-indexed) carries any non-comment token.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.code_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// Name of the innermost function enclosing code token `i`, or "".
    pub fn enclosing_fn(&self, i: usize) -> &str {
        self.fn_names.get(i).map(|s| s.as_str()).unwrap_or("")
    }

    /// Raw text of `line` (1-indexed), or "".
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// Marks every line belonging to an item annotated `#[cfg(test)]` (or any
/// `cfg(...)` whose argument list mentions `test`, e.g. `all(test, unix)`).
///
/// The region runs from the attribute to the matching close brace of the
/// item's body — this covers `mod tests { ... }` as well as a directly
/// annotated `fn`/`impl`. Brace-less items (a `use` ending in `;`) mark
/// only their own lines.
fn mark_cfg_test_lines(code: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut marked = vec![false; n_lines];
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#')
            && code.get(i + 1).is_some_and(|t| t.is_punct('['))
            && code.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && code.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            // Scan the cfg argument list for the `test` predicate.
            let mut j = i + 4;
            let mut depth = 1usize;
            let mut has_test = false;
            while j < code.len() && depth > 0 {
                if code[j].is_punct('(') {
                    depth += 1;
                } else if code[j].is_punct(')') {
                    depth -= 1;
                } else if code[j].is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            // Expect the closing `]` of the attribute.
            if has_test && code.get(j).is_some_and(|t| t.is_punct(']')) {
                let start_line = code[i].line;
                let end_line = item_end_line(code, j + 1);
                for l in start_line..=end_line {
                    if let Some(slot) = marked.get_mut(l as usize - 1) {
                        *slot = true;
                    }
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    marked
}

/// The last line of the item starting at code token `start`: the matching
/// close brace of its first body brace, or the first top-level `;`.
fn item_end_line(code: &[Tok], start: usize) -> u32 {
    let mut depth = 0usize;
    for t in &code[start.min(code.len())..] {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return t.line;
            }
        } else if t.is_punct(';') && depth == 0 {
            return t.line;
        }
    }
    code.last().map(|t| t.line).unwrap_or(1)
}

/// For each code token, the name of the innermost enclosing `fn`.
fn enclosing_fn_names(code: &[Tok]) -> Vec<String> {
    let mut names = Vec::with_capacity(code.len());
    // Stack of (fn name, brace depth its body opened at).
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    // Paren/bracket nesting, so the `;` in `[u8; 3]` is not an item end.
    let mut nest = 0usize;
    // A `fn` whose name has been seen but whose body `{` has not.
    let mut pending: Option<String> = None;
    for (i, t) in code.iter().enumerate() {
        names.push(stack.last().map(|(n, _)| n.clone()).unwrap_or_default());
        match &t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = code.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        pending = Some(name.text.clone());
                    }
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest = nest.saturating_sub(1),
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((name, depth));
                }
            }
            TokKind::Punct('}') => {
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') if nest == 0 => {
                // Body-less declaration (trait method signature).
                pending = None;
            }
            _ => {}
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
use std::x;

pub fn state_bytes(a: usize) -> usize {
    a * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check() {
        assert_eq!(state_bytes(1), 4);
    }
}
";

    #[test]
    fn cfg_test_region_covers_the_mod() {
        let ctx = FileContext::new(SRC);
        assert!(!ctx.is_test_line(3));
        assert!(!ctx.is_test_line(4));
        assert!(ctx.is_test_line(7));
        assert!(ctx.is_test_line(8));
        assert!(ctx.is_test_line(13));
        assert!(ctx.is_test_line(15));
    }

    #[test]
    fn enclosing_fn_tracks_names() {
        let ctx = FileContext::new(SRC);
        let star = ctx
            .code
            .iter()
            .position(|t| t.is_punct('*'))
            .expect("star token");
        assert_eq!(ctx.enclosing_fn(star), "state_bytes");
        let use_tok = ctx
            .code
            .iter()
            .position(|t| t.is_ident("use"))
            .expect("use token");
        assert_eq!(ctx.enclosing_fn(use_tok), "");
    }

    #[test]
    fn cfg_all_with_test_counts() {
        let src = "#[cfg(all(test, unix))]\nmod t { fn f() {} }\nfn g() {}\n";
        let ctx = FileContext::new(src);
        assert!(ctx.is_test_line(1));
        assert!(ctx.is_test_line(2));
        assert!(!ctx.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_ignored() {
        let src = "#[cfg(unix)]\nmod t { fn f() {} }\n";
        let ctx = FileContext::new(src);
        assert!(!ctx.is_test_line(2));
    }

    #[test]
    fn code_lines_exclude_comment_only_lines() {
        let src = "// comment only\nlet x = 1;\n";
        let ctx = FileContext::new(src);
        assert!(!ctx.line_has_code(1));
        assert!(ctx.line_has_code(2));
    }
}
