//! Fig. 4: DRAM throughput and ALU utilization of the bottleneck kernels.

use crate::report;
use inerf_encoding::HashFunction;
use inerf_gpu::{GpuSpec, TrainingCost};
use inerf_trainer::workload::Step;
use inerf_trainer::ModelConfig;
use serde::{Deserialize, Serialize};

/// One kernel bar group of Fig. 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Step label.
    pub step: String,
    /// DRAM read throughput in GB/s.
    pub read_gbs: f64,
    /// DRAM write throughput in GB/s.
    pub write_gbs: f64,
    /// FP16 ALU utilization (fraction).
    pub fp16_util: f64,
    /// INT32 ALU utilization (fraction).
    pub int32_util: f64,
}

/// Approximate read share of each step's DRAM traffic (forward steps read
/// tables/activations and write small outputs; HT_b read-modify-writes).
fn read_fraction(step: Step) -> f64 {
    match step {
        Step::Ht => 0.95,
        Step::MlpD | Step::MlpC => 0.65,
        Step::MlpDB | Step::MlpCB => 0.55,
        Step::HtB => 0.6,
    }
}

/// Runs the Fig. 4 experiment on the XNX edge GPU.
pub fn run() -> Vec<Fig4Row> {
    let model = ModelConfig::paper(HashFunction::Original);
    let cost = TrainingCost::estimate(
        &GpuSpec::xnx(),
        &model,
        super::fig1::PAPER_BATCH,
        super::fig1::PAPER_ITERATIONS,
        1.0,
    );
    Step::ALL
        .iter()
        .map(|&step| {
            let s = cost.step(step);
            let total = s.dram_throughput / 1e9;
            Fig4Row {
                step: step.label().to_string(),
                read_gbs: total * read_fraction(step),
                write_gbs: total * (1.0 - read_fraction(step)),
                fp16_util: s.fp16_utilization,
                int32_util: s.int32_utilization,
            }
        })
        .collect()
}

/// Pretty-prints the figure.
pub fn render(rows: &[Fig4Row]) -> String {
    let mut out = String::from("Fig. 4: DRAM throughput and ALU utilization (XNX)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.step.clone(),
                report::f(r.read_gbs, 1),
                report::f(r.write_gbs, 1),
                report::f(100.0 * r.fp16_util, 2),
                report::f(100.0 * r.int32_util, 2),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["step", "rd GB/s", "wr GB/s", "FP16 %", "INT32 %"],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_below_peak_and_substantial() {
        for r in run() {
            let total = r.read_gbs + r.write_gbs;
            assert!(
                total <= 59.7 + 1e-6,
                "{}: {total} GB/s exceeds XNX peak",
                r.step
            );
            assert!(total > 5.0, "{}: {total} GB/s suspiciously idle", r.step);
        }
    }

    #[test]
    fn alu_utilization_is_low_everywhere() {
        // The memory-bound observation: ALU stays in single digits.
        for r in run() {
            assert!(
                r.fp16_util < 0.30,
                "{}: FP16 util {:.3}",
                r.step,
                r.fp16_util
            );
            assert!(
                r.int32_util < 0.30,
                "{}: INT32 util {:.3}",
                r.step,
                r.int32_util
            );
        }
    }

    #[test]
    fn ht_kernels_dominate_int_utilization() {
        // Observation 3: index calculation makes HT the top INT32 consumer.
        let rows = run();
        let ht_int = rows
            .iter()
            .find(|r| r.step == "HT")
            .expect("fig4 rows must include the HT step")
            .int32_util;
        for r in &rows {
            if !r.step.starts_with("HT") {
                assert!(
                    ht_int > 2.0 * r.int32_util,
                    "HT INT {:.4} should dominate {} ({:.4})",
                    ht_int,
                    r.step,
                    r.int32_util
                );
            }
        }
    }

    #[test]
    fn render_mentions_every_step() {
        let s = render(&run());
        for label in ["HT", "MLPd", "MLPc", "MLPc_b", "MLPd_b", "HT_b"] {
            assert!(s.contains(label), "missing {label}");
        }
    }
}
