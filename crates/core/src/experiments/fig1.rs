//! Fig. 1: training time per device and its breakdown.

use crate::report;
use inerf_encoding::HashFunction;
use inerf_gpu::{GpuSpec, TrainingCost};
use inerf_trainer::ModelConfig;
use serde::{Deserialize, Serialize};

/// The paper's training workload: 35 000 iterations of 256 K points.
pub const PAPER_ITERATIONS: u64 = 35_000;
/// Points per iteration.
pub const PAPER_BATCH: u64 = 256 * 1024;

/// One Fig. 1(a) bar plus its Fig. 1(b) breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Device name.
    pub device: String,
    /// Modelled training time per scene in seconds.
    pub total_seconds: f64,
    /// The paper's measured value (None where unreported).
    pub paper_seconds: Option<f64>,
    /// `(step label, percent)` breakdown including "Other".
    pub breakdown: Vec<(String, f64)>,
}

/// Runs the Fig. 1 experiment over the profiled devices.
pub fn run() -> Vec<Fig1Row> {
    let model = ModelConfig::paper(HashFunction::Original); // iNGP baseline
    [GpuSpec::rtx2080ti(), GpuSpec::xnx(), GpuSpec::tx2()]
        .into_iter()
        .map(|spec| {
            let cost = TrainingCost::estimate(&spec, &model, PAPER_BATCH, PAPER_ITERATIONS, 1.0);
            Fig1Row {
                device: spec.name.clone(),
                total_seconds: cost.total_seconds,
                paper_seconds: spec.paper_seconds_per_scene,
                breakdown: cost.breakdown_percent(),
            }
        })
        .collect()
}

/// Pretty-prints the experiment like the paper's figure.
pub fn render(rows: &[Fig1Row]) -> String {
    let mut out = String::from("Fig. 1(a): iNGP training time per scene\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                report::f(r.total_seconds, 0),
                r.paper_seconds.map_or("n/a".into(), |s| report::f(s, 0)),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["device", "model (s)", "paper (s)"],
        &table_rows,
    ));
    out.push_str("\nFig. 1(b): training-time breakdown (%)\n");
    for r in rows {
        out.push_str(&format!("{}: ", r.device));
        for (label, pct) in &r.breakdown {
            out.push_str(&format!("{label} {pct:.1}%  "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_totals_within_band() {
        for row in run() {
            if let Some(paper) = row.paper_seconds {
                let ratio = row.total_seconds / paper;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{}: {:.0} s vs paper {:.0} s",
                    row.device,
                    row.total_seconds,
                    paper
                );
            }
        }
    }

    #[test]
    fn edge_gpus_are_far_slower_than_cloud() {
        let rows = run();
        let cloud = rows
            .iter()
            .find(|r| r.device == "2080Ti")
            .expect("fig1 rows must include the 2080Ti baseline");
        let xnx = rows
            .iter()
            .find(|r| r.device == "XNX")
            .expect("fig1 rows must include the XNX baseline");
        assert!(xnx.total_seconds > 10.0 * cloud.total_seconds);
    }

    #[test]
    fn bottleneck_steps_cover_roughly_three_quarters() {
        // Fig. 1(b): the six steps cover 76.4% on XNX.
        let rows = run();
        let xnx = rows
            .iter()
            .find(|r| r.device == "XNX")
            .expect("fig1 rows must include the XNX baseline");
        let other = xnx
            .breakdown
            .iter()
            .find(|(l, _)| l == "Other")
            .expect("XNX breakdown must carry an Other bucket")
            .1;
        assert!((15.0..35.0).contains(&other), "other = {other:.1}%");
    }

    #[test]
    fn render_includes_all_devices() {
        let rows = run();
        let s = render(&rows);
        for d in ["2080Ti", "XNX", "TX2"] {
            assert!(s.contains(d));
        }
    }
}
