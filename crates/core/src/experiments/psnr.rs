//! Tab. IV: PSNR of the algorithm baselines vs the Instant-NeRF algorithm.
//!
//! Trains five methods per scene (NeRF, FastNeRF, TensoRF, iNGP and
//! Instant-NeRF's Morton-hash variant) on the procedural datasets and
//! evaluates PSNR on held-out views. Absolute dB values differ from the
//! paper (different scenes, far smaller compute budget); the reproduction
//! target is the *ordering*: iNGP ≈ Ours at the top, then TensoRF, then
//! NeRF, with FastNeRF trailing (see EXPERIMENTS.md).

use crate::report;
use inerf_encoding::HashFunction;
use inerf_scenes::zoo::{self, SceneKind};
use inerf_scenes::DatasetConfig;
use inerf_trainer::baselines::{FastNerfLite, NerfLite, TensorfLite};
use inerf_trainer::{IngpModel, ModelConfig, TrainConfig, TrainableField, Trainer};
use serde::{Deserialize, Serialize};

/// Compute budget of a Tab. IV run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsnrBudget {
    /// Training iterations per method per scene.
    pub iterations: usize,
    /// Rays per training batch.
    pub rays_per_batch: usize,
    /// Samples per ray.
    pub samples_per_ray: usize,
    /// Dataset resolution (square images).
    pub resolution: u32,
    /// Training views.
    pub train_views: usize,
}

impl PsnrBudget {
    /// Seconds-per-method budget for tests and benches.
    pub fn quick() -> Self {
        PsnrBudget {
            iterations: 60,
            rays_per_batch: 96,
            samples_per_ray: 16,
            resolution: 16,
            train_views: 6,
        }
    }

    /// The budget used for the recorded EXPERIMENTS.md numbers (minutes per
    /// scene on a laptop core).
    pub fn full() -> Self {
        PsnrBudget {
            iterations: 400,
            rays_per_batch: 256,
            samples_per_ray: 32,
            resolution: 40,
            train_views: 16,
        }
    }

    fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig {
            train_views: self.train_views,
            test_views: 2,
            resolution: self.resolution,
            oracle_samples: 64,
            orbit_radius: 3.2,
            fov_y: 0.7,
        }
    }

    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            rays_per_batch: self.rays_per_batch,
            samples_per_ray: self.samples_per_ray,
            order: inerf_trainer::StreamingOrder::RayFirst,
            eval_samples_per_ray: 2 * self.samples_per_ray,
            engine: inerf_trainer::Engine::Batched,
            precision: inerf_trainer::Precision::F32,
            opt: inerf_trainer::OptPath::from_env(),
        }
    }
}

/// One Tab. IV row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsnrRow {
    /// Method name.
    pub method: String,
    /// Per-scene PSNR in dB, in the order of the `scenes` argument.
    pub per_scene: Vec<f64>,
    /// Average PSNR.
    pub avg: f64,
}

fn train_and_eval<M: TrainableField>(
    model: M,
    budget: &PsnrBudget,
    dataset: &inerf_scenes::Dataset,
    seed: u64,
) -> f64 {
    let mut trainer = Trainer::new(model, budget.train_config(), seed);
    trainer.train(dataset, budget.iterations);
    trainer.eval_psnr(dataset)
}

/// Runs Tab. IV for the given scenes.
pub fn run(budget: &PsnrBudget, scenes: &[SceneKind], seed: u64) -> Vec<PsnrRow> {
    let methods: Vec<&str> = vec!["NeRF", "FastNeRF", "TensoRF", "iNGP", "Ours"];
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for &kind in scenes {
        let dataset = budget.dataset_config().generate(&zoo::scene(kind));
        per_method[0].push(train_and_eval(
            NerfLite::new(6, 48, seed),
            budget,
            &dataset,
            seed,
        ));
        per_method[1].push(train_and_eval(
            FastNerfLite::new(6, 32, 5, seed),
            budget,
            &dataset,
            seed,
        ));
        per_method[2].push(train_and_eval(
            TensorfLite::new(32, 8, 32, seed),
            budget,
            &dataset,
            seed,
        ));
        per_method[3].push(train_and_eval(
            IngpModel::new(ModelConfig::small(HashFunction::Original), seed),
            budget,
            &dataset,
            seed,
        ));
        per_method[4].push(train_and_eval(
            IngpModel::new(ModelConfig::small(HashFunction::Morton), seed),
            budget,
            &dataset,
            seed,
        ));
    }
    methods
        .into_iter()
        .zip(per_method)
        .map(|(m, scores)| {
            let avg = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
            PsnrRow {
                method: m.to_string(),
                per_scene: scores,
                avg,
            }
        })
        .collect()
}

/// Pretty-prints the table.
pub fn render(rows: &[PsnrRow], scenes: &[SceneKind]) -> String {
    let mut headers: Vec<String> = vec!["method".into(), "avg".into()];
    headers.extend(scenes.iter().map(|s| s.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.method.clone(), report::f(r.avg, 2)];
            cells.extend(r.per_scene.iter().map(|p| report::f(*p, 2)));
            cells
        })
        .collect();
    let mut out = String::from("Tab. IV: PSNR (dB, higher is better)\n");
    out.push_str(&report::table(&header_refs, &table_rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_finite_psnr_for_all_methods() {
        let rows = run(&PsnrBudget::quick(), &[SceneKind::Mic], 3);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.per_scene.len(), 1);
            assert!(
                r.avg.is_finite() && r.avg > 5.0,
                "{}: implausible PSNR {:.2}",
                r.method,
                r.avg
            );
        }
    }

    #[test]
    fn hash_grid_methods_lead_under_equal_budget() {
        // The Tab. IV shape at its core: with the same small budget, the
        // hash-grid methods (iNGP / Ours) beat the slow-converging NeRF
        // baseline, and Ours stays within a few dB of iNGP.
        //
        // 120 iterations, not quick()'s 60: below ~100 iterations the
        // hash-grid methods are still pre-convergence and the ordering is
        // seed noise (measured: 2 of 4 seeds invert at 60 iterations,
        // 0 of 4 at 120).
        let budget = PsnrBudget {
            iterations: 120,
            ..PsnrBudget::quick()
        };
        let rows = run(&budget, &[SceneKind::Mic], 5);
        let get = |m: &str| {
            rows.iter()
                .find(|r| r.method == m)
                .expect("Tab. IV must carry every method row")
                .avg
        };
        let ingp = get("iNGP");
        let ours = get("Ours");
        let nerf = get("NeRF");
        assert!(
            ours.max(ingp) > nerf - 1.0,
            "hash methods (best {:.2}) should not trail NeRF ({nerf:.2})",
            ours.max(ingp)
        );
        assert!(
            (ingp - ours).abs() < 3.0,
            "Ours ({ours:.2}) should track iNGP ({ingp:.2}) closely"
        );
    }

    #[test]
    fn render_lists_methods_and_scenes() {
        let rows = run(&PsnrBudget::quick(), &[SceneKind::Mic], 3);
        let s = render(&rows, &[SceneKind::Mic]);
        for m in ["NeRF", "FastNeRF", "TensoRF", "iNGP", "Ours"] {
            assert!(s.contains(m));
        }
        assert!(s.contains("Mic"));
    }
}
