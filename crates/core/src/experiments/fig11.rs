//! Fig. 11: per-scene speedup and energy efficiency of the Instant-NeRF
//! accelerator over the TX2 and XNX edge GPUs.

use super::traces::{gpu_scene_factor, scene_trace_into};
use crate::report;
use inerf_accel::PipelineModel;
use inerf_encoding::{HashFunction, HashGrid};
use inerf_gpu::{GpuSpec, TrainingCost};
use inerf_scenes::zoo::{self, SceneKind};
use inerf_trainer::ModelConfig;
use serde::{Deserialize, Serialize};

/// One scene's Fig. 11 bars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Scene name.
    pub scene: String,
    /// Accelerator training time per scene (seconds).
    pub accel_seconds: f64,
    /// XNX / TX2 training times (seconds).
    pub xnx_seconds: f64,
    /// TX2 training time (seconds).
    pub tx2_seconds: f64,
    /// Speedup over XNX (paper band: 22.0x–49.3x).
    pub speedup_xnx: f64,
    /// Speedup over TX2 (paper band: 109.5x–266.1x).
    pub speedup_tx2: f64,
    /// Energy-efficiency gain over XNX (paper band: 46.4x–103.7x).
    pub energy_gain_xnx: f64,
    /// Energy-efficiency gain over TX2 (paper band: 172.9x–420.3x).
    pub energy_gain_tx2: f64,
}

/// Runs Fig. 11 over the given scenes, collecting at least `target_points`
/// occupied points per scene trace (`samples` stratified samples per ray).
/// Each scene's access stream feeds the accelerator's DRAM replays online
/// through the trace bus — no per-scene trace is materialized.
pub fn run(scenes: &[SceneKind], target_points: usize, samples: usize, seed: u64) -> Vec<Fig11Row> {
    let iterations = super::fig1::PAPER_ITERATIONS;
    let batch = super::fig1::PAPER_BATCH;
    let ours_model = ModelConfig::paper(HashFunction::Morton);
    let gpu_model = ModelConfig::paper(HashFunction::Original); // iNGP on GPU
    let grid = HashGrid::new(ours_model.grid, seed);
    let pipeline = PipelineModel::paper(ours_model);
    let mut sink = pipeline.iteration_sink();
    scenes
        .iter()
        .map(|&kind| {
            let scene = zoo::scene(kind);
            let st = scene_trace_into(&scene, &grid, target_points, samples, seed, &mut sink);
            let iter = pipeline.estimate_streamed(&mut sink, batch);
            let accel = pipeline.scene_estimate(&iter, iterations);
            let factor = gpu_scene_factor(&st);
            let xnx =
                TrainingCost::estimate(&GpuSpec::xnx(), &gpu_model, batch, iterations, factor);
            let tx2 =
                TrainingCost::estimate(&GpuSpec::tx2(), &gpu_model, batch, iterations, factor);
            Fig11Row {
                scene: kind.name().to_string(),
                accel_seconds: accel.training_seconds,
                xnx_seconds: xnx.total_seconds,
                tx2_seconds: tx2.total_seconds,
                speedup_xnx: xnx.total_seconds / accel.training_seconds,
                speedup_tx2: tx2.total_seconds / accel.training_seconds,
                energy_gain_xnx: xnx.total_joules / accel.training_joules,
                energy_gain_tx2: tx2.total_joules / accel.training_joules,
            }
        })
        .collect()
}

/// Pretty-prints the figure.
pub fn render(rows: &[Fig11Row]) -> String {
    let mut out =
        String::from("Fig. 11: Instant-NeRF accelerator vs edge GPUs (speedup / energy gain)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scene.clone(),
                report::f(r.accel_seconds, 1),
                format!("{}x", report::f(r.speedup_xnx, 1)),
                format!("{}x", report::f(r.speedup_tx2, 1)),
                format!("{}x", report::f(r.energy_gain_xnx, 1)),
                format!("{}x", report::f(r.energy_gain_tx2, 1)),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "scene",
            "accel (s)",
            "vs XNX",
            "vs TX2",
            "energy vs XNX",
            "energy vs TX2",
        ],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig11Row> {
        // Two contrasting scenes keep the test fast.
        run(&[SceneKind::Mic, SceneKind::Lego], 768, 96, 3)
    }

    #[test]
    fn speedups_land_in_paper_order_of_magnitude() {
        for r in rows() {
            assert!(
                (8.0..80.0).contains(&r.speedup_xnx),
                "{}: XNX speedup {:.1}x outside the plausible band",
                r.scene,
                r.speedup_xnx
            );
            assert!(
                (40.0..500.0).contains(&r.speedup_tx2),
                "{}: TX2 speedup {:.1}x",
                r.scene,
                r.speedup_tx2
            );
            assert!(
                r.speedup_tx2 > 3.0 * r.speedup_xnx,
                "TX2 gain must exceed XNX gain"
            );
        }
    }

    #[test]
    fn energy_gains_exceed_speedups_on_xnx() {
        // P_xnx (20 W) > P_accel (~9.5 W + DRAM), so energy gains beat
        // speedups — the structure behind Fig. 11(b) > Fig. 11(a).
        for r in rows() {
            assert!(
                r.energy_gain_xnx > r.speedup_xnx,
                "{}: energy {:.1}x vs speedup {:.1}x",
                r.scene,
                r.energy_gain_xnx,
                r.speedup_xnx
            );
        }
    }

    #[test]
    fn scenes_differ() {
        let rs = rows();
        assert!(
            (rs[0].speedup_xnx - rs[1].speedup_xnx).abs() > 0.5,
            "per-scene variation expected: {:.1} vs {:.1}",
            rs[0].speedup_xnx,
            rs[1].speedup_xnx
        );
    }

    #[test]
    fn render_has_all_columns() {
        let s = render(&rows());
        assert!(s.contains("vs XNX") && s.contains("energy vs TX2"));
        assert!(s.contains("Mic") && s.contains("Lego"));
    }
}
