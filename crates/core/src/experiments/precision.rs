//! The `precision` experiment: the mixed-precision sweep the `ParamStore`
//! refactor opens up.
//!
//! Trains the Tab. II "small" workload twice — parameters stored as f32
//! and as fp16 (f32 master weights, RNE commits) — with the NMP memory
//! system co-simulated online at the matching entry width, and compares:
//!
//! * **quality** — final loss and held-out PSNR (the fp16 run must stay
//!   within a fraction of a dB of f32);
//! * **storage** — modeled hash-table and total parameter bytes (exactly
//!   half at fp16);
//! * **DRAM traffic** — embedding payload bytes per iteration (exactly
//!   half: the lookup stream is identical, each entry is half as wide),
//!   row-granularity requests, row hits/misses and energy from the
//!   cycle-level replay (better than half-proportional improvements,
//!   because narrower entries also pack more of a cube into one row);
//! * **modeled time** — the pipelined iteration estimate.
//!
//! The sampled point stream depends only on the trainer's rng, so both
//! precisions stream byte-identical cube events; every hardware-side
//! difference is purely the storage width.

use crate::report;
use inerf_accel::{CosimSink, PipelineModel};
use inerf_encoding::{CountingSink, EntryLayout, HashFunction};
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_trainer::{IngpModel, ModelConfig, Precision, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};

/// One precision's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionPath {
    /// Storage precision label ("f32" or "fp16").
    pub precision: String,
    /// Modeled bytes per hash-table entry (`F` features).
    pub entry_bytes: u32,
    /// Modeled bytes of the stored hash table.
    pub table_bytes: usize,
    /// Modeled bytes of all stored parameters (table + MLPs).
    pub param_bytes: usize,
    /// Loss after the final iteration.
    pub final_loss: f64,
    /// Held-out PSNR after training, in dB.
    pub psnr_db: f64,
    /// Embedding payload bytes the lookup stream demands over the run
    /// (cubes × 8 vertices × entry width — scales exactly with precision).
    pub request_payload_bytes: u64,
    /// Row-granularity DRAM requests issued by the HT + HT_b replays.
    pub dram_requests: u64,
    /// Row-buffer hits in the HT replay.
    pub ht_row_hits: u64,
    /// Row-buffer misses (activations) in the HT replay.
    pub ht_row_misses: u64,
    /// Simulated DRAM energy over the run, picojoules.
    pub sim_dram_energy_pj: f64,
    /// Simulated pipelined seconds over the run.
    pub sim_pipelined_seconds: f64,
    /// Mean simulated pipelined seconds per iteration.
    pub sim_seconds_per_iteration: f64,
}

/// The full precision-sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionResult {
    /// Training iterations per precision.
    pub iterations: usize,
    /// Nominal sampled points per iteration.
    pub points_per_iteration: usize,
    /// The f32 baseline (bit-identical to the pre-`ParamStore` trainer).
    pub full: PrecisionPath,
    /// The fp16 run (paper-faithful storage).
    pub half: PrecisionPath,
    /// `full.psnr_db - half.psnr_db` (positive = fp16 lost quality).
    pub psnr_gap_db: f64,
}

fn workload() -> (Dataset, TrainConfig, ModelConfig) {
    let scene = zoo::scene(zoo::SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    (
        dataset,
        TrainConfig::small(),
        ModelConfig::small(HashFunction::Morton),
    )
}

fn run_path(
    dataset: &Dataset,
    config: TrainConfig,
    model_cfg: ModelConfig,
    iterations: usize,
    seed: u64,
) -> PrecisionPath {
    let precision = config.precision;
    let batch_points = config.points_per_iteration() as u64;
    let pipeline = PipelineModel::paper(model_cfg).with_precision(precision);
    let entry_bytes = model_cfg.grid.entry_bytes(precision);
    let layout = EntryLayout::new(entry_bytes);
    let model = IngpModel::for_config(model_cfg, &config, seed ^ 0xA1);
    let table_bytes = model.grid().storage_bytes();
    let param_bytes = model.parameter_storage_bytes();
    let mut trainer = Trainer::new(model, config, seed);
    let mut sink = (
        CosimSink::new(pipeline, batch_points),
        CountingSink::default(),
    );
    let report = trainer.train_with_sink(dataset, iterations, &mut sink);
    let (cosim, counter) = sink;
    let stats = cosim.stats();
    PrecisionPath {
        precision: precision.label().to_string(),
        entry_bytes,
        table_bytes,
        param_bytes,
        final_loss: report.last_loss,
        psnr_db: trainer.eval_psnr(dataset),
        request_payload_bytes: counter.cubes * layout.cube_payload_bytes() as u64,
        dram_requests: stats.dram_requests,
        ht_row_hits: stats.ht_row_hits,
        ht_row_misses: stats.ht_row_misses,
        sim_dram_energy_pj: stats.dram_energy_pj,
        sim_pipelined_seconds: stats.pipelined_seconds,
        sim_seconds_per_iteration: stats.seconds_per_iteration(),
    }
}

/// Runs the sweep: `iterations` training steps of the Tab. II small
/// workload at f32 and at fp16 storage, same seeds, same sampled points.
pub fn run(iterations: usize, seed: u64) -> PrecisionResult {
    let (dataset, config, model_cfg) = workload();
    let full = run_path(
        &dataset,
        config.with_precision(Precision::F32),
        model_cfg,
        iterations,
        seed,
    );
    let half = run_path(
        &dataset,
        config.with_precision(Precision::Fp16),
        model_cfg,
        iterations,
        seed,
    );
    PrecisionResult {
        iterations,
        points_per_iteration: config.points_per_iteration(),
        psnr_gap_db: full.psnr_db - half.psnr_db,
        full,
        half,
    }
}

/// Pretty-prints the sweep.
pub fn render(r: &PrecisionResult) -> String {
    let mut out = format!(
        "Precision sweep: f32 vs fp16 parameter storage ({} iterations)\n",
        r.iterations
    );
    let row = |p: &PrecisionPath| {
        vec![
            p.precision.clone(),
            p.entry_bytes.to_string(),
            format!("{:.2}", p.table_bytes as f64 / (1024.0 * 1024.0)),
            report::f(p.psnr_db, 2),
            (p.request_payload_bytes / r.iterations as u64).to_string(),
            (p.dram_requests / r.iterations as u64).to_string(),
            report::f(p.sim_seconds_per_iteration * 1e3, 3),
            report::f(p.sim_dram_energy_pj * 1e-9, 3),
        ]
    };
    out.push_str(&report::table(
        &[
            "store",
            "entry B",
            "table MB",
            "PSNR dB",
            "payload B/iter",
            "DRAM req/iter",
            "sim ms/iter",
            "energy mJ",
        ],
        &[row(&r.full), row(&r.half)],
    ));
    out.push_str(&format!(
        "PSNR gap (f32 - fp16): {:.3} dB | table bytes halved: {} | payload halved: {}\n",
        r.psnr_gap_db,
        2 * r.half.table_bytes == r.full.table_bytes,
        2 * r.half.request_payload_bytes == r.full.request_payload_bytes,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_halves_modeled_storage_and_payload() {
        let r = run(3, 9);
        assert_eq!(r.full.entry_bytes, 8);
        assert_eq!(r.half.entry_bytes, 4);
        assert_eq!(2 * r.half.table_bytes, r.full.table_bytes);
        assert_eq!(2 * r.half.param_bytes, r.full.param_bytes);
        // Same cube stream, half the payload per entry.
        assert_eq!(
            2 * r.half.request_payload_bytes,
            r.full.request_payload_bytes
        );
        // Row-granularity effects go the right way: wider entries touch
        // more rows, cost more requests and more energy.
        assert!(r.half.dram_requests < r.full.dram_requests);
        assert!(r.half.ht_row_misses <= r.full.ht_row_misses);
        assert!(r.half.sim_dram_energy_pj < r.full.sim_dram_energy_pj);
        assert!(r.half.sim_pipelined_seconds <= r.full.sim_pipelined_seconds);
    }

    #[test]
    fn fp16_training_stays_within_half_db_of_f32() {
        // The acceptance bound: on the Tab. II small workload, fp16
        // storage with f32 master weights must track f32 training to
        // within 0.5 dB of held-out PSNR.
        let r = run(40, 7);
        assert!(
            r.full.psnr_db > 10.0,
            "f32 run should have trained ({:.2} dB)",
            r.full.psnr_db
        );
        assert!(
            r.psnr_gap_db.abs() < 0.5,
            "fp16 PSNR {:.2} dB vs f32 {:.2} dB: gap {:.3} dB exceeds 0.5",
            r.half.psnr_db,
            r.full.psnr_db,
            r.psnr_gap_db
        );
    }

    #[test]
    fn render_reports_both_precisions() {
        let r = run(2, 3);
        let s = render(&r);
        assert!(s.contains("f32") && s.contains("fp16"));
        assert!(s.contains("table bytes halved: true"));
        assert!(s.contains("payload halved: true"));
    }
}
