//! Fig. 6: index-distance breakdown between neighbouring cube vertices,
//! plus the Sec. III-A requests-per-cube statistic (1.58 vs 4.02).

use crate::report;
use inerf_encoding::locality::{LocalitySink, DISTANCE_BUCKET_LABELS};
use inerf_encoding::requests::MeanRequestSink;
use inerf_encoding::{HashFunction, HashGrid, HashGridConfig};
use inerf_geom::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One hash function's Fig. 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// "Ours" (Morton) or "Org." (original iNGP hash).
    pub label: String,
    /// Percentages per distance bucket (sums to 100).
    pub histogram: [f64; 5],
    /// Mean DRAM row requests per cube (paper: 1.58 ours / 4.02 original).
    pub requests_per_cube: f64,
}

/// Runs the Fig. 6 experiment with `points` random batch points, streaming
/// each point's cube lookups straight into the two statistics sinks — no
/// materialized trace.
pub fn run(points: usize, seed: u64) -> Vec<Fig6Row> {
    [HashFunction::Morton, HashFunction::Original]
        .into_iter()
        .map(|hash| {
            let grid = HashGrid::new(HashGridConfig::paper(hash), seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
            let mut sinks = (LocalitySink::new(0), MeanRequestSink::new());
            for _ in 0..points {
                let p = Vec3::new(rng.gen(), rng.gen(), rng.gen());
                grid.stream_point(p, &mut sinks);
            }
            Fig6Row {
                label: hash.label().to_string(),
                histogram: sinks.0.histogram(),
                requests_per_cube: sinks.1.mean(),
            }
        })
        .collect()
}

/// Pretty-prints the figure.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out =
        String::from("Fig. 6: index distance between two neighbouring cube vertices (%)\n");
    let mut headers = vec!["hash"];
    headers.extend(DISTANCE_BUCKET_LABELS);
    headers.push("req/cube");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.label.clone()];
            cells.extend(r.histogram.iter().map(|p| report::f(*p, 1)));
            cells.push(report::f(r.requests_per_cube, 2));
            cells
        })
        .collect();
    out.push_str(&report::table(&headers, &table_rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig6Row> {
        run(512, 7)
    }

    #[test]
    fn morton_concentrates_small_distances() {
        // Paper: 82.0% of Morton distances are <=16 entries; only 55.4% for
        // the original hash. Check the qualitative gap with slack.
        let rows = rows();
        let ours = &rows[0];
        let org = &rows[1];
        let close_ours = ours.histogram[0] + ours.histogram[1];
        let close_org = org.histogram[0] + org.histogram[1];
        assert!(close_ours > 60.0, "ours close share {close_ours:.1}%");
        assert!(
            close_ours > close_org + 15.0,
            "{close_ours:.1} vs {close_org:.1}"
        );
    }

    #[test]
    fn morton_never_lands_far() {
        // Paper: none of the Morton distances exceed 5000; 22.7% of the
        // original's do.
        let rows = rows();
        assert!(
            rows[0].histogram[4] < 5.0,
            "ours >5000 bucket: {:.1}%",
            rows[0].histogram[4]
        );
        assert!(
            rows[1].histogram[4] > 10.0,
            "org >5000 bucket: {:.1}%",
            rows[1].histogram[4]
        );
    }

    #[test]
    fn requests_per_cube_match_sec3a_bands() {
        // Paper: 1.58 (ours) vs 4.02 (original) average requests per cube.
        let rows = rows();
        assert!(
            (1.0..2.5).contains(&rows[0].requests_per_cube),
            "ours {:.2}",
            rows[0].requests_per_cube
        );
        assert!(
            (3.0..5.5).contains(&rows[1].requests_per_cube),
            "org {:.2}",
            rows[1].requests_per_cube
        );
    }

    #[test]
    fn render_contains_buckets() {
        let s = render(&rows());
        assert!(s.contains(">5000"));
        assert!(s.contains("Ours"));
        assert!(s.contains("Org."));
    }
}
