//! The `cosim` experiment: train a Tab. II workload while the NMP memory
//! system is simulated *online*, iteration by iteration, through the
//! streaming trace bus — the full-training-run co-simulation the offline
//! trace-replay architecture could not afford.
//!
//! Two paths run the same training trajectory (same seeds, same engine):
//!
//! * **streamed** — the trainer's sink slot holds an
//!   [`inerf_accel::CosimSink`]; every iteration's hash-table access
//!   stream is mapped to DRAM requests and replayed through the
//!   cycle-level simulator as training executes, at constant trace memory.
//! * **buffered** — the reference: every iteration's trace is materialized
//!   (memory grows with run length), then replayed offline through
//!   [`PipelineModel::estimate_iteration`].
//!
//! The two must agree bit-for-bit on the simulated quantities; the
//! experiment records both throughputs and both peak trace-memory
//! footprints, which is the refactor's measurable payoff.

use crate::report;
use inerf_accel::{CosimSink, CosimStats, PipelineModel};
use inerf_encoding::{BatchBufferSink, HashFunction};
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_trainer::{Engine, IngpModel, ModelConfig, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One path's measurements (streamed or buffered).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CosimPath {
    /// Wall-clock seconds of the training run: for the streamed path this
    /// includes the online co-simulation (it runs inline); for the
    /// buffered path it covers training + trace capture only.
    pub train_seconds: f64,
    /// Wall-clock seconds of the offline trace replay (0 for the streamed
    /// path — its simulation cost is already inside `train_seconds`).
    pub replay_seconds: f64,
    /// Sampled points per wall-clock second of `train_seconds` (the same
    /// time base for both paths' numerators and denominators).
    pub points_per_sec: f64,
    /// Peak bytes of trace state: the sink's constant co-simulation state
    /// (streamed) or the accumulated materialized traces (buffered).
    pub peak_trace_bytes: usize,
    /// Accumulated simulated pipelined seconds over the run.
    pub sim_pipelined_seconds: f64,
    /// Accumulated simulated serial (unpipelined) seconds.
    pub sim_serial_seconds: f64,
    /// Accumulated simulated DRAM energy, picojoules.
    pub sim_dram_energy_pj: f64,
    /// Iterations that contributed simulated stats.
    pub sim_iterations: u64,
}

/// The full `cosim` experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CosimResult {
    /// Which trainer engine ran ("scalar" or "batched").
    pub engine: String,
    /// Training iterations executed.
    pub iterations: usize,
    /// Nominal sampled points per iteration (Tab. II batch unit).
    pub points_per_iteration: usize,
    /// The online co-simulation path.
    pub streamed: CosimPath,
    /// The materialized-trace reference path.
    pub buffered: CosimPath,
    /// Whether the two paths' simulated stats agree bit-for-bit.
    pub stats_match: bool,
    /// The streamed run's full accumulated statistics.
    pub cosim: CosimStats,
}

fn engine_label(engine: Engine) -> &'static str {
    match engine {
        Engine::Scalar => "scalar",
        Engine::Batched => "batched",
    }
}

fn workload() -> (Dataset, TrainConfig, ModelConfig) {
    let scene = zoo::scene(zoo::SceneKind::Lego);
    let dataset = DatasetConfig::tiny().generate(&scene);
    (
        dataset,
        TrainConfig::small(),
        ModelConfig::small(HashFunction::Morton),
    )
}

/// Runs the co-simulation experiment: `iterations` training steps of the
/// Tab. II "small" workload on `engine`, once with online co-simulation
/// and once against the buffered reference.
pub fn run(engine: Engine, iterations: usize, seed: u64) -> CosimResult {
    let (dataset, config, model_cfg) = workload();
    let config = config.with_engine(engine);
    let batch_points = config.points_per_iteration() as u64;
    let pipeline = PipelineModel::paper(model_cfg);

    // --- Streamed: the memory system simulated while training runs. ---
    let mut cosim = CosimSink::new(pipeline.clone(), batch_points);
    let mut trainer = Trainer::new(IngpModel::new(model_cfg, seed ^ 0xA1), config, seed);
    // inerf-lint: allow(wall-clock) -- measures the host cost of the streamed path; never enters simulated stats
    let start = Instant::now();
    trainer.train_with_sink(&dataset, iterations, &mut cosim);
    let streamed_seconds = start.elapsed().as_secs_f64();
    let streamed_points = trainer.points_queried();
    let stats = cosim.stats().clone();
    let streamed = CosimPath {
        train_seconds: streamed_seconds,
        replay_seconds: 0.0,
        points_per_sec: streamed_points as f64 / streamed_seconds,
        peak_trace_bytes: stats.peak_state_bytes,
        sim_pipelined_seconds: stats.pipelined_seconds,
        sim_serial_seconds: stats.serial_seconds,
        sim_dram_energy_pj: stats.dram_energy_pj,
        sim_iterations: stats.iterations,
    };

    // --- Buffered reference: identical trajectory, materialized traces,
    // offline replay. ---
    let mut buffer = BatchBufferSink::new();
    let mut trainer = Trainer::new(IngpModel::new(model_cfg, seed ^ 0xA1), config, seed);
    // inerf-lint: allow(wall-clock) -- measures the host cost of the buffered reference; never enters simulated stats
    let start = Instant::now();
    trainer.train_with_sink(&dataset, iterations, &mut buffer);
    let buffered_train_seconds = start.elapsed().as_secs_f64();
    let buffered_points = trainer.points_queried();
    let peak_trace_bytes = buffer.heap_bytes();
    // inerf-lint: allow(wall-clock) -- measures the host cost of offline replay; never enters simulated stats
    let replay_start = Instant::now();
    let mut sim_pipelined = 0.0f64;
    let mut sim_serial = 0.0f64;
    let mut sim_energy = 0.0f64;
    let mut sim_iterations = 0u64;
    for trace in buffer.batches() {
        if trace.point_count() == 0 {
            continue; // matches the online path skipping empty iterations
        }
        let est = pipeline.estimate_iteration(trace, trace.point_count() as u64, batch_points);
        sim_pipelined += est.pipelined_seconds;
        sim_serial += est.serial_seconds;
        sim_energy += est.dram_energy_pj;
        sim_iterations += 1;
    }
    let buffered = CosimPath {
        train_seconds: buffered_train_seconds,
        replay_seconds: replay_start.elapsed().as_secs_f64(),
        points_per_sec: buffered_points as f64 / buffered_train_seconds,
        peak_trace_bytes,
        sim_pipelined_seconds: sim_pipelined,
        sim_serial_seconds: sim_serial,
        sim_dram_energy_pj: sim_energy,
        sim_iterations,
    };

    let stats_match = streamed.sim_iterations == buffered.sim_iterations
        && streamed.sim_pipelined_seconds == buffered.sim_pipelined_seconds
        && streamed.sim_serial_seconds == buffered.sim_serial_seconds
        && streamed.sim_dram_energy_pj == buffered.sim_dram_energy_pj
        && streamed_points == buffered_points;

    CosimResult {
        engine: engine_label(engine).to_string(),
        iterations,
        points_per_iteration: config.points_per_iteration(),
        streamed,
        buffered,
        stats_match,
        cosim: stats,
    }
}

/// Pretty-prints the experiment.
pub fn render(r: &CosimResult) -> String {
    let mut out = format!(
        "Cosim: online NMP co-simulation of a full training run ({} engine, {} iterations)\n",
        r.engine, r.iterations
    );
    let rows = vec![
        vec![
            "streamed".to_string(),
            report::f(r.streamed.points_per_sec / 1e3, 1),
            r.streamed.peak_trace_bytes.to_string(),
            report::f(r.streamed.sim_pipelined_seconds * 1e3, 3),
            report::f(r.streamed.sim_dram_energy_pj * 1e-9, 3),
        ],
        vec![
            "buffered".to_string(),
            report::f(r.buffered.points_per_sec / 1e3, 1),
            r.buffered.peak_trace_bytes.to_string(),
            report::f(r.buffered.sim_pipelined_seconds * 1e3, 3),
            report::f(r.buffered.sim_dram_energy_pj * 1e-9, 3),
        ],
    ];
    out.push_str(&report::table(
        &[
            "path",
            "kpts/s",
            "peak trace bytes",
            "sim time (ms)",
            "DRAM energy (mJ)",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "stats bit-identical: {}\n",
        if r.stats_match { "yes" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_and_buffered_stats_are_bit_identical() {
        let r = run(Engine::Batched, 3, 9);
        assert!(r.stats_match, "online co-sim diverged from the reference");
        assert_eq!(r.streamed.sim_iterations, 3);
        assert!(r.streamed.sim_pipelined_seconds > 0.0);
    }

    #[test]
    fn streamed_path_uses_constant_small_state() {
        let r = run(Engine::Batched, 4, 11);
        // The buffered path's footprint grows with run length; the
        // streamed path's stays a small constant.
        assert!(
            r.streamed.peak_trace_bytes * 4 < r.buffered.peak_trace_bytes,
            "streamed {} bytes vs buffered {} bytes",
            r.streamed.peak_trace_bytes,
            r.buffered.peak_trace_bytes
        );
    }

    #[test]
    fn both_engines_cosimulate_identically() {
        let a = run(Engine::Scalar, 2, 5);
        let b = run(Engine::Batched, 2, 5);
        // Same seed → same gathered points → identical simulated stats,
        // regardless of the execution engine.
        assert_eq!(
            a.streamed.sim_pipelined_seconds,
            b.streamed.sim_pipelined_seconds
        );
        assert_eq!(a.streamed.sim_dram_energy_pj, b.streamed.sim_dram_energy_pj);
        assert!(a.stats_match && b.stats_match);
    }

    #[test]
    fn render_reports_both_paths() {
        let r = run(Engine::Batched, 2, 3);
        let s = render(&r);
        assert!(s.contains("streamed") && s.contains("buffered"));
        assert!(s.contains("bit-identical: yes"));
    }
}
