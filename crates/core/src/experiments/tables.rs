//! Tab. I (device specs), Tab. II (workload sizes) and Tab. III
//! (accelerator configuration), printed in the paper's shape.

use crate::report;
use inerf_accel::AccelConfig;
use inerf_encoding::HashFunction;
use inerf_gpu::GpuSpec;
use inerf_trainer::workload::{self, Step};
use inerf_trainer::ModelConfig;

/// Renders Tab. I.
pub fn tab1() -> String {
    let rows: Vec<Vec<String>> = GpuSpec::all()
        .into_iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.0} W", s.power_w),
                format!("{:.1} GB/s", s.dram_bw / 1e9),
                format!("{} KB", s.l2_bytes / 1024),
                format!("{:.2} TFLOPS", s.fp16_flops / 1e12),
                s.paper_seconds_per_scene
                    .map_or("N/A".into(), |t| format!("{t:.0} s/scene")),
            ]
        })
        .collect();
    let mut out = String::from("Tab. I: SOTA GPU specifications\n");
    out.push_str(&report::table(
        &["device", "power", "DRAM BW", "L2", "FP16", "training time"],
        &rows,
    ));
    out
}

/// One Tab. II row in MB.
#[derive(Debug, Clone)]
pub struct Tab2Row {
    /// Step label ("MLP" aggregates MLPd→MLPc as in the paper).
    pub step: String,
    /// Parameter megabytes.
    pub param_mb: f64,
    /// Input megabytes.
    pub input_mb: f64,
    /// Output megabytes.
    pub output_mb: f64,
    /// Peak intermediate megabytes.
    pub intermediate_mb: f64,
}

/// Computes Tab. II for the paper batch size.
pub fn tab2_rows() -> Vec<Tab2Row> {
    let model = ModelConfig::paper(HashFunction::Morton);
    let points = super::fig1::PAPER_BATCH;
    let mk = |label: &str, s: workload::StepSizes| Tab2Row {
        step: label.to_string(),
        param_mb: workload::to_mb(s.param_bytes),
        input_mb: workload::to_mb(s.input_bytes),
        output_mb: workload::to_mb(s.output_bytes),
        intermediate_mb: workload::to_mb(s.intermediate_bytes),
    };
    let mlp = workload::mlp_combined_sizes(&model, points);
    let mlp_b = workload::StepSizes {
        input_bytes: mlp.output_bytes,
        output_bytes: mlp.input_bytes,
        ..mlp
    };
    vec![
        mk("HT", workload::step_sizes(&model, Step::Ht, points)),
        mk("MLP", mlp),
        mk("MLP_b", mlp_b),
        mk("HT_b", workload::step_sizes(&model, Step::HtB, points)),
    ]
}

/// Renders Tab. II.
pub fn tab2() -> String {
    let rows: Vec<Vec<String>> = tab2_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.step,
                report::f(r.param_mb, 3),
                report::f(r.input_mb, 1),
                report::f(r.output_mb, 1),
                report::f(r.intermediate_mb, 1),
            ]
        })
        .collect();
    let mut out =
        String::from("Tab. II: parameter/data sizes of iNGP's bottleneck steps (MB, 256K batch)\n");
    out.push_str(&report::table(
        &["step", "param", "input", "output", "intermediate"],
        &rows,
    ));
    out
}

/// Renders Tab. III plus the Sec. V-C area/power results.
pub fn tab3() -> String {
    let a = AccelConfig::paper();
    let d = a.nmp_dram(32);
    let mut out = String::from("Tab. III: Instant-NeRF accelerator parameters\n");
    let rows = vec![
        vec!["technology".into(), "28 nm".into()],
        vec!["frequency".into(), format!("{} MHz", a.frequency_mhz)],
        vec![
            "scratchpad".into(),
            format!("{} KB", a.scratchpad_bytes / 1024),
        ],
        vec![
            "compute".into(),
            format!("{}x INT32 + {}x FP32 PEs", a.int_pes, a.fp_pes),
        ],
        vec!["banks".into(), format!("{}", a.banks)],
        vec!["DRAM".into(), "LPDDR4-2400, 16 GB, 1 KB rows".into()],
        vec![
            "timing".into(),
            format!(
                "tCL-tRCD-tRP {}-{}-{}, tRAS {}, tRRD {}, tFAW {}",
                d.timing.cl, d.timing.rcd, d.timing.rp, d.timing.ras, d.timing.rrd, d.timing.faw
            ),
        ],
        vec!["subarrays/bank".into(), "1-2-4-8-16-32-64 (swept)".into()],
        vec![
            "area".into(),
            format!(
                "{:.1} mm²/bank ({:.1} mm² total)",
                a.area_mm2_per_bank,
                a.total_area_mm2()
            ),
        ],
        vec![
            "power".into(),
            format!(
                "{:.1} mW/bank ({:.2} W total)",
                a.power_mw_per_bank,
                a.total_power_w()
            ),
        ],
    ];
    out.push_str(&report::table(&["parameter", "value"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_contains_all_devices_and_na() {
        let s = tab1();
        for d in ["XNX", "TX2", "2080Ti", "Quest Pro"] {
            assert!(s.contains(d), "missing {d}");
        }
        assert!(
            s.contains("N/A"),
            "Quest Pro training time is N/A in the paper"
        );
    }

    #[test]
    fn tab2_matches_paper_values() {
        let rows = tab2_rows();
        let ht = &rows[0];
        assert!(
            (ht.param_mb - 25.0).abs() < 5.0,
            "HT params {:.1} MB",
            ht.param_mb
        );
        assert!((ht.input_mb - 3.0).abs() < 0.1);
        assert!((ht.output_mb - 16.0).abs() < 0.1);
        let mlp = &rows[1];
        assert!(mlp.param_mb < 0.03, "MLP params {:.4} MB", mlp.param_mb);
        assert!((mlp.intermediate_mb - 32.0).abs() < 0.5);
        let mlp_b = &rows[2];
        assert_eq!(mlp_b.input_mb, mlp.output_mb);
        assert_eq!(mlp_b.output_mb, mlp.input_mb);
    }

    #[test]
    fn tab3_mentions_key_parameters() {
        let s = tab3();
        for needle in [
            "200 MHz",
            "2 KB",
            "256x INT32",
            "LPDDR4",
            "3.6 mm²",
            "596.3 mW",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
