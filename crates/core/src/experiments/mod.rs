//! Experiment drivers: one module per table/figure of the paper.
//!
//! Each driver returns plain data structs (so integration tests can assert
//! on shapes) plus a `render()`-style pretty printer used by the
//! `paper_figures` example and the bench harness. The per-experiment index
//! in DESIGN.md maps paper artifacts to these modules.

pub mod cosim;
pub mod extension;
pub mod fig1;
pub mod fig11;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod precision;
pub mod psnr;
pub mod tables;
pub mod traces;
pub mod warmstart;
