//! Scene-dependent lookup traces shared by the hardware experiments.
//!
//! iNGP prunes empty space with an occupancy grid, so the points that
//! actually reach the hash table depend on the scene's density layout. The
//! trace generator emulates that: it samples stratified points along orbit
//! rays and keeps those in occupied space (plus a thin stream of empty
//! probes, as the occupancy grid itself must be maintained). The result is
//! the scene-specific access stream behind the per-scene spread in Fig. 11.

use inerf_encoding::trace::CubeLookup;
use inerf_encoding::{BufferSink, HashGrid, LookupTrace, TraceSink};
use inerf_geom::{Camera, Pose};
use inerf_scenes::{RadianceField, Scene};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Summary statistics of a scene-conditioned access stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneTraceStats {
    /// Points streamed (kept by the emulated occupancy grid).
    pub points: u64,
    /// Fraction of sampled points that were in occupied space.
    pub occupancy: f64,
    /// Fraction of consecutive kept points landing in distinct finest-level
    /// cubes — a spatial-spread measure in `[0, 1]`.
    pub fine_spread: f64,
    /// Distinct finest-level cubes divided by kept points — the working-set
    /// ratio in `[0, 1]`: large surfaces revisit few cubes across rays and
    /// overflow small caches.
    pub unique_fine_ratio: f64,
}

/// A scene-conditioned lookup trace plus its summary statistics — the
/// materialized form kept for tests and offline inspection;
/// [`scene_trace_into`] is the constant-memory streaming path.
#[derive(Debug, Clone)]
pub struct SceneTrace {
    /// The lookup trace (one cube per level per kept point).
    pub trace: LookupTrace,
    /// Points recorded in the trace.
    pub points: u64,
    /// Fraction of sampled points that were in occupied space.
    pub occupancy: f64,
    /// Fraction of consecutive kept points landing in distinct finest-level
    /// cubes.
    pub fine_spread: f64,
    /// Distinct finest-level cubes divided by kept points.
    pub unique_fine_ratio: f64,
}

impl SceneTrace {
    /// The summary statistics alone.
    pub fn stats(&self) -> SceneTraceStats {
        SceneTraceStats {
            points: self.points,
            occupancy: self.occupancy,
            fine_spread: self.fine_spread,
            unique_fine_ratio: self.unique_fine_ratio,
        }
    }
}

/// Streams the scene's access stream into `sink`, sampling orbit rays
/// (with `samples` stratified points each, ray-first order) until at least
/// `target_points` occupied points are collected or a ray budget is
/// exhausted. Does not emit `end_batch` — the caller owns batch
/// boundaries.
///
/// Points in empty space are skipped entirely — iNGP's occupancy grid
/// prevents them from ever reaching the hash table — so the stream is the
/// scene-conditioned access sequence the accelerator actually sees. Apart
/// from the sink the function holds one reused cube buffer: memory is
/// constant in the stream length.
pub fn scene_trace_into(
    scene: &Scene,
    grid: &HashGrid,
    target_points: usize,
    samples: usize,
    seed: u64,
    sink: &mut (impl TraceSink + ?Sized),
) -> SceneTraceStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut kept = 0u64;
    let mut occupied = 0u64;
    let mut total = 0u64;
    let mut last_fine: Option<u64> = None;
    let mut fine_changes = 0u64;
    let mut fine_set = std::collections::BTreeSet::new();
    let mut cubes: Vec<CubeLookup> = Vec::new();
    let center = scene.bounds.center();
    let max_rays = 64 * target_points.div_ceil(samples).max(1);
    let mut r = 0usize;
    while kept < target_points as u64 && r < max_rays {
        let theta = std::f32::consts::TAU * rng.gen::<f32>();
        let phi = 0.15 + 0.5 * rng.gen::<f32>();
        let pose = Pose::orbit(center, 3.2, theta, phi);
        let cam = Camera::new(pose, 64, 64, 0.7);
        let ray = cam.ray_for_pixel(rng.gen_range(0..64), rng.gen_range(0..64));
        r += 1;
        let Some(hit) = scene.bounds.intersect(&ray) else {
            continue;
        };
        for t in ray.stratified_ts(hit.t_near.max(1e-4), hit.t_far, samples, None) {
            total += 1;
            let p = ray.at(t);
            let sample = scene.sample(p, ray.direction);
            if sample.sigma <= 0.05 {
                continue; // occupancy grid skips empty space
            }
            occupied += 1;
            kept += 1;
            grid.cube_lookups_into(scene.bounds.normalize(p), &mut cubes);
            if let Some(fine) = cubes.last() {
                if last_fine != Some(fine.cube_id) {
                    fine_changes += 1;
                    last_fine = Some(fine.cube_id);
                }
                fine_set.insert(fine.cube_id);
            }
            for cube in &cubes {
                sink.push_cube(cube);
            }
            sink.end_point();
        }
    }
    SceneTraceStats {
        points: kept,
        occupancy: if total == 0 {
            0.0
        } else {
            occupied as f64 / total as f64
        },
        fine_spread: if kept == 0 {
            0.0
        } else {
            fine_changes as f64 / kept as f64
        },
        unique_fine_ratio: if kept == 0 {
            0.0
        } else {
            fine_set.len() as f64 / kept as f64
        },
    }
}

/// [`scene_trace_into`] with a materializing [`BufferSink`] — the buffered
/// reference used by tests and offline inspection.
pub fn scene_trace(
    scene: &Scene,
    grid: &HashGrid,
    target_points: usize,
    samples: usize,
    seed: u64,
) -> SceneTrace {
    let mut trace = BufferSink::new();
    let stats = scene_trace_into(scene, grid, target_points, samples, seed, &mut trace);
    SceneTrace {
        trace,
        points: stats.points,
        occupancy: stats.occupancy,
        fine_spread: stats.fine_spread,
        unique_fine_ratio: stats.unique_fine_ratio,
    }
}

/// Maps a scene's access statistics to the GPU locality factor used by the
/// cost model's hash-table steps.
///
/// Scene occupancy is the discriminating statistic: dense scenes (Ship,
/// Materials, Lego) keep many live sample points per ray, so each training
/// batch touches a much larger slice of the hash table and thrashes the
/// small edge-GPU cache; sparse scenes (Mic, Ficus) concentrate their
/// lookups on a small working set. Returns a factor in roughly
/// `[0.8, 2.1]` (1.0 ≈ an average scene).
pub fn gpu_scene_factor(st: &SceneTraceStats) -> f64 {
    (0.7 + 8.0 * st.occupancy).clamp(0.6, 2.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::{HashFunction, HashGridConfig};
    use inerf_scenes::zoo::{self, SceneKind};

    fn grid() -> HashGrid {
        HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 11)
    }

    #[test]
    fn trace_is_nonempty_and_consistent() {
        let scene = zoo::scene(SceneKind::Lego);
        let st = scene_trace(&scene, &grid(), 400, 64, 3);
        assert!(st.points >= 400, "kept {} points", st.points);
        assert_eq!(st.trace.point_count() as u64, st.points);
        assert!(st.occupancy > 0.0 && st.occupancy < 1.0);
        assert!((0.0..=1.0).contains(&st.fine_spread));
    }

    #[test]
    fn traces_differ_across_scenes() {
        let g = grid();
        let a = scene_trace(&zoo::scene(SceneKind::Mic), &g, 400, 64, 3);
        let b = scene_trace(&zoo::scene(SceneKind::Lego), &g, 400, 64, 3);
        // Mic is sparse, Lego is dense: occupancy must differ measurably.
        assert!(
            (a.occupancy - b.occupancy).abs() > 0.01,
            "Mic {} vs Lego {}",
            a.occupancy,
            b.occupancy
        );
    }

    #[test]
    fn factor_in_expected_band() {
        let g = grid();
        for kind in SceneKind::ALL {
            let st = scene_trace(&zoo::scene(kind), &g, 200, 48, 5);
            let f = gpu_scene_factor(&st.stats());
            assert!((0.5..2.5).contains(&f), "{kind}: factor {f}");
        }
    }

    #[test]
    fn streamed_scene_trace_matches_buffered() {
        let g = grid();
        let scene = zoo::scene(SceneKind::Hotdog);
        let buffered = scene_trace(&scene, &g, 200, 32, 7);
        let mut sink = inerf_encoding::CountingSink::default();
        let stats = scene_trace_into(&scene, &g, 200, 32, 7, &mut sink);
        assert_eq!(stats, buffered.stats());
        assert_eq!(sink.points, buffered.points);
        assert_eq!(sink.cubes as usize, buffered.trace.cubes().len());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid();
        let scene = zoo::scene(SceneKind::Ship);
        let a = scene_trace(&scene, &g, 200, 32, 9);
        let b = scene_trace(&scene, &g, 200, 32, 9);
        assert_eq!(a.points, b.points);
        assert_eq!(a.trace, b.trace);
    }
}
