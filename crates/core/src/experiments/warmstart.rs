//! Warm-start fine-tuning from a crash-safe checkpoint.
//!
//! The on-device story the paper motivates — reconstructing a scene the
//! user is *still inside* — implies scenes that drift: furniture moves,
//! lighting changes. With checkpoints, the accelerator does not retrain
//! from scratch; it resumes the converged snapshot and fine-tunes on the
//! drifted scene. This experiment quantifies the payoff: pretrain on a
//! base scene, snapshot, perturb the scene geometry, then compare
//! fine-tuning the resumed model against training cold — same budget —
//! and count how many cold iterations the perturbed scene needs before
//! it catches up with the warm start.

use inerf_geom::Vec3;
use inerf_scenes::field::Primitive;
use inerf_scenes::{zoo, Dataset, DatasetConfig, Scene};
use inerf_snapshot::MemIo;
use inerf_trainer::{IngpModel, ModelConfig, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};

use crate::report;

/// Outcome of the warm-vs-cold fine-tune comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartReport {
    /// Scene the snapshot was pretrained on.
    pub scene: String,
    /// Iterations of pretraining baked into the checkpoint.
    pub pretrain_iterations: usize,
    /// Fine-tune budget given to both the warm and cold runs.
    pub finetune_iterations: usize,
    /// PSNR on the perturbed scene before any fine-tuning (the resumed
    /// model evaluated as-is — how much the drift hurt).
    pub resumed_psnr: f64,
    /// PSNR after fine-tuning the resumed checkpoint.
    pub warm_psnr: f64,
    /// PSNR after spending the same budget from random initialization.
    pub cold_psnr: f64,
    /// Iterations a cold run needed to first match `warm_psnr`, if it
    /// managed within the search cap.
    pub cold_iterations_to_match: Option<usize>,
    /// The search cap used for `cold_iterations_to_match`.
    pub cold_search_cap: usize,
}

/// Shifts every primitive of `scene` by `delta` — the "furniture moved"
/// drift: same shapes, same colors, new positions.
pub fn perturb_scene(scene: &Scene, delta: Vec3) -> Scene {
    let primitives = scene
        .primitives()
        .iter()
        .map(|prim| match *prim {
            Primitive::Blob(mut b) => {
                b.center += delta;
                Primitive::Blob(b)
            }
            Primitive::Box(mut b) => {
                b.center += delta;
                Primitive::Box(b)
            }
            Primitive::Torus(mut t) => {
                t.center += delta;
                Primitive::Torus(t)
            }
        })
        .collect();
    Scene::new(format!("{}-drifted", scene.name), scene.bounds, primitives)
}

fn fresh(cfg: TrainConfig) -> Trainer<IngpModel> {
    Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 11), cfg, 5)
}

/// Runs the experiment at integration-test scale: tiny model, tiny
/// datasets, a handful of iterations — the shape of the result matters,
/// not wall-clock realism.
pub fn run() -> WarmStartReport {
    let cfg = TrainConfig::tiny();
    let base_scene = zoo::scene(zoo::SceneKind::Mic);
    let drifted_scene = perturb_scene(&base_scene, Vec3::new(0.06, -0.04, 0.05));
    let base: Dataset = DatasetConfig::tiny().generate(&base_scene);
    let drifted: Dataset = DatasetConfig::tiny().generate(&drifted_scene);

    let pretrain_iterations = 24;
    let finetune_iterations = 8;
    let cold_search_cap = 4 * finetune_iterations;

    // Pretrain on the base scene and checkpoint — through the same
    // atomic write path a real deployment would use, just in memory.
    let mut io = MemIo::default();
    {
        let mut pre = fresh(cfg);
        pre.train(&base, pretrain_iterations);
        pre.save_checkpoint_to(&mut io, 1)
            .expect("in-memory checkpoint cannot fail");
    }

    // Warm path: resume the snapshot, fine-tune on the drifted scene.
    let mut warm = Trainer::resume_from_io(&io, cfg).expect("checkpoint written above");
    let resumed_psnr = warm.eval_psnr(&drifted);
    warm.train(&drifted, finetune_iterations);
    let warm_psnr = warm.eval_psnr(&drifted);

    // Cold path: same budget from scratch.
    let mut cold = fresh(cfg);
    cold.train(&drifted, finetune_iterations);
    let cold_psnr = cold.eval_psnr(&drifted);

    // How long until cold catches up? Continue the same cold trainer,
    // probing after each iteration up to the cap.
    let mut cold_iterations_to_match = if cold_psnr >= warm_psnr {
        Some(finetune_iterations)
    } else {
        None
    };
    let mut spent = finetune_iterations;
    while cold_iterations_to_match.is_none() && spent < cold_search_cap {
        cold.train(&drifted, 1);
        spent += 1;
        if cold.eval_psnr(&drifted) >= warm_psnr {
            cold_iterations_to_match = Some(spent);
        }
    }

    WarmStartReport {
        scene: base_scene.name,
        pretrain_iterations,
        finetune_iterations,
        resumed_psnr,
        warm_psnr,
        cold_psnr,
        cold_iterations_to_match,
        cold_search_cap,
    }
}

/// Pretty-prints the comparison.
pub fn render(r: &WarmStartReport) -> String {
    let mut out = format!(
        "Warm-start fine-tune on drifted '{}' (pretrained {} iters, budget {} iters)\n",
        r.scene, r.pretrain_iterations, r.finetune_iterations
    );
    let rows = vec![
        vec![
            "resumed, no fine-tune".to_string(),
            report::f(r.resumed_psnr, 2),
        ],
        vec![
            "warm (resume + budget)".to_string(),
            report::f(r.warm_psnr, 2),
        ],
        vec!["cold (budget only)".to_string(), report::f(r.cold_psnr, 2)],
    ];
    out.push_str(&report::table(&["run", "PSNR (dB)"], &rows));
    match r.cold_iterations_to_match {
        Some(n) => out.push_str(&format!(
            "cold run matched the warm start after {n} iterations ({}x the budget)\n",
            report::f(n as f64 / r.finetune_iterations as f64, 1)
        )),
        None => out.push_str(&format!(
            "cold run did not match the warm start within {} iterations\n",
            r.cold_search_cap
        )),
    }
    out
}
