//! Extension beyond the paper: predicting the Quest Pro.
//!
//! Tab. I lists the Meta Quest Pro's Adreno 650 GPU but reports its iNGP
//! training time as N/A — the motivating device the paper never measures.
//! With the calibrated cost model in place, we can fill that cell in, and
//! answer the question the introduction poses: what would instant on-device
//! reconstruction cost on the actual VR headset, with and without the NMP
//! accelerator?

use crate::report;
use inerf_encoding::HashFunction;
use inerf_gpu::{GpuSpec, TrainingCost};
use inerf_trainer::ModelConfig;
use serde::{Deserialize, Serialize};

/// The Quest Pro prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestProPrediction {
    /// Predicted iNGP training time per scene on the Quest Pro GPU (s).
    pub gpu_seconds: f64,
    /// Predicted training energy on the GPU (J).
    pub gpu_joules: f64,
    /// Battery share: energy as a fraction of a 20.58 Wh Quest Pro battery.
    pub gpu_battery_fraction: f64,
    /// NMP accelerator time for the same workload (s) — from the Fig. 11
    /// average.
    pub accel_seconds: f64,
    /// NMP accelerator energy (J).
    pub accel_joules: f64,
    /// Accelerator battery share.
    pub accel_battery_fraction: f64,
}

/// Quest Pro battery capacity in joules (20.58 Wh).
pub const QUEST_PRO_BATTERY_J: f64 = 20.58 * 3600.0;

/// Predicts per-scene training cost on the Quest Pro and compares it with
/// the NMP accelerator (`accel_seconds`/`accel_joules` from a Fig. 11 run;
/// the average-scene values are fine).
pub fn predict(accel_seconds: f64, accel_joules: f64) -> QuestProPrediction {
    let model = ModelConfig::paper(HashFunction::Original);
    let cost = TrainingCost::estimate(
        &GpuSpec::quest_pro(),
        &model,
        super::fig1::PAPER_BATCH,
        super::fig1::PAPER_ITERATIONS,
        1.0,
    );
    QuestProPrediction {
        gpu_seconds: cost.total_seconds,
        gpu_joules: cost.total_joules,
        gpu_battery_fraction: cost.total_joules / QUEST_PRO_BATTERY_J,
        accel_seconds,
        accel_joules,
        accel_battery_fraction: accel_joules / QUEST_PRO_BATTERY_J,
    }
}

/// Pretty-prints the prediction.
pub fn render(p: &QuestProPrediction) -> String {
    let mut out =
        String::from("Extension: filling in Tab. I's N/A — iNGP training on the Meta Quest Pro\n");
    let rows = vec![
        vec![
            "Quest Pro GPU (predicted)".to_string(),
            report::f(p.gpu_seconds, 0),
            report::f(p.gpu_joules / 1000.0, 1),
            format!("{:.0}%", 100.0 * p.gpu_battery_fraction),
        ],
        vec![
            "Instant-NeRF NMP".to_string(),
            report::f(p.accel_seconds, 0),
            report::f(p.accel_joules / 1000.0, 1),
            format!("{:.1}%", 100.0 * p.accel_battery_fraction),
        ],
    ];
    out.push_str(&report::table(
        &["platform", "time (s)", "energy (kJ)", "battery"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quest_pro_cannot_train_instantly() {
        // The motivating gap: hours of training and a large battery bite on
        // the headset GPU.
        let p = predict(300.0, 3000.0);
        assert!(
            p.gpu_seconds > 3600.0,
            "predicted {:.0} s should exceed an hour",
            p.gpu_seconds
        );
        assert!(
            p.gpu_battery_fraction > 0.2,
            "battery share {:.2}",
            p.gpu_battery_fraction
        );
    }

    #[test]
    fn nmp_makes_it_practical() {
        let p = predict(300.0, 3000.0);
        assert!(p.accel_seconds < p.gpu_seconds / 10.0);
        assert!(p.accel_battery_fraction < 0.1);
    }

    #[test]
    fn render_shows_both_platforms() {
        let s = render(&predict(300.0, 3000.0));
        assert!(s.contains("Quest Pro"));
        assert!(s.contains("Instant-NeRF NMP"));
    }
}
