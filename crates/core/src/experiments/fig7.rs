//! Fig. 7: cube sharing along rays (a) and effective memory-bandwidth
//! improvement per level (b).

use crate::report;
use inerf_encoding::locality::LocalitySink;
use inerf_encoding::requests::{effective_bandwidth_improvement, RegisterCacheSink};
use inerf_encoding::{HashFunction, HashGrid, HashGridConfig};
use inerf_geom::{Aabb, Ray, Vec3};
use inerf_trainer::streaming::{build_point_batch, stream_batch, StreamingOrder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Fig. 7 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// (a) mean number of consecutive points sharing one cube, per level.
    pub sharing_per_level: Vec<f64>,
    /// (b) effective memory-bandwidth improvement per level of
    /// Morton + ray-first over original + random.
    pub bandwidth_improvement: Vec<f64>,
}

fn orbit_rays(n: usize, seed: u64) -> Vec<Ray> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let origin = Vec3::new(
                3.0 * theta.cos(),
                rng.gen_range(-0.5..0.5),
                3.0 * theta.sin(),
            );
            Ray::new(
                origin,
                -origin + Vec3::new(rng.gen_range(-0.3..0.3), 0.0, 0.0),
            )
        })
        .collect()
}

/// Runs the Fig. 7 experiment with `rays` rays × `samples` points: both
/// point batches stream straight into the locality / register-cache sinks
/// (one fan-out pass per configuration, no materialized traces).
pub fn run(rays: usize, samples: usize, seed: u64) -> Fig7 {
    let bounds = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
    let ray_set = orbit_rays(rays, seed);
    let morton = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), seed);
    let original = HashGrid::new(HashGridConfig::paper(HashFunction::Original), seed);
    let levels = morton.config().levels;

    let ours_batch = build_point_batch(&ray_set, &bounds, samples, StreamingOrder::RayFirst, seed);
    let base_batch = build_point_batch(&ray_set, &bounds, samples, StreamingOrder::Random, seed);
    let mut ours_sinks = (LocalitySink::new(levels), RegisterCacheSink::new(levels));
    stream_batch(&morton, &ours_batch, &mut ours_sinks);
    let mut base_sink = RegisterCacheSink::new(levels);
    stream_batch(&original, &base_batch, &mut base_sink);

    Fig7 {
        sharing_per_level: ours_sinks.0.sharing_per_level(),
        bandwidth_improvement: effective_bandwidth_improvement(
            &base_sink.stats(),
            &ours_sinks.1.stats(),
        ),
    }
}

/// Pretty-prints the figure.
pub fn render(fig: &Fig7) -> String {
    let mut out = String::from("Fig. 7(a): points sharing the same cube per level\n");
    let rows: Vec<Vec<String>> = fig
        .sharing_per_level
        .iter()
        .zip(&fig.bandwidth_improvement)
        .enumerate()
        .map(|(l, (s, b))| {
            vec![
                l.to_string(),
                report::f(*s, 2),
                format!("{}x", report::f(*b, 2)),
            ]
        })
        .collect();
    out.push_str(&report::table(&["level", "sharing", "eff. BW gain"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig7 {
        run(24, 128, 5)
    }

    #[test]
    fn sharing_decays_from_coarse_to_fine() {
        // Fig. 7(a): ~12 points share a cube at level 0, ~none at level 15.
        let f = fig();
        assert_eq!(f.sharing_per_level.len(), 16);
        assert!(
            f.sharing_per_level[0] > 4.0,
            "coarse sharing {}",
            f.sharing_per_level[0]
        );
        assert!(
            f.sharing_per_level[15] < 2.0,
            "fine sharing {}",
            f.sharing_per_level[15]
        );
        assert!(f.sharing_per_level[0] > 2.0 * f.sharing_per_level[15]);
    }

    #[test]
    fn bandwidth_improvement_in_paper_band() {
        // Fig. 7(b): 3.27x–35.9x across levels. Allow generous slack while
        // requiring every level to improve and the peak to be large.
        let f = fig();
        for (l, &x) in f.bandwidth_improvement.iter().enumerate() {
            assert!(x > 1.5, "level {l}: improvement {x:.2}x too small");
            assert!(
                x < 300.0,
                "level {l}: improvement {x:.2}x implausibly large"
            );
        }
        let max = f
            .bandwidth_improvement
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let min = f
            .bandwidth_improvement
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(max > 5.0, "peak improvement {max:.1}x");
        assert!(max / min > 2.0, "improvement should vary across levels");
    }

    #[test]
    fn render_lists_all_levels() {
        let s = render(&fig());
        assert!(s.contains("15"));
        assert!(s.contains('x'));
    }
}
