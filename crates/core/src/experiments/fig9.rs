//! Fig. 9: normalized bank conflicts per hash-table level vs subarray count.

use crate::report;
use inerf_accel::{
    AccelConfig, HashTableMapping, MappingScheme, RequestConsumer, RequestSink, RequestStream,
};
use inerf_dram::{DramSim, Request};
use inerf_encoding::trace::CubeLookup;
use inerf_encoding::{HashFunction, HashGrid, HashGridConfig, TraceSink};
use inerf_geom::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The subarray counts swept in Tab. III / Fig. 9.
pub const SUBARRAY_SWEEP: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The Fig. 9 surface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// `conflicts[s][l]` = normalized bank conflicts at `SUBARRAY_SWEEP[s]`
    /// subarrays for level `l` (normalized to the global maximum = 1.0).
    pub normalized_conflicts: Vec<Vec<f64>>,
    /// Raw conflict counts with the same indexing.
    pub raw_conflicts: Vec<Vec<u64>>,
}

/// An incremental simulator whose streaming clock advances a fixed cadence
/// per request: the 32-point-parallel front end issues at the sustainable
/// tFAW-limited spacing (~3 DRAM cycles), so only genuine serialization
/// shows up as a conflict.
struct CadencedSim {
    sim: DramSim,
    cadence: u64,
}

impl RequestConsumer for CadencedSim {
    fn accept(&mut self, req: Request) {
        self.sim.push_request(&req);
        self.sim.tick(self.cadence);
    }
}

/// Routes each cube event to its level's private request stream +
/// simulator lane, so one pass over the point stream produces every
/// level's isolated conflict count — the streamed replacement for
/// materializing and re-filtering a full trace per level.
struct LevelDemux {
    lanes: Vec<RequestSink<CadencedSim>>,
}

impl TraceSink for LevelDemux {
    fn push_cube(&mut self, cube: &CubeLookup) {
        if let Some(lane) = self.lanes.get_mut(cube.level as usize) {
            lane.push_cube(cube);
        }
    }
}

/// Fans one cube stream out to every subarray configuration's demux, so
/// the whole Tab. III sweep consumes a single pass over the workload.
struct SweepFan {
    configs: Vec<LevelDemux>,
}

impl TraceSink for SweepFan {
    fn push_cube(&mut self, cube: &CubeLookup) {
        for demux in &mut self.configs {
            demux.push_cube(cube);
        }
    }
}

/// Runs the Fig. 9 sweep with a ray-first workload of `rays × samples`
/// points (the paper processes 32 points in parallel; request interleaving
/// is captured by the stream order). The workload is hashed once and
/// streamed to every sweep configuration simultaneously, at constant
/// memory.
pub fn run(rays: usize, samples: usize, seed: u64) -> Fig9 {
    let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), seed);
    let accel = AccelConfig::paper();
    let levels = grid.config().levels;
    let mut fan = SweepFan {
        configs: SUBARRAY_SWEEP
            .iter()
            .map(|&sa| {
                let dram = accel.nmp_dram(sa);
                let mapping = HashTableMapping::paper(MappingScheme::Clustered, sa);
                LevelDemux {
                    lanes: (0..levels)
                        .map(|_| {
                            RequestSink::new(
                                RequestStream::new(&mapping, &dram, false),
                                CadencedSim {
                                    sim: DramSim::new(dram),
                                    cadence: 3,
                                },
                            )
                        })
                        .collect(),
                }
            })
            .collect(),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..rays {
        let y: f32 = rng.gen();
        let z: f32 = rng.gen();
        for s in 0..samples {
            let x = (s as f32 + 0.5) / samples as f32;
            grid.stream_point(Vec3::new(x, y, z), &mut fan);
        }
    }
    let raw: Vec<Vec<u64>> = fan
        .configs
        .iter_mut()
        .map(|demux| {
            demux
                .lanes
                .iter_mut()
                .map(|lane| {
                    lane.end_batch();
                    lane.consumer_mut().sim.drain_stats().bank_conflicts
                })
                .collect()
        })
        .collect();
    let max = raw.iter().flatten().copied().max().unwrap_or(1).max(1) as f64;
    let normalized = raw
        .iter()
        .map(|row| row.iter().map(|&c| c as f64 / max).collect())
        .collect();
    Fig9 {
        normalized_conflicts: normalized,
        raw_conflicts: raw,
    }
}

/// Pretty-prints the figure.
pub fn render(fig: &Fig9) -> String {
    let mut out = String::from("Fig. 9: normalized bank conflicts per level vs subarrays\n");
    let levels = fig.normalized_conflicts[0].len();
    let headers: Vec<String> = std::iter::once("subarrays".to_string())
        .chain((0..levels).map(|l| format!("L{l}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = SUBARRAY_SWEEP
        .iter()
        .zip(&fig.normalized_conflicts)
        .map(|(sa, row)| {
            std::iter::once(sa.to_string())
                .chain(row.iter().map(|v| report::f(*v, 3)))
                .collect()
        })
        .collect();
    out.push_str(&report::table(&header_refs, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig9 {
        run(8, 64, 3)
    }

    #[test]
    fn subarrays_slash_conflicts_at_coarse_levels() {
        // The Fig. 9 shape: subarray parallelism nearly eliminates conflicts
        // at the coarse levels but the finest levels stay conflict-heavy —
        // the imbalance that motivates inter-level clustering (Sec. IV-B).
        let f = fig();
        let one = &f.raw_conflicts[0]; // 1 subarray
        let many = &f.raw_conflicts[6]; // 64 subarrays
        let coarse_one: u64 = one[..6].iter().sum();
        let coarse_many: u64 = many[..6].iter().sum();
        assert!(
            (coarse_many as f64) < 0.5 * coarse_one as f64,
            "coarse-level conflicts should drop >2x: {coarse_many} vs {coarse_one}"
        );
        // Fine levels keep a large share of their conflicts.
        let fine_one: u64 = one[13..].iter().sum();
        let fine_many: u64 = many[13..].iter().sum();
        assert!(
            (fine_many as f64) > 0.3 * fine_one as f64,
            "fine levels should stay conflict-heavy: {fine_many} vs {fine_one}"
        );
        // Overall, more subarrays help.
        let t1: u64 = one.iter().sum();
        let t64: u64 = many.iter().sum();
        assert!(t64 < t1, "64 subarrays {t64} vs 1 subarray {t1}");
    }

    #[test]
    fn conflicts_unbalanced_across_levels() {
        // The observation motivating inter-level clustering: some levels
        // conflict far more than others.
        let f = fig();
        let row = &f.raw_conflicts[3]; // 8 subarrays
        let max = *row.iter().max().expect("fig9 rows are nonempty");
        let min = *row.iter().min().expect("fig9 rows are nonempty");
        assert!(max > 3 * (min + 1), "levels too balanced: {row:?}");
    }

    #[test]
    fn normalization_caps_at_one() {
        let f = fig();
        let mut saw_one = false;
        for row in &f.normalized_conflicts {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
                if (v - 1.0).abs() < 1e-12 {
                    saw_one = true;
                }
            }
        }
        assert!(saw_one, "the maximum cell must normalize to exactly 1");
    }

    #[test]
    fn render_has_sweep_rows() {
        let s = render(&fig());
        for sa in SUBARRAY_SWEEP {
            assert!(s.contains(&format!("\n{sa}  ")) || s.contains(&format!("{sa} ")));
        }
    }
}
