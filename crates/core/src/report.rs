//! Minimal fixed-width table rendering for experiment output.

/// Renders a table with a header row, returning the formatted string.
///
/// # Example
///
/// ```
/// use instant_nerf::report::table;
/// let s = table(&["scene", "psnr"], &[vec!["Lego".into(), "32.8".into()]]);
/// assert!(s.contains("Lego"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let s = table(
            &["a", "long_header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["100".into(), "200000000".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[3].contains("200000000"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(std::f64::consts::PI, 2), "3.14");
        assert_eq!(f(10.0, 0), "10");
    }
}
