//! **Instant-NeRF** — a full reproduction of *"Instant-NeRF: Instant
//! On-Device Neural Radiance Field Training via Algorithm-Accelerator
//! Co-Designed Near-Memory Processing"* (DAC 2023).
//!
//! This facade crate re-exports the workspace and hosts the experiment
//! drivers that regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md for the system inventory and EXPERIMENTS.md
//! for paper-vs-measured results).
//!
//! # Layered architecture
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | math | [`geom`] | vectors, rays, cameras, Morton codes, grids |
//! | data | [`scenes`] | procedural scenes, oracle renderer, datasets, PSNR |
//! | algorithm | [`encoding`], [`mlp`], [`render`], [`trainer`] | hash encoding, MLPs, volume rendering, training loop, baselines |
//! | hardware | [`dram`], [`accel`], [`gpu`] | LPDDR4 timing simulator, NMP accelerator model, GPU cost model |
//!
//! # Quickstart
//!
//! ```
//! use instant_nerf::prelude::*;
//!
//! // Train a small Instant-NeRF on a procedural scene and measure PSNR.
//! let scene = zoo::scene(SceneKind::Lego);
//! let dataset = DatasetConfig::tiny().generate(&scene);
//! let model = IngpModel::new(ModelConfig::tiny(), 42);
//! let mut trainer = Trainer::new(model, TrainConfig::tiny(), 7);
//! trainer.train(&dataset, 20);
//! let psnr = trainer.eval_psnr(&dataset);
//! assert!(psnr.is_finite());
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub use inerf_accel as accel;
pub use inerf_dram as dram;
pub use inerf_encoding as encoding;
pub use inerf_geom as geom;
pub use inerf_gpu as gpu;
pub use inerf_mlp as mlp;
pub use inerf_render as render;
pub use inerf_scenes as scenes;
pub use inerf_trainer as trainer;

pub mod experiments;
pub mod report;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use inerf_accel::{AccelConfig, HashTableMapping, MappingScheme, PipelineModel};
    pub use inerf_dram::{DramConfig, DramSim};
    pub use inerf_encoding::{HashFunction, HashGrid, HashGridConfig};
    pub use inerf_geom::{Aabb, Camera, Pose, Ray, Vec3};
    pub use inerf_gpu::{GpuSpec, TrainingCost};
    pub use inerf_scenes::zoo;
    pub use inerf_scenes::{Dataset, DatasetConfig, Image, SceneKind};
    pub use inerf_trainer::{
        IngpModel, ModelConfig, StreamingOrder, TrainConfig, TrainableField, Trainer,
    };
}
