//! Batched-vs-scalar engine equivalence and thread-count determinism.
//!
//! The batched SoA engine must be a pure *execution-strategy* change: same
//! sampled points, same lookup traffic, losses and gradients within 1e-5 of
//! the per-point reference, and bitwise-identical trajectories at any
//! thread count.

use inerf_geom::{Aabb, Ray, Vec3};
use inerf_scenes::{zoo, DatasetConfig};
use inerf_trainer::{Engine, IngpModel, ModelConfig, TrainConfig, Trainer};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bounds() -> Aabb {
    Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
}

/// Random rays shot from a sphere of radius 2.5 toward random targets
/// inside the bounds, plus random target colors.
fn random_rays(seed: u64, count: usize) -> (Vec<Ray>, Vec<Vec3>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rays = Vec::with_capacity(count);
    let mut targets = Vec::with_capacity(count);
    for _ in 0..count {
        let origin = Vec3::new(
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
        )
        .normalized()
            * 2.5;
        let aim = Vec3::new(
            rng.gen_range(-0.8f32..0.8),
            rng.gen_range(-0.8f32..0.8),
            rng.gen_range(-0.8f32..0.8),
        );
        rays.push(Ray::new(origin, (aim - origin).normalized()));
        targets.push(Vec3::new(rng.gen(), rng.gen(), rng.gen()));
    }
    (rays, targets)
}

fn assert_close(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * x.abs().max(1.0),
            "{label}[{i}]: scalar {x} vs batched {y}"
        );
    }
}

fn trainer_pair(model_seed: u64, trainer_seed: u64) -> (Trainer<IngpModel>, Trainer<IngpModel>) {
    let scalar = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), model_seed),
        TrainConfig::tiny().with_engine(Engine::Scalar),
        trainer_seed,
    );
    let batched = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), model_seed),
        TrainConfig::tiny().with_engine(Engine::Batched),
        trainer_seed,
    )
    .with_threads(4);
    (scalar, batched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random ray batches, the two engines must sample identical point
    /// streams (same model-query and lookup-trace counts) and agree on the
    /// loss and on every parameter gradient to 1e-5.
    #[test]
    fn batched_engine_matches_scalar_reference(seed in 0u64..1000) {
        let (rays, targets) = random_rays(seed, 24);
        let (mut scalar, mut batched) = trainer_pair(seed ^ 0xAB, seed ^ 0x5150);
        let loss_s = scalar.train_on_rays(&rays, &targets, &bounds());
        let loss_b = batched.train_on_rays(&rays, &targets, &bounds());
        prop_assert!(
            (loss_s - loss_b).abs() <= 1e-5 * loss_s.abs().max(1.0),
            "loss diverged: scalar {loss_s} vs batched {loss_b}"
        );
        // Identical sampled-point counts — and, because both engines encode
        // the same points in the same order, identical hash-table lookup
        // (and therefore DRAM request) counts: one cube per level per point.
        prop_assert_eq!(scalar.points_queried(), batched.points_queried());
        assert_close(
            "grid gradients",
            scalar.model().grid().gradients(),
            batched.model().grid().gradients(),
        );
        assert_close(
            "density MLP gradients",
            &scalar.model().density_mlp().gradient_vec(),
            &batched.model().density_mlp().gradient_vec(),
        );
        assert_close(
            "color MLP gradients",
            &scalar.model().color_mlp().gradient_vec(),
            &batched.model().color_mlp().gradient_vec(),
        );
        // A second iteration exercises the post-optimizer-step state.
        let loss_s2 = scalar.train_on_rays(&rays, &targets, &bounds());
        let loss_b2 = batched.train_on_rays(&rays, &targets, &bounds());
        prop_assert!(
            (loss_s2 - loss_b2).abs() <= 1e-4 * loss_s2.abs().max(1.0),
            "second-iteration loss diverged: {loss_s2} vs {loss_b2}"
        );
    }
}

#[test]
fn engines_agree_under_occupancy_filtering() {
    // The occupancy path exercises the per-sample-dt compositing variant.
    let (rays, targets) = random_rays(77, 32);
    let (scalar, batched) = trainer_pair(3, 9);
    let mut scalar = scalar.with_occupancy_grid(8, 0.05, 4);
    let mut batched = batched.with_occupancy_grid(8, 0.05, 4);
    for round in 0..3 {
        let loss_s = scalar.train_on_rays(&rays, &targets, &bounds());
        let loss_b = batched.train_on_rays(&rays, &targets, &bounds());
        assert!(
            (loss_s - loss_b).abs() <= 1e-4 * loss_s.abs().max(1.0),
            "round {round}: scalar {loss_s} vs batched {loss_b}"
        );
        assert_eq!(scalar.points_queried(), batched.points_queried());
    }
}

#[test]
fn same_seed_same_trajectory_at_1_2_and_8_threads() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let run = |threads: usize| -> Vec<f64> {
        let mut trainer = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 11),
            TrainConfig::tiny(),
            4,
        )
        .with_threads(threads);
        assert_eq!(trainer.threads(), threads);
        trainer.train(&dataset, 8).losses
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    // Bitwise equality: chunk boundaries and reduction orders are fixed, so
    // the worker count must not influence a single bit of the trajectory.
    assert_eq!(one, two, "1-thread vs 2-thread trajectories diverged");
    assert_eq!(one, eight, "1-thread vs 8-thread trajectories diverged");
}

#[test]
fn render_views_identical_across_thread_counts() {
    let scene = zoo::scene(zoo::SceneKind::Hotdog);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let render = |threads: usize| {
        let mut trainer = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 5),
            TrainConfig::tiny(),
            2,
        )
        .with_threads(threads);
        trainer.train(&dataset, 5);
        trainer
            .render_view(&dataset.test_views[0].camera, &dataset.bounds)
            .pixels()
            .to_vec()
    };
    assert_eq!(render(1), render(8));
}
