//! Batched-vs-scalar engine equivalence and thread-count determinism.
//!
//! The batched SoA engine must be a pure *execution-strategy* change: same
//! sampled points, same lookup traffic, losses and gradients within 1e-5 of
//! the per-point reference, and bitwise-identical trajectories at any
//! thread count.

use inerf_encoding::requests::{RegisterCacheSink, StreamStats};
use inerf_encoding::CountingSink;
use inerf_geom::{Aabb, Ray, Vec3};
use inerf_scenes::{zoo, DatasetConfig};
use inerf_simd::Backend;
use inerf_trainer::{Engine, IngpModel, ModelConfig, TrainConfig, Trainer};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serializes tests that mutate the process-global SIMD backend choice.
static BACKEND_GUARD: Mutex<()> = Mutex::new(());

fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    let prev = inerf_simd::force_backend(backend);
    let out = f();
    inerf_simd::force_backend(prev);
    out
}

fn bounds() -> Aabb {
    Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
}

/// Random rays shot from a sphere of radius 2.5 toward random targets
/// inside the bounds, plus random target colors.
fn random_rays(seed: u64, count: usize) -> (Vec<Ray>, Vec<Vec3>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rays = Vec::with_capacity(count);
    let mut targets = Vec::with_capacity(count);
    for _ in 0..count {
        let origin = Vec3::new(
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
        )
        .normalized()
            * 2.5;
        let aim = Vec3::new(
            rng.gen_range(-0.8f32..0.8),
            rng.gen_range(-0.8f32..0.8),
            rng.gen_range(-0.8f32..0.8),
        );
        rays.push(Ray::new(origin, (aim - origin).normalized()));
        targets.push(Vec3::new(rng.gen(), rng.gen(), rng.gen()));
    }
    (rays, targets)
}

fn assert_close(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * x.abs().max(1.0),
            "{label}[{i}]: scalar {x} vs batched {y}"
        );
    }
}

fn trainer_pair(model_seed: u64, trainer_seed: u64) -> (Trainer<IngpModel>, Trainer<IngpModel>) {
    let scalar = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), model_seed),
        TrainConfig::tiny().with_engine(Engine::Scalar),
        trainer_seed,
    );
    let batched = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), model_seed),
        TrainConfig::tiny().with_engine(Engine::Batched),
        trainer_seed,
    )
    .with_threads(4);
    (scalar, batched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random ray batches, the two engines must sample identical point
    /// streams (same model-query and lookup-trace counts) and agree on the
    /// loss and on every parameter gradient to 1e-5.
    #[test]
    fn batched_engine_matches_scalar_reference(seed in 0u64..1000) {
        let (rays, targets) = random_rays(seed, 24);
        let (mut scalar, mut batched) = trainer_pair(seed ^ 0xAB, seed ^ 0x5150);
        let mut sink_s = CountingSink::default();
        let mut sink_b = CountingSink::default();
        let loss_s = scalar.train_on_rays_with_sink(&rays, &targets, &bounds(), Some(&mut sink_s));
        let loss_b = batched.train_on_rays_with_sink(&rays, &targets, &bounds(), Some(&mut sink_b));
        // The fused batched pipeline must put exactly the same lookup (and
        // therefore DRAM request) stream on the cosim bus as the unfused
        // per-point reference.
        prop_assert_eq!(sink_s, sink_b);
        prop_assert!(
            (loss_s - loss_b).abs() <= 1e-5 * loss_s.abs().max(1.0),
            "loss diverged: scalar {loss_s} vs batched {loss_b}"
        );
        // Identical sampled-point counts — and, because both engines encode
        // the same points in the same order, identical hash-table lookup
        // (and therefore DRAM request) counts: one cube per level per point.
        prop_assert_eq!(scalar.points_queried(), batched.points_queried());
        assert_close(
            "grid gradients",
            scalar.model().grid().gradients(),
            batched.model().grid().gradients(),
        );
        assert_close(
            "density MLP gradients",
            &scalar.model().density_mlp().gradient_vec(),
            &batched.model().density_mlp().gradient_vec(),
        );
        assert_close(
            "color MLP gradients",
            &scalar.model().color_mlp().gradient_vec(),
            &batched.model().color_mlp().gradient_vec(),
        );
        // A second iteration exercises the post-optimizer-step state.
        let loss_s2 = scalar.train_on_rays(&rays, &targets, &bounds());
        let loss_b2 = batched.train_on_rays(&rays, &targets, &bounds());
        prop_assert!(
            (loss_s2 - loss_b2).abs() <= 1e-4 * loss_s2.abs().max(1.0),
            "second-iteration loss diverged: {loss_s2} vs {loss_b2}"
        );
    }
}

#[test]
fn engines_agree_under_occupancy_filtering() {
    // The occupancy path exercises the per-sample-dt compositing variant.
    let (rays, targets) = random_rays(77, 32);
    let (scalar, batched) = trainer_pair(3, 9);
    let mut scalar = scalar.with_occupancy_grid(8, 0.05, 4);
    let mut batched = batched.with_occupancy_grid(8, 0.05, 4);
    for round in 0..3 {
        let loss_s = scalar.train_on_rays(&rays, &targets, &bounds());
        let loss_b = batched.train_on_rays(&rays, &targets, &bounds());
        assert!(
            (loss_s - loss_b).abs() <= 1e-4 * loss_s.abs().max(1.0),
            "round {round}: scalar {loss_s} vs batched {loss_b}"
        );
        assert_eq!(scalar.points_queried(), batched.points_queried());
    }
}

#[test]
fn same_seed_same_trajectory_at_1_2_and_8_threads() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let run = |threads: usize| -> Vec<f64> {
        let mut trainer = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 11),
            TrainConfig::tiny(),
            4,
        )
        .with_threads(threads);
        assert_eq!(trainer.threads(), threads);
        trainer.train(&dataset, 8).losses
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    // Bitwise equality: chunk boundaries and reduction orders are fixed, so
    // the worker count must not influence a single bit of the trajectory.
    assert_eq!(one, two, "1-thread vs 2-thread trajectories diverged");
    assert_eq!(one, eight, "1-thread vs 8-thread trajectories diverged");
}

/// Everything a training run can observably produce, bit-exact: loss
/// trajectories, final-iteration gradients, an evaluation render, and the
/// DRAM-side statistics of the streamed lookup trace.
#[derive(Debug, PartialEq)]
struct BackendFingerprint {
    losses: Vec<u64>,
    occ_losses: Vec<u64>,
    psnr: u64,
    trace_points: u64,
    trace_cubes: u64,
    dram: StreamStats,
    grid_grads: Vec<u32>,
    density_grads: Vec<u32>,
    color_grads: Vec<u32>,
}

/// One fixed training workload (dense + occupancy-filtered + eval render)
/// executed under whatever SIMD backend is currently forced.
fn backend_fingerprint(ds: &inerf_scenes::Dataset) -> BackendFingerprint {
    let levels = ModelConfig::tiny().grid.levels;
    let mut plain = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), 8),
        TrainConfig::tiny(),
        3,
    )
    .with_threads(2);
    let mut sinks = (CountingSink::default(), RegisterCacheSink::new(levels));
    let report = plain.train_with_sink(ds, 4, &mut sinks);
    let psnr = plain.eval_psnr(ds);
    let mut occ = Trainer::new(
        IngpModel::new(ModelConfig::tiny(), 8),
        TrainConfig::tiny(),
        3,
    )
    .with_occupancy_grid(8, 0.02, 2);
    let occ_report = occ.train(ds, 4);
    BackendFingerprint {
        losses: report.losses.iter().map(|l| l.to_bits()).collect(),
        occ_losses: occ_report.losses.iter().map(|l| l.to_bits()).collect(),
        psnr: psnr.to_bits(),
        trace_points: sinks.0.points,
        trace_cubes: sinks.0.cubes,
        dram: sinks.1.stats(),
        grid_grads: plain
            .model()
            .grid()
            .gradients()
            .iter()
            .map(|g| g.to_bits())
            .collect(),
        density_grads: plain
            .model()
            .density_mlp()
            .gradient_vec()
            .iter()
            .map(|g| g.to_bits())
            .collect(),
        color_grads: plain
            .model()
            .color_mlp()
            .gradient_vec()
            .iter()
            .map(|g| g.to_bits())
            .collect(),
    }
}

#[test]
fn every_simd_backend_matches_the_scalar_backend_bitwise() {
    // The SIMD kernels promise *bitwise* equality, not closeness: same
    // losses, same gradients, same render, same DRAM request statistics,
    // on every backend the host can run.
    let _guard = BACKEND_GUARD.lock().unwrap();
    let ds = DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Mic));
    let reference = with_backend(Backend::Scalar, || backend_fingerprint(&ds));
    assert!(reference.trace_points > 0, "workload must stream lookups");
    for backend in inerf_simd::available_backends() {
        let fp = with_backend(backend, || backend_fingerprint(&ds));
        assert_eq!(
            fp, reference,
            "{backend:?} diverged bitwise from the scalar backend"
        );
    }
}

#[test]
fn trajectories_identical_across_threads_for_every_backend() {
    let _guard = BACKEND_GUARD.lock().unwrap();
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    for backend in inerf_simd::available_backends() {
        with_backend(backend, || {
            let run = |threads: usize| -> Vec<f64> {
                let mut trainer = Trainer::new(
                    IngpModel::new(ModelConfig::tiny(), 11),
                    TrainConfig::tiny(),
                    4,
                )
                .with_threads(threads);
                trainer.train(&dataset, 6).losses
            };
            let one = run(1);
            assert_eq!(one, run(2), "{backend:?}: 2-thread trajectory diverged");
            assert_eq!(one, run(8), "{backend:?}: 8-thread trajectory diverged");
        });
    }
}

#[test]
fn arena_allocation_free_in_steady_state() {
    // Warm the arena with a full-size batch (every ray hits the bounds, so
    // every pooled buffer reaches its steady-state high-water mark), then
    // train on random dataset batches: no pooled buffer may grow again.
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let config = TrainConfig::tiny();
    let (rays, targets) = random_rays(5, config.rays_per_batch);
    let mut trainer = Trainer::new(IngpModel::new(ModelConfig::tiny(), 3), config, 9);
    trainer.train_on_rays(&rays, &targets, &bounds());
    let warm = trainer.arena_growth_events();
    assert!(warm >= 1, "the first iteration must populate the arena");
    for _ in 0..5 {
        trainer.train_step(&dataset);
    }
    assert_eq!(
        trainer.arena_growth_events(),
        warm,
        "steady-state iterations must not grow any pooled buffer"
    );
}

#[test]
fn render_views_identical_across_thread_counts() {
    let scene = zoo::scene(zoo::SceneKind::Hotdog);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let render = |threads: usize| {
        let mut trainer = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 5),
            TrainConfig::tiny(),
            2,
        )
        .with_threads(threads);
        trainer.train(&dataset, 5);
        trainer
            .render_view(&dataset.test_views[0].camera, &dataset.bounds)
            .pixels()
            .to_vec()
    };
    assert_eq!(render(1), render(8));
}
