//! Property tests for the checkpoint payload codecs: arbitrary
//! parameter contents at both precisions must round-trip bit-exactly,
//! and truncated payloads must decode to typed errors, never panics.

use inerf_mlp::{ParamStore, Precision};
use inerf_snapshot::codec::Reader;
use inerf_trainer::train::checkpoint::{decode_param_store, encode_param_store};
use proptest::prelude::*;

/// Builds a store whose contents mix ordinary weights with the
/// fp16-quantization edge cases: signed zeros and sub-fp16-normal
/// magnitudes that flush differently than round values.
fn build_store(bulk: Vec<f32>, tiny: Vec<f32>, fp16: bool) -> ParamStore {
    let precision = if fp16 {
        Precision::Fp16
    } else {
        Precision::F32
    };
    let mut values = bulk;
    values.extend(tiny.into_iter().map(|v| v * 1e-6));
    values.push(0.0);
    values.push(-0.0);
    ParamStore::new(precision, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn param_store_round_trips_bit_exactly_at_both_precisions(
        bulk in proptest::collection::vec(-10.0f32..10.0, 0..64),
        tiny in proptest::collection::vec(-1.0f32..1.0, 0..16),
        fp16 in 0u8..2,
    ) {
        let store = build_store(bulk, tiny, fp16 == 1);
        let mut bytes = Vec::new();
        encode_param_store(&mut bytes, &store);

        let mut r = Reader::new(&bytes);
        let restored = decode_param_store(&mut r, store.len(), store.precision()).unwrap();
        prop_assert!(r.finish().is_ok());

        // Bit-level equality of both copies, not just value equality.
        let master_bits = |s: &ParamStore| -> Vec<u32> {
            s.master().iter().map(|v| v.to_bits()).collect()
        };
        let working_bits = |s: &ParamStore| -> Vec<u32> {
            s.values().iter().map(|v| v.to_bits()).collect()
        };
        prop_assert_eq!(master_bits(&restored), master_bits(&store));
        prop_assert_eq!(working_bits(&restored), working_bits(&store));
    }

    #[test]
    fn truncated_param_store_payloads_error_cleanly(
        bulk in proptest::collection::vec(-10.0f32..10.0, 1..32),
        fp16 in 0u8..2,
        cut_frac in 0.0f32..1.0,
    ) {
        let store = build_store(bulk, Vec::new(), fp16 == 1);
        let mut bytes = Vec::new();
        encode_param_store(&mut bytes, &store);

        let keep = ((bytes.len() as f32) * cut_frac) as usize; // < len
        let mut r = Reader::new(&bytes[..keep]);
        let outcome = decode_param_store(&mut r, store.len(), store.precision());
        let trailing_ok = outcome.is_ok() && r.finish().is_ok();
        prop_assert!(!trailing_ok, "truncated payload decoded cleanly");
    }
}
