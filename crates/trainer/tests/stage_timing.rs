//! Per-stage timing harness for the batched engine (ns per point for
//! encode, each MLP pass, the gradient scatter, and the whole model
//! query/backward). Not part of the suite — run on demand with:
//!
//! ```text
//! cargo test --release -p inerf_trainer --test stage_timing -- --ignored --nocapture
//! ```

use inerf_encoding::{HashFunction, HashGrid};
use inerf_geom::Vec3;
use inerf_mlp::{Mlp, MlpBatchActivations, MlpGradients};
use inerf_trainer::{IngpModel, ModelConfig, TrainableField};
use std::time::Instant;

#[test]
#[ignore]
fn stage_timing() {
    let cfg = ModelConfig::small(HashFunction::Morton);
    let grid = HashGrid::new(cfg.grid, 7);
    let n = 8192usize;
    let points: Vec<Vec3> = (0..n)
        .map(|i| {
            let t = i as f32 / n as f32;
            Vec3::new(t, (t * 7.3).fract(), (t * 3.1).fract())
        })
        .collect();
    let dirs: Vec<Vec3> = (0..n).map(|_| Vec3::new(0.0, 0.0, 1.0)).collect();
    let fdim = grid.config().feature_dim();
    let mut feats = vec![0.0f32; n * fdim];

    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        grid.encode_batch(&points, &mut feats);
    }
    println!(
        "encode_batch: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    let density = Mlp::new(
        &[fdim, cfg.density_hidden, cfg.density_out],
        inerf_mlp::Activation::Relu,
        inerf_mlp::Activation::Identity,
        1,
    );
    let mut dacts = MlpBatchActivations::default();
    let t0 = Instant::now();
    for _ in 0..reps {
        density.forward_batch(&feats, &mut dacts);
    }
    println!(
        "density fwd: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    let cin = cfg.density_out - 1 + 9;
    let color = Mlp::new(
        &[cin, cfg.color_hidden, cfg.color_hidden, 3],
        inerf_mlp::Activation::Relu,
        inerf_mlp::Activation::Sigmoid,
        2,
    );
    let color_in = vec![0.1f32; n * cin];
    let mut cacts = MlpBatchActivations::default();
    let t0 = Instant::now();
    for _ in 0..reps {
        color.forward_batch(&color_in, &mut cacts);
    }
    println!(
        "color fwd: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    let mut grads = MlpGradients::zeros(&color);
    let d_out = vec![0.3f32; n * 3];
    let mut d_in = vec![0.0f32; n * cin];
    let t0 = Instant::now();
    for _ in 0..reps {
        color.backward_batch(&color_in, &cacts, &d_out, &mut d_in, &mut grads);
    }
    println!(
        "color bwd: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    let mut dgrads = MlpGradients::zeros(&density);
    let d_raw = vec![0.2f32; n * cfg.density_out];
    let mut d_feats = vec![0.0f32; n * fdim];
    let t0 = Instant::now();
    for _ in 0..reps {
        density.backward_batch(&feats, &dacts, &d_raw, &mut d_feats, &mut dgrads);
    }
    println!(
        "density bwd: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    let mut g2 = grid.clone();
    let t0 = Instant::now();
    for _ in 0..reps {
        g2.backward_batch(&points, &d_feats);
    }
    println!(
        "grid bwd scatter: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    // Whole model query_batch for comparison.
    let mut model = IngpModel::new(cfg, 7);
    let pool = inerf_trainer::engine::build_pool(1);
    let mut sigmas = vec![0.0f32; n];
    let mut rgbs = vec![Vec3::ZERO; n];
    model.begin_batch();
    let t0 = Instant::now();
    for _ in 0..reps {
        model.query_batch(&points, &dirs, &mut sigmas, &mut rgbs, &pool);
    }
    println!(
        "query_batch total: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );

    let t0 = Instant::now();
    for _ in 0..reps {
        model.backward_batch(&sigmas, &rgbs, &pool);
    }
    println!(
        "backward_batch total: {:.1} ns/pt",
        t0.elapsed().as_nanos() as f64 / (reps * n) as f64
    );
}
