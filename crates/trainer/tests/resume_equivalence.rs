//! Checkpoint/resume bitwise-equivalence.
//!
//! The headline guarantee of the snapshot subsystem: training 2N
//! iterations straight is *bitwise* identical to training N, writing a
//! checkpoint, dropping the trainer entirely, resuming from the
//! checkpoint bytes, and training N more — same loss bits, same
//! evaluation render, same DRAM request statistics for the second half,
//! same master and working parameter bits at the end. Pinned across
//! both engines, both storage precisions, both optimizer paths, and at
//! 1/2/8 threads (a snapshot written at any parallelism resumes at any
//! other).

use inerf_encoding::requests::{RegisterCacheSink, StreamStats};
use inerf_encoding::CountingSink;
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_snapshot::{MemIo, SnapshotError};
use inerf_trainer::{Engine, IngpModel, ModelConfig, OptPath, Precision, TrainConfig, Trainer};

const N: usize = 4;

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn tiny_config(engine: Engine, precision: Precision, opt: OptPath) -> TrainConfig {
    TrainConfig::tiny()
        .with_engine(engine)
        .with_precision(precision)
        .with_opt(opt)
}

fn fresh_trainer(cfg: TrainConfig, threads: usize) -> Trainer<IngpModel> {
    Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3).with_threads(threads)
}

/// Everything the *second half* of a 2N-iteration run observably
/// produces, bit-exact, plus the final parameter state.
#[derive(Debug, PartialEq)]
struct SecondHalf {
    losses: Vec<u64>,
    psnr: u64,
    steps: u64,
    dram: StreamStats,
    trace_points: u64,
    master: Vec<u32>,
    working: Vec<u32>,
}

fn second_half(trainer: &mut Trainer<IngpModel>, ds: &Dataset) -> SecondHalf {
    let levels = ModelConfig::tiny().grid.levels;
    let mut sinks = (CountingSink::default(), RegisterCacheSink::new(levels));
    let report = trainer.train_with_sink(ds, N, &mut sinks);
    let psnr = trainer.eval_psnr(ds);
    SecondHalf {
        losses: report.losses.iter().map(|l| l.to_bits()).collect(),
        psnr: psnr.to_bits(),
        steps: trainer.global_step(),
        dram: sinks.1.stats(),
        trace_points: sinks.0.points,
        master: bits(trainer.model().grid().parameter_store().master()),
        working: bits(trainer.model().grid().parameters()),
    }
}

/// Train 2N straight (discarding the first half's trace) at 1 thread.
fn straight(ds: &Dataset, cfg: TrainConfig) -> SecondHalf {
    let mut trainer = fresh_trainer(cfg, 1);
    trainer.train(ds, N);
    second_half(&mut trainer, ds)
}

/// Train N, checkpoint to memory, drop the trainer, resume from the
/// checkpoint bytes alone, then train N more at `threads`.
fn resumed(ds: &Dataset, cfg: TrainConfig, threads: usize) -> SecondHalf {
    let mut io = MemIo::default();
    {
        let mut first = fresh_trainer(cfg, threads);
        first.train(ds, N);
        first.save_checkpoint_to(&mut io, 2).unwrap();
        // `first` dropped here — the resumed run sees only `io`'s bytes.
    }
    let mut trainer = Trainer::resume_from_io(&io, cfg)
        .unwrap()
        .with_threads(threads);
    assert_eq!(trainer.global_step(), N as u64);
    second_half(&mut trainer, ds)
}

#[test]
fn resume_matches_straight_bitwise_for_every_engine_precision_thread_count_and_opt() {
    let ds = DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Mic));
    for engine in [Engine::Scalar, Engine::Batched] {
        for precision in [Precision::F32, Precision::Fp16] {
            for opt in [OptPath::Sparse, OptPath::Dense] {
                let cfg = tiny_config(engine, precision, opt);
                let reference = straight(&ds, cfg);
                assert!(reference.trace_points > 0, "workload must stream lookups");
                assert_eq!(reference.steps, 2 * N as u64);
                for threads in [1usize, 2, 8] {
                    let restored = resumed(&ds, cfg, threads);
                    assert_eq!(
                        restored,
                        reference,
                        "{engine:?}/{}/{}/{threads}t: resume diverged bitwise from straight",
                        precision.label(),
                        opt.label()
                    );
                }
            }
        }
    }
}

#[test]
fn resume_preserves_occupancy_grid_state_bitwise() {
    // The occupancy grid refreshes on a fixed cadence keyed to its own
    // iteration counter; a resume must restore the counter, the bitset,
    // and the refresh parameters or the filtered trajectory diverges.
    let ds = DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Mic));
    let cfg = tiny_config(Engine::Scalar, Precision::F32, OptPath::Sparse);

    let mut reference = fresh_trainer(cfg, 1).with_occupancy_grid(8, 0.02, 2);
    let straight_report = reference.train(&ds, 2 * N);
    let straight_losses: Vec<u64> = straight_report.losses[N..]
        .iter()
        .map(|l| l.to_bits())
        .collect();
    let straight_master = bits(reference.model().grid().parameter_store().master());

    let mut io = MemIo::default();
    {
        let mut first = fresh_trainer(cfg, 1).with_occupancy_grid(8, 0.02, 2);
        first.train(&ds, N);
        first.save_checkpoint_to(&mut io, 2).unwrap();
    }
    let mut restored = Trainer::resume_from_io(&io, cfg).unwrap();
    let resumed_report = restored.train(&ds, N);
    let resumed_losses: Vec<u64> = resumed_report.losses.iter().map(|l| l.to_bits()).collect();

    assert_eq!(resumed_losses, straight_losses);
    assert_eq!(
        bits(restored.model().grid().parameter_store().master()),
        straight_master
    );
}

#[test]
fn resume_with_mismatched_config_is_a_typed_error() {
    let ds = DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Mic));
    let cfg = tiny_config(Engine::Scalar, Precision::F32, OptPath::Sparse);
    let mut io = MemIo::default();
    let mut trainer = fresh_trainer(cfg, 1);
    trainer.train(&ds, 2);
    trainer.save_checkpoint_to(&mut io, 2).unwrap();

    for wrong in [
        cfg.with_engine(Engine::Batched),
        cfg.with_precision(Precision::Fp16),
        cfg.with_opt(OptPath::Dense),
    ] {
        match Trainer::resume_from_io(&io, wrong) {
            Err(SnapshotError::ConfigMismatch(msg)) => {
                assert!(msg.contains("resume requested"), "unhelpful message: {msg}");
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }
}

#[test]
fn resume_from_empty_store_is_no_snapshot() {
    let cfg = tiny_config(Engine::Scalar, Precision::F32, OptPath::Sparse);
    let io = MemIo::default();
    assert!(matches!(
        Trainer::<IngpModel>::resume_from_io(&io, cfg),
        Err(SnapshotError::NoSnapshot)
    ));
}

#[test]
fn checkpoints_rotate_and_latest_wins() {
    let ds = DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Mic));
    let cfg = tiny_config(Engine::Scalar, Precision::F32, OptPath::Sparse);
    let mut io = MemIo::default();
    let mut trainer = fresh_trainer(cfg, 1);
    for _ in 0..3 {
        trainer.train(&ds, 2);
        trainer.save_checkpoint_to(&mut io, 2).unwrap();
    }
    // keep_last = 2 → exactly two snapshot files, newest named step 6.
    let steps = inerf_snapshot::list_snapshots(&io).unwrap();
    assert_eq!(steps.len(), 2);
    let restored = Trainer::resume_from_io(&io, cfg).unwrap();
    assert_eq!(restored.global_step(), 6);
}
