//! Equivalence suite for the streaming trace bus: statistics computed
//! online by the sinks must be bit-identical to the materialized
//! `LookupTrace` reference path, on identical inputs, for both trainer
//! engines and both hash functions.

use inerf_encoding::locality::{
    index_distance_histogram, points_sharing_cube_per_level, LocalitySink,
};
use inerf_encoding::requests::{
    mean_requests_per_cube, replay_with_register_cache, MeanRequestSink, RegisterCacheSink,
};
use inerf_encoding::{BufferSink, CountingSink, HashFunction};
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_trainer::{Engine, IngpModel, ModelConfig, TrainConfig, Trainer};

const ENGINES: [Engine; 2] = [Engine::Scalar, Engine::Batched];
const HASHES: [HashFunction; 2] = [HashFunction::Morton, HashFunction::Original];

fn dataset() -> Dataset {
    DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Lego))
}

fn trained_trace(dataset: &Dataset, hash: HashFunction, engine: Engine) -> BufferSink {
    let model = IngpModel::new(ModelConfig::small(hash), 21);
    let mut trainer = Trainer::new(model, TrainConfig::tiny().with_engine(engine), 13);
    let mut buffer = BufferSink::new();
    trainer.train_with_sink(dataset, 2, &mut buffer);
    buffer
}

#[test]
fn engines_emit_identical_trace_streams() {
    // Scalar and Batched engines share the gathered batch, so the access
    // stream on the bus must be byte-identical for a fixed seed.
    let ds = dataset();
    for hash in HASHES {
        let scalar = trained_trace(&ds, hash, Engine::Scalar);
        let batched = trained_trace(&ds, hash, Engine::Batched);
        assert!(scalar.point_count() > 0, "{hash:?}: empty trace");
        assert_eq!(scalar, batched, "{hash:?}: engines diverged on the bus");
    }
}

#[test]
fn streamed_stats_match_buffered_replay_bitwise() {
    // Train with a fan-out sink: one lane materializes the trace, the
    // other lanes accumulate statistics online. Afterwards the online
    // stats must equal the wrappers replaying the materialized trace.
    let ds = dataset();
    for hash in HASHES {
        for engine in ENGINES {
            let cfg = ModelConfig::small(hash);
            let levels = cfg.grid.levels;
            let model = IngpModel::new(cfg, 21);
            let mut trainer = Trainer::new(model, TrainConfig::tiny().with_engine(engine), 13);
            let mut sinks = (
                BufferSink::new(),
                (
                    LocalitySink::new(levels),
                    (RegisterCacheSink::new(levels), MeanRequestSink::new()),
                ),
            );
            trainer.train_with_sink(&ds, 2, &mut sinks);
            let (buffer, (locality, (register, mean))) = sinks;
            let tag = format!("{hash:?}/{engine:?}");
            assert!(buffer.point_count() > 0, "{tag}: empty trace");
            assert_eq!(
                locality.histogram(),
                index_distance_histogram(&buffer),
                "{tag}: histogram diverged"
            );
            assert_eq!(
                locality.sharing_per_level(),
                points_sharing_cube_per_level(&buffer, levels),
                "{tag}: sharing diverged"
            );
            let streamed = register.stats();
            let replayed = replay_with_register_cache(&buffer, levels);
            assert_eq!(streamed, replayed, "{tag}: register-cache stats diverged");
            assert_eq!(
                streamed.total_row_requests(),
                replayed.total_row_requests(),
                "{tag}: row requests diverged"
            );
            for (s, r) in streamed.levels.iter().zip(&replayed.levels) {
                assert_eq!(s.hit_rate(), r.hit_rate(), "{tag}: hit rate diverged");
            }
            assert_eq!(
                mean.mean(),
                mean_requests_per_cube(&buffer),
                "{tag}: requests/cube diverged"
            );
        }
    }
}

#[test]
fn stream_shape_follows_the_bus_protocol() {
    // One end_batch per iteration, one end_point per kept sample point,
    // levels cubes per point.
    let ds = dataset();
    let cfg = ModelConfig::small(HashFunction::Morton);
    let model = IngpModel::new(cfg, 21);
    let mut trainer = Trainer::new(model, TrainConfig::tiny(), 13);
    let mut counter = CountingSink::default();
    trainer.train_with_sink(&ds, 3, &mut counter);
    assert_eq!(counter.batches, 3);
    assert_eq!(counter.points, trainer.points_queried());
    assert_eq!(counter.cubes, counter.points * cfg.grid.levels as u64);
}

#[test]
fn sink_slot_does_not_change_training() {
    // Filling the trace-bus slot must not perturb the math: identical
    // losses with and without a sink.
    let ds = dataset();
    for engine in ENGINES {
        let mk = || {
            Trainer::new(
                IngpModel::new(ModelConfig::small(HashFunction::Morton), 21),
                TrainConfig::tiny().with_engine(engine),
                13,
            )
        };
        let plain = mk().train(&ds, 3);
        let mut sink = CountingSink::default();
        let traced = mk().train_with_sink(&ds, 3, &mut sink);
        assert_eq!(plain.losses, traced.losses, "{engine:?}: sink changed math");
    }
}
