//! Sparse-optimizer vs dense-reference equivalence.
//!
//! The sparse gradient path (`INERF_OPT=sparse`, the default) promises
//! *bitwise* equality with the dense reference sweep: same loss
//! trajectory, same evaluation render, same DRAM request statistics, and
//! — after a final sync — the same master and working parameter bits, on
//! both engines, at both storage precisions, at any thread count.

use inerf_encoding::requests::{RegisterCacheSink, StreamStats};
use inerf_encoding::CountingSink;
use inerf_mlp::AdamState;
use inerf_scenes::{zoo, Dataset, DatasetConfig};
use inerf_trainer::{Engine, IngpModel, ModelConfig, OptPath, Precision, TrainConfig, Trainer};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Everything one optimizer path observably produces over a fixed
/// workload, bit-exact.
#[derive(Debug, PartialEq)]
struct PathFingerprint {
    losses: Vec<u64>,
    occ_losses: Vec<u64>,
    psnr: u64,
    trace_points: u64,
    trace_cubes: u64,
    dram: StreamStats,
    /// Final f32 master weights of the hash grid, post-sync.
    master: Vec<u32>,
    /// Final working (compute-visible) values — fp16-quantized for Fp16.
    working: Vec<u32>,
}

/// A fixed training workload (plain + occupancy-filtered + eval render)
/// executed under one (engine, precision, threads, opt) combination.
fn path_fingerprint(
    ds: &Dataset,
    engine: Engine,
    precision: Precision,
    threads: usize,
    opt: OptPath,
) -> PathFingerprint {
    let cfg = TrainConfig::tiny()
        .with_engine(engine)
        .with_precision(precision)
        .with_opt(opt);
    let levels = ModelConfig::tiny().grid.levels;
    let mut plain = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3)
        .with_threads(threads);
    let mut sinks = (CountingSink::default(), RegisterCacheSink::new(levels));
    let report = plain.train_with_sink(ds, 4, &mut sinks);
    let psnr = plain.eval_psnr(ds);
    // The occupancy refresh reads the full grid mid-training — the one
    // consumer that forces a sync of entries the current batch never
    // touched.
    let mut occ = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3)
        .with_threads(threads)
        .with_occupancy_grid(8, 0.02, 2);
    let occ_report = occ.train(ds, 4);
    let model = plain.into_model();
    PathFingerprint {
        losses: report.losses.iter().map(|l| l.to_bits()).collect(),
        occ_losses: occ_report.losses.iter().map(|l| l.to_bits()).collect(),
        psnr: psnr.to_bits(),
        trace_points: sinks.0.points,
        trace_cubes: sinks.0.cubes,
        dram: sinks.1.stats(),
        master: bits(model.grid().parameter_store().master()),
        working: bits(model.grid().parameters()),
    }
}

#[test]
fn sparse_matches_dense_bitwise_for_every_engine_precision_and_thread_count() {
    let ds = DatasetConfig::tiny().generate(&zoo::scene(zoo::SceneKind::Mic));
    for engine in [Engine::Scalar, Engine::Batched] {
        for precision in [Precision::F32, Precision::Fp16] {
            let dense = path_fingerprint(&ds, engine, precision, 1, OptPath::Dense);
            assert!(dense.trace_points > 0, "workload must stream lookups");
            for threads in [1usize, 2, 8] {
                let sparse = path_fingerprint(&ds, engine, precision, threads, OptPath::Sparse);
                assert_eq!(
                    sparse,
                    dense,
                    "{engine:?}/{}/{threads}t: sparse diverged bitwise from dense",
                    precision.label()
                );
            }
        }
    }
}

#[test]
fn opt_path_env_selector() {
    // `with_opt` overrides whatever the environment says; the labels are
    // what the bench reports and CI logs key on.
    assert_eq!(OptPath::Sparse.label(), "sparse");
    assert_eq!(OptPath::Dense.label(), "dense");
    let cfg = TrainConfig::tiny().with_opt(OptPath::Dense);
    let model = IngpModel::for_config(ModelConfig::tiny(), &cfg, 1);
    assert_eq!(model.opt_path(), OptPath::Dense);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lazy-replay Adam under *random* touch schedules must land every
    /// parameter on the dense reference bits after a final sync —
    /// including entries touched with an exactly-zero gradient, entries
    /// touched once and then abandoned, and entries never touched at all.
    #[test]
    fn lazy_adam_matches_dense_for_random_touch_patterns(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(4usize..24);
        let steps = rng.gen_range(1usize..16);
        let mut dense_p: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut sparse_p = dense_p.clone();
        let mut dense = AdamState::new(n, 0.01);
        let mut sparse = AdamState::new(n, 0.01);
        sparse.enable_lazy();
        for _ in 0..steps {
            let mut grads = vec![0.0f32; n];
            let mut touched: Vec<u32> = Vec::new();
            for (i, g) in grads.iter_mut().enumerate() {
                if rng.gen_bool(0.4) {
                    *g = rng.gen_range(-1.0f32..1.0);
                    touched.push(i as u32);
                } else if rng.gen_bool(0.1) {
                    // Touched but with an exactly-zero gradient: must take
                    // a *real* decay step, not be skipped.
                    touched.push(i as u32);
                }
            }
            let scale = if rng.gen_bool(0.5) {
                1.0
            } else {
                rng.gen_range(0.1f32..1.0)
            };
            dense.step_scaled(&mut dense_p, &grads, scale);
            sparse.step_sparse(&mut sparse_p, &grads, &touched, scale);
        }
        sparse.sync_all(&mut sparse_p);
        prop_assert_eq!(bits(&dense_p), bits(&sparse_p));
    }
}
