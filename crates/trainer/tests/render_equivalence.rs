//! Golden equivalence and quality bounds for the inference fast path.
//!
//! The render engine promises three things, pinned here:
//!
//! * With [`RenderOpts::reference`] its output is **bitwise-identical** to
//!   the pre-engine naive renderer (replicated verbatim below), per pixel,
//!   for both trainer engines × both parameter precisions × 1/2/8 threads,
//!   and for per-point models taking the dense fallback.
//! * Early ray termination at the default threshold costs less than
//!   0.1 dB of PSNR on a zoo scene.
//! * Steady-state renders grow no pooled buffer (`growth_events` stays
//!   flat after warm-up).

use inerf_geom::{Aabb, Camera, Vec3};
use inerf_mlp::Precision;
use inerf_render::volume::{composite_spans, RayBatch, RaySpan};
use inerf_scenes::{zoo, DatasetConfig, Image};
use inerf_trainer::baselines::NerfLite;
use inerf_trainer::render::{self, RenderOpts, EARLY_TERM_THRESHOLD};
use inerf_trainer::{engine, Engine, IngpModel, ModelConfig, TrainConfig, TrainableField, Trainer};

/// The pre-engine `render_view_with_pool`, replicated verbatim (2048
/// *hit*-pixel blocks, per-block `vec!` allocations, serial ray
/// generation, dense query of both MLPs, wide composite kernel) — the
/// golden reference the engine's opts-off output must match bit for bit.
fn render_view_naive<M: TrainableField>(
    model: &M,
    camera: &Camera,
    bounds: &Aabb,
    samples_per_ray: usize,
    pool: &rayon::ThreadPool,
) -> Image {
    const RENDER_PIXEL_BLOCK: usize = 2048;
    let mut img = Image::new(camera.width, camera.height);
    let mut points = Vec::new();
    let mut dirs = Vec::new();
    let mut spans = Vec::new();
    let mut pixels = Vec::new();
    let flush = |points: &mut Vec<Vec3>,
                 dirs: &mut Vec<Vec3>,
                 spans: &mut Vec<RaySpan>,
                 pixels: &mut Vec<(u32, u32)>,
                 img: &mut Image| {
        if spans.is_empty() {
            return;
        }
        let n = points.len();
        let mut sigmas = vec![0.0f32; n];
        let mut rgbs = vec![Vec3::ZERO; n];
        model.query_eval_batch(points, dirs, &mut sigmas, &mut rgbs, pool);
        let mut ray_colors = vec![Vec3::ZERO; spans.len()];
        let mut backgrounds = vec![0.0f32; spans.len()];
        let mut weights = vec![0.0f32; n];
        let mut trans_after = vec![0.0f32; n];
        composite_spans(
            &RayBatch {
                sigmas: &sigmas,
                colors: &rgbs,
                spans,
                dts: None,
                sample_base: 0,
            },
            &mut ray_colors,
            &mut backgrounds,
            &mut weights,
            &mut trans_after,
        );
        for (&(px, py), &color) in pixels.iter().zip(&ray_colors) {
            img.set(px, py, color);
        }
        points.clear();
        dirs.clear();
        spans.clear();
        pixels.clear();
    };
    for py in 0..camera.height {
        for px in 0..camera.width {
            let ray = camera.ray_for_pixel(px, py);
            let Some(hit) = bounds.intersect(&ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            let ts = ray.stratified_ts(hit.t_near.max(1e-4), hit.t_far, samples_per_ray, None);
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / samples_per_ray as f32;
            let start = points.len();
            for &t in &ts {
                points.push(bounds.normalize(ray.at(t)));
                dirs.push(ray.direction);
            }
            spans.push(RaySpan {
                start,
                len: ts.len(),
                dt,
            });
            pixels.push((px, py));
            if pixels.len() == RENDER_PIXEL_BLOCK {
                flush(&mut points, &mut dirs, &mut spans, &mut pixels, &mut img);
            }
        }
    }
    flush(&mut points, &mut dirs, &mut spans, &mut pixels, &mut img);
    img
}

fn assert_images_bitwise_eq(label: &str, a: &Image, b: &Image) {
    assert_eq!(a.width(), b.width(), "{label}: width");
    assert_eq!(a.height(), b.height(), "{label}: height");
    for (i, (pa, pb)) in a.pixels().iter().zip(b.pixels()).enumerate() {
        for (ch, (ca, cb)) in [(pa.x, pb.x), (pa.y, pb.y), (pa.z, pb.z)]
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "{label}: pixel {i} channel {ch}: {ca} vs {cb}"
            );
        }
    }
}

#[test]
fn reference_opts_match_the_naive_renderer_bitwise() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let spp = TrainConfig::tiny().eval_samples_per_ray;
    for engine_kind in [Engine::Scalar, Engine::Batched] {
        for precision in [Precision::F32, Precision::Fp16] {
            let cfg = TrainConfig::tiny()
                .with_engine(engine_kind)
                .with_precision(precision);
            let mut trainer =
                Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3);
            trainer.train(&dataset, 4);
            let model = trainer.into_model();
            let camera = &dataset.test_views[0].camera;
            let golden =
                render_view_naive(&model, camera, &dataset.bounds, spp, &engine::build_pool(1));
            for threads in [1usize, 2, 8] {
                let pool = engine::build_pool(threads);
                let fast = render::render_view_opts(
                    &model,
                    camera,
                    &dataset.bounds,
                    spp,
                    None,
                    &RenderOpts::reference(),
                    &pool,
                );
                assert_images_bitwise_eq(
                    &format!("{engine_kind:?}/{precision:?}/{threads} threads"),
                    &golden,
                    &fast,
                );
            }
        }
    }
}

#[test]
fn per_point_models_take_the_dense_fallback_bitwise() {
    // A baseline model without phased evaluation exercises the engine's
    // dense `query_eval_batch` fallback; the reference contract holds
    // there too.
    let scene = zoo::scene(zoo::SceneKind::Hotdog);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let model = NerfLite::new(2, 8, 7);
    let camera = &dataset.test_views[0].camera;
    let pool = engine::build_pool(2);
    let golden = render_view_naive(&model, camera, &dataset.bounds, 16, &pool);
    let fast = render::render_view_opts(
        &model,
        camera,
        &dataset.bounds,
        16,
        None,
        &RenderOpts::reference(),
        &pool,
    );
    assert_images_bitwise_eq("NerfLite dense fallback", &golden, &fast);
}

#[test]
fn early_termination_costs_under_a_tenth_db() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let cfg = TrainConfig::tiny();
    let spp = cfg.eval_samples_per_ray;
    let mut trainer = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3);
    trainer.train(&dataset, 20);
    let model = trainer.into_model();
    let pool = engine::build_pool(2);
    let psnr_ref =
        render::eval_psnr_opts(&model, &dataset, spp, None, &RenderOpts::reference(), &pool);
    let early = RenderOpts {
        culling: false,
        early_term: true,
        early_term_threshold: EARLY_TERM_THRESHOLD,
    };
    let psnr_early = render::eval_psnr_opts(&model, &dataset, spp, None, &early, &pool);
    assert!(
        psnr_ref - psnr_early < 0.1,
        "early termination dropped PSNR by {} dB (reference {psnr_ref}, early {psnr_early})",
        psnr_ref - psnr_early
    );
}

#[test]
fn default_opts_with_occupancy_grid_cull_samples_within_a_tenth_db() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let cfg = TrainConfig::tiny();
    // A briefly-trained tiny model keeps an ambient "haze" density of
    // ~0.1–0.2 in empty space, so the cull threshold must sit between that
    // haze and the ~0.5 densities of real content for the refresh to mark
    // any cell empty.
    let mut trainer = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3)
        .with_occupancy_grid(16, 0.3, 5);
    trainer.train(&dataset, 20);
    let psnr_ref = trainer.eval_psnr_opts(&dataset, &RenderOpts::reference());
    let psnr_fast = trainer.eval_psnr_opts(&dataset, &RenderOpts::default());
    let stats = *trainer.render_stats();
    assert!(
        stats.samples_culled > 0,
        "Mic is mostly empty: the refreshed grid must cull something"
    );
    assert!(
        stats.samples_color <= stats.samples_density,
        "the color phase can only ever shrink the sample set"
    );
    assert!(
        psnr_ref - psnr_fast < 0.1,
        "default opts dropped PSNR by {} dB (reference {psnr_ref}, fast {psnr_fast})",
        psnr_ref - psnr_fast
    );
}

#[test]
fn render_arena_is_allocation_free_in_steady_state() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let cfg = TrainConfig::tiny();
    let mut trainer = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3);
    trainer.train(&dataset, 3);
    let camera = dataset.test_views[0].camera;
    // Warm-up render populates every pooled buffer.
    let _ = trainer.render_view(&camera, &dataset.bounds);
    let warm = trainer.render_growth_events();
    assert!(warm >= 1, "the first render must populate the arena");
    for _ in 0..3 {
        let _ = trainer.render_view(&camera, &dataset.bounds);
    }
    assert_eq!(
        trainer.render_growth_events(),
        warm,
        "steady-state renders must not grow any pooled buffer"
    );
}

#[test]
fn render_stats_account_for_the_reference_path() {
    let scene = zoo::scene(zoo::SceneKind::Mic);
    let dataset = DatasetConfig::tiny().generate(&scene);
    let cfg = TrainConfig::tiny();
    let mut trainer = Trainer::new(IngpModel::for_config(ModelConfig::tiny(), &cfg, 8), cfg, 3);
    trainer.train(&dataset, 2);
    let camera = dataset.test_views[0].camera;
    let _ = trainer.render_view_opts(&camera, &dataset.bounds, &RenderOpts::reference());
    let stats = *trainer.render_stats();
    assert_eq!(
        stats.pixels,
        u64::from(camera.width) * u64::from(camera.height)
    );
    assert!(stats.rays_hit > 0, "some rays must hit the bounds");
    assert_eq!(stats.rays_rendered, stats.rays_hit);
    assert_eq!(stats.samples_culled, 0, "reference opts never cull");
    assert_eq!(stats.samples_density, stats.samples_dense);
    assert!(stats.samples_color <= stats.samples_density);
    assert!(stats.samples_per_pixel_effective() > 0.0 && stats.culled_fraction() == 0.0);
}
