//! Point streaming orders (paper Sec. III-B).
//!
//! A training batch holds `R` rays × `S` sample points. The math is
//! order-independent, but the *order* in which points stream through the
//! memory system decides how much locality the hash-table lookups exhibit:
//!
//! * [`StreamingOrder::RayFirst`] — all points of ray 0, then ray 1, …
//!   Consecutive points walk along a ray, sharing and neighbouring cubes
//!   (the paper's proposal).
//! * [`StreamingOrder::Random`] — a pseudo-random permutation of all points,
//!   modelling the scattered order a GPU warp scheduler produces (the iNGP
//!   baseline).

use inerf_encoding::{HashGrid, LookupTrace, TraceSink};
use inerf_geom::{Aabb, Ray, Vec3};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The order sample points stream into the processing engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamingOrder {
    /// Points along one ray complete before the next ray starts.
    RayFirst,
    /// Globally shuffled point order.
    Random,
}

impl StreamingOrder {
    /// Display label used by experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            StreamingOrder::RayFirst => "ray-first",
            StreamingOrder::Random => "random",
        }
    }
}

/// A batch of sample points, annotated with their `(ray, sample)` origin.
#[derive(Debug, Clone, PartialEq)]
pub struct PointBatch {
    /// Sample positions, normalized into `[0,1]^3`.
    pub points: Vec<Vec3>,
    /// `(ray index, sample index)` provenance, parallel to `points`.
    pub provenance: Vec<(u32, u32)>,
}

/// Samples `samples_per_ray` stratified points along each ray's intersection
/// with `bounds`, normalizes them into `[0,1]^3`, and arranges them in the
/// requested streaming order.
///
/// Rays missing the bounds contribute no points. `seed` drives only the
/// random permutation (ray-first order is deterministic).
pub fn build_point_batch(
    rays: &[Ray],
    bounds: &Aabb,
    samples_per_ray: usize,
    order: StreamingOrder,
    seed: u64,
) -> PointBatch {
    let mut points = Vec::with_capacity(rays.len() * samples_per_ray);
    let mut provenance = Vec::with_capacity(rays.len() * samples_per_ray);
    for (ri, ray) in rays.iter().enumerate() {
        let Some(hit) = bounds.intersect(ray) else {
            continue;
        };
        if hit.t_far - hit.t_near < 1e-6 {
            continue;
        }
        for (si, t) in ray
            .stratified_ts(hit.t_near.max(1e-4), hit.t_far, samples_per_ray, None)
            .into_iter()
            .enumerate()
        {
            points.push(bounds.normalize(ray.at(t)));
            provenance.push((ri as u32, si as u32));
        }
    }
    if order == StreamingOrder::Random {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..points.len()).collect();
        perm.shuffle(&mut rng);
        let points2 = perm.iter().map(|&i| points[i]).collect();
        let prov2 = perm.iter().map(|&i| provenance[i]).collect();
        return PointBatch {
            points: points2,
            provenance: prov2,
        };
    }
    PointBatch { points, provenance }
}

/// Streams a point batch through the hash grid's address generation into
/// a trace-bus sink — the constant-memory path the hardware consumers use.
/// Does not emit `end_batch`; the caller owns iteration boundaries.
pub fn stream_batch(grid: &HashGrid, batch: &PointBatch, sink: &mut (impl TraceSink + ?Sized)) {
    grid.stream_batch(&batch.points, sink);
}

/// Replays a point batch through the hash grid's address generation,
/// producing the materialized lookup trace (the buffered reference path).
pub fn trace_batch(grid: &HashGrid, batch: &PointBatch) -> LookupTrace {
    let mut trace = LookupTrace::new();
    stream_batch(grid, batch, &mut trace);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use inerf_encoding::{requests, HashFunction, HashGridConfig};

    fn test_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let y = -0.8 + 1.6 * i as f32 / n.max(1) as f32;
                Ray::new(Vec3::new(-3.0, y, 0.1), Vec3::new(1.0, 0.0, 0.0))
            })
            .collect()
    }

    fn bounds() -> Aabb {
        Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
    }

    #[test]
    fn ray_first_keeps_ray_points_contiguous() {
        let batch = build_point_batch(&test_rays(4), &bounds(), 8, StreamingOrder::RayFirst, 0);
        assert_eq!(batch.points.len(), 32);
        for (i, (ri, si)) in batch.provenance.iter().enumerate() {
            assert_eq!(*ri as usize, i / 8);
            assert_eq!(*si as usize, i % 8);
        }
    }

    #[test]
    fn random_order_is_a_permutation() {
        let rf = build_point_batch(&test_rays(4), &bounds(), 8, StreamingOrder::RayFirst, 1);
        let rnd = build_point_batch(&test_rays(4), &bounds(), 8, StreamingOrder::Random, 1);
        assert_eq!(rf.points.len(), rnd.points.len());
        let mut a = rf.provenance.clone();
        let mut b = rnd.provenance.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(
            a, b,
            "random order must be a permutation of the same points"
        );
        assert_ne!(rf.provenance, rnd.provenance, "random order should differ");
    }

    #[test]
    fn points_are_normalized() {
        let batch = build_point_batch(&test_rays(3), &bounds(), 16, StreamingOrder::RayFirst, 0);
        for p in &batch.points {
            assert!((-1e-4..=1.0 + 1e-4).contains(&p.x), "{p:?}");
            assert!((-1e-4..=1.0 + 1e-4).contains(&p.y));
            assert!((-1e-4..=1.0 + 1e-4).contains(&p.z));
        }
    }

    #[test]
    fn missing_rays_are_skipped() {
        let mut rays = test_rays(2);
        rays.push(Ray::new(Vec3::new(0.0, 5.0, 0.0), Vec3::new(0.0, 1.0, 0.0)));
        let batch = build_point_batch(&rays, &bounds(), 4, StreamingOrder::RayFirst, 0);
        assert_eq!(
            batch.points.len(),
            8,
            "the escaping ray must contribute nothing"
        );
    }

    #[test]
    fn ray_first_order_reduces_row_requests() {
        // The paper's Sec. III-B claim, end to end: same rays, same grid,
        // only the streaming order differs — ray-first must need fewer DRAM
        // row requests after register-cache filtering.
        let grid = HashGrid::new(HashGridConfig::paper(HashFunction::Morton), 5);
        let rays = test_rays(16);
        let rf = trace_batch(
            &grid,
            &build_point_batch(&rays, &bounds(), 64, StreamingOrder::RayFirst, 2),
        );
        let rnd = trace_batch(
            &grid,
            &build_point_batch(&rays, &bounds(), 64, StreamingOrder::Random, 2),
        );
        let levels = grid.config().levels;
        let s_rf = requests::replay_with_register_cache(&rf, levels);
        let s_rnd = requests::replay_with_register_cache(&rnd, levels);
        assert!(
            s_rf.total_row_requests() < s_rnd.total_row_requests(),
            "ray-first {} should beat random {}",
            s_rf.total_row_requests(),
            s_rnd.total_row_requests()
        );
    }
}
