//! The iNGP-style NeRF training loop and its baselines.
//!
//! Ties the substrates together into the full pipeline of paper Fig. 2/3:
//! pixel-batch selection (Step a), ray sampling (Step b), model query
//! (Step c: hash encoding + MLPs), volume rendering (Step d), L2 loss
//! (Step e) and back-propagation (Step f), with Adam updates for both the
//! hash-table embeddings and the MLP weights.
//!
//! Modules:
//!
//! * [`model`] — the [`TrainableField`] trait and [`model::IngpModel`], the
//!   hash-grid + two-small-MLPs architecture of iNGP / Instant-NeRF.
//! * [`train`] — generic training loop, rendering and PSNR evaluation,
//!   with two interchangeable hot-path engines: the per-point scalar
//!   reference and the batched structure-of-arrays engine (the default).
//! * [`engine`] — thread-pool plumbing for the batched engine
//!   (`INERF_THREADS`, fixed-chunk determinism helpers).
//! * [`render`] — the no-gradient render engine: occupancy-culled,
//!   early-terminating, allocation-free view rendering behind
//!   [`render::RenderOpts`], bitwise-exact to the reference path when the
//!   switches are off.
//! * [`streaming`] — ray-first vs random point streaming orders (the
//!   paper's Sec. III-B) and trace generation for the hardware simulators.
//! * [`workload`] — the Tab. II workload model (parameter/data sizes of the
//!   bottleneck steps) and FLOP/op counts used by the cost models.
//! * [`baselines`] — compact NeRF, FastNeRF and TensoRF baselines for
//!   Tab. IV.
//! * [`occupancy`] — iNGP's occupancy grid for empty-space skipping (the
//!   mechanism behind the scene-conditioned hardware traces).
//!
//! # Example
//!
//! ```
//! use inerf_trainer::model::{IngpModel, ModelConfig};
//! use inerf_trainer::train::{TrainConfig, Trainer};
//! use inerf_scenes::{zoo, DatasetConfig};
//!
//! let scene = zoo::scene(zoo::SceneKind::Mic);
//! let dataset = DatasetConfig::tiny().generate(&scene);
//! let model = IngpModel::new(ModelConfig::tiny(), 1);
//! let mut trainer = Trainer::new(model, TrainConfig::tiny(), 7);
//! let report = trainer.train(&dataset, 3);
//! assert_eq!(report.iterations, 3);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod baselines;
pub mod engine;
pub mod model;
pub mod occupancy;
pub mod render;
pub mod streaming;
pub mod train;
pub mod workload;

pub use model::{EvalScratch, IngpModel, ModelConfig, OptPath, TrainableField};
pub use occupancy::OccupancyGrid;
pub use render::{RenderEngine, RenderOpts, RenderStats};
pub use streaming::StreamingOrder;
pub use train::{Engine, TrainConfig, TrainReport, Trainer};

// The parameter-storage precision selector (see `TrainConfig::precision`),
// re-exported so experiment drivers need no direct `inerf_mlp` import.
pub use inerf_mlp::Precision;
