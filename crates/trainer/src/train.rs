//! The training loop: batches, rendering, loss, backprop, evaluation.

pub mod checkpoint;

use crate::engine;
use crate::model::{OptPath, TrainableField};
use crate::occupancy::OccupancyGrid;
use crate::render::{RenderEngine, RenderOpts};
use crate::streaming::StreamingOrder;
use inerf_encoding::TraceSink;
use inerf_geom::{Aabb, Camera, Ray, Vec3};
use inerf_mlp::Precision;
use inerf_render::volume::{
    composite, composite_backward, composite_backward_spans, composite_backward_uniform,
    composite_spans, composite_uniform, RayBatch, RaySpan, SamplePoint,
};
use inerf_render::{l2_loss, l2_loss_into};
use inerf_scenes::{Dataset, Image};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPool;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

// Rendering and PSNR evaluation moved to the dedicated render engine in
// PR 10; re-exported here so existing `train::render_view`-style paths
// keep working.
pub use crate::render::{eval_psnr, eval_psnr_with_pool, render_view, render_view_with_pool};

/// Which implementation drives the training/inference hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// The per-point reference implementation: one `query`/`backward` call
    /// per sample. Kept as the equivalence baseline for the batched engine.
    Scalar,
    /// The batched structure-of-arrays engine: all sample points are
    /// gathered first, then each stage (encode → MLPs → composite →
    /// backward) runs over flat buffers with fixed-chunk thread-pool
    /// parallelism. Deterministic for a fixed seed at any thread count.
    Batched,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Rays (pixels) per iteration batch — Step (a) of the pipeline.
    pub rays_per_batch: usize,
    /// Stratified samples per ray — Step (b).
    pub samples_per_ray: usize,
    /// Point streaming order (affects hardware traces, not the math).
    pub order: StreamingOrder,
    /// Samples per ray used when rendering evaluation images.
    pub eval_samples_per_ray: usize,
    /// Hot-path implementation (batched SoA engine by default).
    pub engine: Engine,
    /// Parameter-storage precision of the model this run trains (hash
    /// table and MLP weights). Selects the [`ParamStore`] backend when a
    /// model is built for this config (see
    /// [`crate::model::IngpModel::for_config`]) and the entry width the
    /// hardware models assume; both engines read the same store, so the
    /// choice applies to `Scalar` and `Batched` identically.
    ///
    /// [`ParamStore`]: inerf_mlp::ParamStore
    pub precision: Precision,
    /// Grid-optimizer execution path of the model this run trains: the
    /// O(touched) sparse path with lazy-replay Adam (the default) or the
    /// dense O(table) reference. Both are bitwise-identical; the knob
    /// exists so the reference stays exercised (`INERF_OPT=dense`).
    pub opt: OptPath,
}

impl TrainConfig {
    /// The paper's workload shape: 256 K sampled points per iteration
    /// (2 K rays × 128 samples), ray-first order.
    pub fn paper() -> Self {
        TrainConfig {
            rays_per_batch: 2048,
            samples_per_ray: 128,
            order: StreamingOrder::RayFirst,
            eval_samples_per_ray: 128,
            engine: Engine::Batched,
            precision: Precision::F32,
            opt: OptPath::from_env(),
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            rays_per_batch: 32,
            samples_per_ray: 16,
            order: StreamingOrder::RayFirst,
            eval_samples_per_ray: 24,
            engine: Engine::Batched,
            precision: Precision::F32,
            opt: OptPath::from_env(),
        }
    }

    /// A small configuration for examples and PSNR runs.
    pub fn small() -> Self {
        TrainConfig {
            rays_per_batch: 256,
            samples_per_ray: 32,
            order: StreamingOrder::RayFirst,
            eval_samples_per_ray: 48,
            engine: Engine::Batched,
            precision: Precision::F32,
            opt: OptPath::from_env(),
        }
    }

    /// The same configuration with a different [`Engine`].
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The same configuration with a different parameter-storage
    /// [`Precision`].
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The same configuration with a different grid-optimizer [`OptPath`].
    pub fn with_opt(mut self, opt: OptPath) -> Self {
        self.opt = opt;
        self
    }

    /// Sampled points per iteration (the paper's "batch size" unit).
    pub fn points_per_iteration(&self) -> usize {
        self.rays_per_batch * self.samples_per_ray
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Loss after the first iteration.
    pub first_loss: f64,
    /// Loss after the last iteration.
    pub last_loss: f64,
    /// Per-iteration losses.
    pub losses: Vec<f64>,
}

/// Optional empty-space skipping state.
#[derive(Debug, Clone)]
struct OccupancyState {
    grid: OccupancyGrid,
    threshold: f32,
    refresh_every: usize,
    iteration: usize,
}

/// Where and how often [`Trainer::train_checkpointed`] writes snapshots.
/// Plain data (no live IO handle), so the trainer stays `Clone`.
#[derive(Debug, Clone)]
struct CheckpointPolicy {
    dir: std::path::PathBuf,
    every_n: usize,
    keep_last: usize,
}

/// Drives a [`TrainableField`] through the six-step NeRF training pipeline.
///
/// Every per-iteration structure-of-arrays buffer (the gathered batch and
/// all batched-engine stage buffers) lives in a pooled batch arena
/// (`engine::BatchArena`), so steady-state iterations reuse capacity
/// instead of allocating; see [`Trainer::arena_growth_events`].
#[derive(Debug, Clone)]
pub struct Trainer<M> {
    model: M,
    config: TrainConfig,
    rng: SmallRng,
    occupancy: Option<OccupancyState>,
    points_queried: u64,
    /// Completed training iterations — the step counter snapshots carry
    /// and checkpoint file names are keyed on.
    steps: u64,
    checkpoint: Option<CheckpointPolicy>,
    pool: Arc<ThreadPool>,
    arena: engine::BatchArena,
    /// The no-gradient render engine (pure scratch — never checkpointed).
    render: RenderEngine,
}

impl<M: TrainableField> Trainer<M> {
    /// Creates a trainer. `seed` drives batch selection and jitter. The
    /// batched engine uses the process-wide thread pool (sized by the
    /// `INERF_THREADS` environment variable, default all cores); see
    /// [`Trainer::with_threads`].
    pub fn new(model: M, config: TrainConfig, seed: u64) -> Self {
        debug_assert_eq!(
            model.precision(),
            config.precision,
            "model parameter store and TrainConfig::precision disagree — \
             build the model with IngpModel::for_config (or match the \
             config), or precision-keyed hardware models will not match \
             the training that actually runs"
        );
        Trainer {
            model,
            config,
            rng: SmallRng::seed_from_u64(seed),
            occupancy: None,
            points_queried: 0,
            steps: 0,
            checkpoint: None,
            pool: engine::default_pool(),
            arena: engine::BatchArena::default(),
            render: RenderEngine::default(),
        }
    }

    /// Replaces the shared thread pool with a dedicated one of exactly
    /// `threads` workers. Training results are identical at any thread
    /// count (fixed chunking, ordered reductions); only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = engine::build_pool(threads);
        self
    }

    /// Worker threads used by the batched engine.
    pub fn threads(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Enables iNGP-style empty-space skipping: a `resolution`^3 occupancy
    /// grid refreshed from the model every `refresh_every` iterations;
    /// samples in cells whose density stays below `threshold` are skipped.
    pub fn with_occupancy_grid(
        mut self,
        resolution: u32,
        threshold: f32,
        refresh_every: usize,
    ) -> Self {
        self.occupancy = Some(OccupancyState {
            grid: OccupancyGrid::new(resolution),
            threshold,
            refresh_every: refresh_every.max(1),
            iteration: 0,
        });
        self
    }

    /// Enables periodic crash-safe checkpoints for
    /// [`Trainer::train_checkpointed`]: every `every_n` completed
    /// iterations a snapshot is written atomically under `dir`, keeping
    /// the newest `keep_last` (see `inerf_snapshot` for the protocol).
    pub fn checkpoint_every_n(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        every_n: usize,
        keep_last: usize,
    ) -> Self {
        self.checkpoint = Some(CheckpointPolicy {
            dir: dir.into(),
            every_n: every_n.max(1),
            keep_last: keep_last.max(1),
        });
        self
    }

    /// The occupancy grid, if enabled.
    pub fn occupancy_grid(&self) -> Option<&OccupancyGrid> {
        self.occupancy.as_ref().map(|o| &o.grid)
    }

    /// Completed training iterations (survives snapshot/resume).
    pub fn global_step(&self) -> u64 {
        self.steps
    }

    /// Total model queries issued so far (the quantity empty-space skipping
    /// reduces).
    pub fn points_queried(&self) -> u64 {
        self.points_queried
    }

    /// Iterations that forced some pooled engine buffer to grow its
    /// capacity. After one warm-up iteration at the steady-state batch
    /// shape this stays flat — the allocation-counting hook the arena
    /// tests and the throughput bench assert on. (Per-task rayon spawn
    /// boxes and model-internal chunk scratch warm-up are outside the
    /// arena; the model scratch likewise reaches a fixed size after
    /// warm-up.)
    pub fn arena_growth_events(&self) -> u64 {
        self.arena.growth_events()
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Consumes the trainer, returning the trained model with every
    /// parameter brought up to date (lazily deferred optimizer updates are
    /// flushed first).
    pub fn into_model(mut self) -> M {
        self.model.sync_parameters();
        self.model
    }

    /// Runs one training iteration on a random pixel batch; returns the
    /// batch loss.
    pub fn train_step(&mut self, dataset: &Dataset) -> f64 {
        self.train_step_with_sink(dataset, None)
    }

    /// [`Trainer::train_step`] with the trace-bus slot filled: the
    /// iteration's hash-table access stream is pushed into `sink` (cube
    /// events in gathered point order, then one `end_batch`) while the
    /// iteration executes — the hook online hardware co-simulation plugs
    /// into. Identical for both engines, which share the gathered batch.
    pub fn train_step_with_sink(
        &mut self,
        dataset: &Dataset,
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> f64 {
        if let Some(occ) = &mut self.occupancy {
            if occ.iteration % occ.refresh_every == 0 {
                // The refresh probes model densities outside the training
                // read set — flush any lazily deferred parameter updates
                // first (no-op for dense-optimizer models).
                self.model.sync_parameters();
                occ.grid.refresh(&self.model, occ.threshold, 2);
            }
            occ.iteration += 1;
        }
        let n_pixels = dataset.train_pixel_count();
        assert!(n_pixels > 0, "dataset has no training pixels");
        // Step (a): random pixel batch.
        let mut rays: Vec<Ray> = Vec::with_capacity(self.config.rays_per_batch);
        let mut targets: Vec<Vec3> = Vec::with_capacity(self.config.rays_per_batch);
        for _ in 0..self.config.rays_per_batch {
            let idx = self.rng.gen_range(0..n_pixels);
            let (vi, px, py, color) = dataset.train_pixel(idx);
            rays.push(dataset.train_views[vi].camera.ray_for_pixel(px, py));
            targets.push(color);
        }
        self.train_on_rays_with_sink(&rays, &targets, &dataset.bounds, sink)
    }

    /// Runs one iteration on explicit rays/targets (used by tests and the
    /// hardware-trace generators).
    ///
    /// Both engines consume the same gathered sample batch: Step (b) is
    /// shared, so the scalar reference and the batched SoA engine see
    /// byte-identical sample points, and only Steps (c)–(f) differ in
    /// execution strategy.
    pub fn train_on_rays(&mut self, rays: &[Ray], targets: &[Vec3], bounds: &Aabb) -> f64 {
        self.train_on_rays_with_sink(rays, targets, bounds, None)
    }

    /// [`Trainer::train_on_rays`] with the trace-bus slot filled: before
    /// the engine executes, the model streams the gathered batch's
    /// hash-table access events into `sink` (cubes per point, `end_point`
    /// per point), then the iteration is closed with one `end_batch`. The
    /// stream depends only on the gathered points, so Scalar and Batched
    /// engines emit byte-identical event sequences for the same seed.
    pub fn train_on_rays_with_sink(
        &mut self,
        rays: &[Ray],
        targets: &[Vec3],
        bounds: &Aabb,
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> f64 {
        self.steps += 1;
        self.model.begin_batch();
        self.arena.begin_iteration();
        self.gather_batch(rays, targets, bounds);
        if self.arena.spans.is_empty() {
            if let Some(sink) = sink {
                sink.end_batch(); // an empty iteration still closes a batch
            }
            self.arena.end_iteration();
            return 0.0;
        }
        self.points_queried += self.arena.points.len() as u64;
        if let Some(sink) = sink {
            self.model.stream_lookups(&self.arena.points, sink);
            sink.end_batch();
        }
        let loss = match self.config.engine {
            Engine::Scalar => self.step_scalar(),
            Engine::Batched => self.step_batched(),
        };
        self.model.apply_gradients();
        self.arena.end_iteration();
        loss
    }

    /// Step (b): samples every ray's points into the arena's
    /// structure-of-arrays batch. Consumes the rng identically regardless
    /// of engine.
    fn gather_batch(&mut self, rays: &[Ray], targets: &[Vec3], bounds: &Aabb) {
        let s = self.config.samples_per_ray;
        let Trainer {
            rng,
            occupancy,
            arena,
            ..
        } = self;
        arena.clear_gather();
        // Only occupancy-filtered rays carry per-sample step sizes; the
        // uniform case uses the span's `dt` and leaves `dts` empty.
        arena.has_dts = occupancy.is_some();
        for (ray, &target) in rays.iter().zip(targets) {
            let Some(hit) = bounds.intersect(ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            arena.jitter.clear();
            arena
                .jitter
                .extend((0..s).map(|_| rng.gen_range(-0.5..0.5)));
            ray.stratified_ts_into(
                hit.t_near.max(1e-4),
                hit.t_far,
                s,
                Some(&arena.jitter),
                &mut arena.ts,
            );
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / s as f32;
            let ts: &[f32] = if let Some(occ) = occupancy {
                occ.grid
                    .filter_ts_into(ray, bounds, &arena.ts, &mut arena.filtered);
                &arena.filtered
            } else {
                &arena.ts
            };
            if ts.is_empty() {
                continue;
            }
            let start = arena.points.len();
            for &t in ts {
                arena.points.push(bounds.normalize(ray.at(t)));
                arena.dirs.push(ray.direction);
            }
            if arena.has_dts {
                arena.dts.resize(arena.dts.len() + ts.len(), dt);
            }
            arena.spans.push(RaySpan {
                start,
                len: ts.len(),
                dt,
            });
            arena.targets.push(target);
        }
    }

    /// Steps (c)–(f), per-point reference implementation: one model
    /// `query`/`backward` call per sample, one composite per ray. Keeps
    /// its own local buffers (only the gathered batch comes from the
    /// arena): this path is the untouched equivalence anchor for the
    /// batched engine, not a throughput target.
    fn step_scalar(&mut self) -> f64 {
        let n = self.arena.points.len();
        let dts = self.arena.has_dts.then_some(self.arena.dts.as_slice());
        // Step (c): query the model point by point, in streaming order.
        let mut samples = Vec::with_capacity(n);
        for (&p, &d) in self.arena.points.iter().zip(&self.arena.dirs) {
            let (sigma, rgb) = self.model.query(p, d);
            samples.push(SamplePoint { sigma, color: rgb });
        }
        // Step (d): volume rendering.
        let outputs: Vec<_> = self
            .arena
            .spans
            .iter()
            .map(|span| {
                let ray_samples = &samples[span.start..span.start + span.len];
                match dts {
                    Some(dts) => composite(ray_samples, &dts[span.start..span.start + span.len]),
                    None => composite_uniform(ray_samples, span.dt),
                }
            })
            .collect();
        // Step (e): loss.
        let predictions: Vec<Vec3> = outputs.iter().map(|o| o.color).collect();
        let loss = l2_loss(&predictions, &self.arena.targets);
        // Step (f): backward through rendering, MLPs and the hash table.
        for ((span, out), d_pred) in self
            .arena
            .spans
            .iter()
            .zip(&outputs)
            .zip(&loss.d_predictions)
        {
            let ray_samples = &samples[span.start..span.start + span.len];
            let grads = match dts {
                Some(dts) => composite_backward(
                    ray_samples,
                    &dts[span.start..span.start + span.len],
                    out,
                    *d_pred,
                ),
                None => composite_backward_uniform(ray_samples, span.dt, out, *d_pred),
            };
            for i in 0..span.len {
                self.model
                    .backward(span.start + i, grads.d_sigma[i], grads.d_color[i]);
            }
        }
        loss.value
    }

    /// Steps (c)–(f), batched SoA engine: every stage runs over flat
    /// buffers, parallelized over fixed-size chunks on the thread pool.
    /// Chunk boundaries and reduction orders are thread-count-independent,
    /// so a fixed seed gives a bitwise-identical trajectory at any pool
    /// size.
    fn step_batched(&mut self) -> f64 {
        let Trainer {
            model, arena, pool, ..
        } = self;
        let n = arena.points.len();
        let m = arena.spans.len();
        // Stage buffers come from the arena: `resize` reuses capacity, and
        // every stage fully overwrites its buffer, so stale prefixes from a
        // previous iteration are never read.
        arena.sigmas.resize(n, 0.0);
        arena.rgbs.resize(n, Vec3::ZERO);
        arena.ray_colors.resize(m, Vec3::ZERO);
        arena.backgrounds.resize(m, 0.0);
        arena.weights.resize(n, 0.0);
        arena.trans_after.resize(n, 0.0);
        arena.d_sigmas.resize(n, 0.0);
        arena.d_colors.resize(n, Vec3::ZERO);
        // Step (c): batched model query (encode → MLPs), chunk-parallel
        // inside the model. Phased models run the density phase first, so
        // occupancy-driven compaction can drop samples past each ray's
        // termination point (where transmittance is exactly 0.0) before the
        // color pipeline runs; `scan_live_samples` proves the drop is
        // bitwise-free (see DESIGN.md).
        let phased = model.query_batch_density(&arena.points, &mut arena.sigmas, pool);
        if phased {
            let dts = arena.has_dts.then_some(arena.dts.as_slice());
            engine::scan_live_samples(&arena.sigmas, &arena.spans, dts, &mut arena.live);
            model.query_batch_color_compacted(&arena.dirs, &arena.live, &mut arena.rgbs, pool);
        } else {
            model.query_batch(
                &arena.points,
                &arena.dirs,
                &mut arena.sigmas,
                &mut arena.rgbs,
                pool,
            );
        }
        // Step (d): volume rendering, parallel over fixed ray chunks. The
        // per-chunk output slices are carved off the arena buffers in chunk
        // order (no per-iteration slice vectors).
        {
            let sigmas = &arena.sigmas[..];
            let rgbs = &arena.rgbs[..];
            let dts = arena.has_dts.then_some(&arena.dts[..]);
            let mut rc = &mut arena.ray_colors[..];
            let mut bg = &mut arena.backgrounds[..];
            let mut wc = &mut arena.weights[..];
            let mut tc = &mut arena.trans_after[..];
            pool.scope(|s| {
                for spans in arena.spans.chunks(engine::RAY_CHUNK) {
                    let samples: usize = spans.iter().map(|sp| sp.len).sum();
                    let (rc_head, rc_rest) = std::mem::take(&mut rc).split_at_mut(spans.len());
                    rc = rc_rest;
                    let (bg_head, bg_rest) = std::mem::take(&mut bg).split_at_mut(spans.len());
                    bg = bg_rest;
                    let (wc_head, wc_rest) = std::mem::take(&mut wc).split_at_mut(samples);
                    wc = wc_rest;
                    let (tc_head, tc_rest) = std::mem::take(&mut tc).split_at_mut(samples);
                    tc = tc_rest;
                    s.spawn(move |_| {
                        let batch = RayBatch {
                            sigmas,
                            colors: rgbs,
                            spans,
                            dts,
                            sample_base: spans[0].start,
                        };
                        composite_spans(&batch, rc_head, bg_head, wc_head, tc_head);
                    });
                }
            });
        }
        // Step (e): loss, into the pooled gradient buffer.
        let loss = l2_loss_into(&arena.ray_colors, &arena.targets, &mut arena.d_predictions);
        // Step (f): backward — composite backward in parallel over the same
        // chunks, then the model's chunked backward with ordered reduction.
        {
            let sigmas = &arena.sigmas[..];
            let rgbs = &arena.rgbs[..];
            let weights = &arena.weights[..];
            let trans_after = &arena.trans_after[..];
            let dts = arena.has_dts.then_some(&arena.dts[..]);
            let mut ds = &mut arena.d_sigmas[..];
            let mut dc = &mut arena.d_colors[..];
            pool.scope(|s| {
                for (spans, dp) in arena
                    .spans
                    .chunks(engine::RAY_CHUNK)
                    .zip(arena.d_predictions.chunks(engine::RAY_CHUNK))
                {
                    let samples: usize = spans.iter().map(|sp| sp.len).sum();
                    let (ds_head, ds_rest) = std::mem::take(&mut ds).split_at_mut(samples);
                    ds = ds_rest;
                    let (dc_head, dc_rest) = std::mem::take(&mut dc).split_at_mut(samples);
                    dc = dc_rest;
                    s.spawn(move |_| {
                        let base = spans[0].start;
                        let count = ds_head.len();
                        let batch = RayBatch {
                            sigmas,
                            colors: rgbs,
                            spans,
                            dts,
                            sample_base: base,
                        };
                        composite_backward_spans(
                            &batch,
                            &weights[base..base + count],
                            &trans_after[base..base + count],
                            dp,
                            ds_head,
                            dc_head,
                        );
                    });
                }
            });
        }
        if phased {
            model.backward_batch_compacted(&arena.d_sigmas, &arena.d_colors, pool);
        } else {
            model.backward_batch(&arena.d_sigmas, &arena.d_colors, pool);
        }
        loss
    }

    /// Trains for `iterations` steps, returning the loss trajectory.
    pub fn train(&mut self, dataset: &Dataset, iterations: usize) -> TrainReport {
        self.train_loop(dataset, iterations, None)
    }

    /// [`Trainer::train`] with the trace-bus slot filled: every iteration
    /// streams its access events into `sink` and closes with `end_batch`,
    /// so a hardware co-simulation (e.g. `inerf_accel`'s `CosimSink`) runs
    /// online over the whole training run at constant memory.
    pub fn train_with_sink(
        &mut self,
        dataset: &Dataset,
        iterations: usize,
        sink: &mut dyn TraceSink,
    ) -> TrainReport {
        self.train_loop(dataset, iterations, Some(sink))
    }

    fn train_loop(
        &mut self,
        dataset: &Dataset,
        iterations: usize,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> TrainReport {
        let mut losses = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            losses.push(self.train_step_with_sink(dataset, sink.as_deref_mut()));
        }
        TrainReport {
            iterations,
            first_loss: losses.first().copied().unwrap_or(0.0),
            last_loss: losses.last().copied().unwrap_or(0.0),
            losses,
        }
    }

    /// Renders an image from the trained model (no gradient tracking)
    /// through the inference fast path — occupancy culling against this
    /// trainer's own grid (when enabled) plus early ray termination
    /// ([`RenderOpts::default`]); use [`Trainer::render_view_opts`] with
    /// [`RenderOpts::reference`] for the pinned bitwise-exact semantics.
    /// Flushes lazily deferred optimizer updates first, so the render sees
    /// exactly the parameters a dense-optimizer run would hold.
    pub fn render_view(&mut self, camera: &Camera, bounds: &Aabb) -> Image {
        self.render_view_opts(camera, bounds, &RenderOpts::default())
    }

    /// [`Trainer::render_view`] with explicit fast-path switches.
    pub fn render_view_opts(&mut self, camera: &Camera, bounds: &Aabb, opts: &RenderOpts) -> Image {
        self.model.sync_parameters();
        self.render.render_view(
            &self.model,
            camera,
            bounds,
            self.config.eval_samples_per_ray,
            self.occupancy.as_ref().map(|o| &o.grid),
            opts,
            &self.pool,
        )
    }

    /// Mean PSNR over the dataset's held-out test views, rendered through
    /// the inference fast path (see [`Trainer::render_view`]). Flushes
    /// lazily deferred optimizer updates first.
    pub fn eval_psnr(&mut self, dataset: &Dataset) -> f64 {
        self.eval_psnr_opts(dataset, &RenderOpts::default())
    }

    /// [`Trainer::eval_psnr`] with explicit fast-path switches.
    pub fn eval_psnr_opts(&mut self, dataset: &Dataset, opts: &RenderOpts) -> f64 {
        self.model.sync_parameters();
        self.render.eval_psnr(
            &self.model,
            dataset,
            self.config.eval_samples_per_ray,
            self.occupancy.as_ref().map(|o| &o.grid),
            opts,
            &self.pool,
        )
    }

    /// Work and stage-time accounting of the most recent render (or of
    /// the last view of the most recent [`Trainer::eval_psnr`]).
    pub fn render_stats(&self) -> &crate::render::RenderStats {
        self.render.last_stats()
    }

    /// Render blocks (since construction) that grew some pooled render
    /// buffer's capacity — the render-side analogue of
    /// [`Trainer::arena_growth_events`].
    pub fn render_growth_events(&self) -> u64 {
        self.render.growth_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IngpModel, ModelConfig};
    use inerf_scenes::{zoo, DatasetConfig};

    fn tiny_setup() -> (Dataset, Trainer<IngpModel>) {
        let scene = zoo::scene(zoo::SceneKind::Mic);
        let dataset = DatasetConfig::tiny().generate(&scene);
        let model = IngpModel::new(ModelConfig::tiny(), 11);
        (dataset, Trainer::new(model, TrainConfig::tiny(), 4))
    }

    #[test]
    fn paper_config_points_per_iteration() {
        assert_eq!(TrainConfig::paper().points_per_iteration(), 256 * 1024);
    }

    #[test]
    fn training_reduces_loss() {
        let (dataset, mut trainer) = tiny_setup();
        let report = trainer.train(&dataset, 40);
        assert_eq!(report.iterations, 40);
        // Average the first and last few losses to smooth batch noise.
        let early: f64 = report.losses[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = report.losses[35..].iter().sum::<f64>() / 5.0;
        assert!(
            late < early * 0.8,
            "training loss should drop: early {early:.5} vs late {late:.5}"
        );
    }

    #[test]
    fn training_improves_psnr_over_untrained() {
        let scene = zoo::scene(zoo::SceneKind::Hotdog);
        let dataset = DatasetConfig::tiny().generate(&scene);
        let model = IngpModel::new(ModelConfig::tiny(), 11);
        let mut trainer = Trainer::new(model, TrainConfig::tiny(), 4);
        let before = trainer.eval_psnr(&dataset);
        trainer.train(&dataset, 60);
        let after = trainer.eval_psnr(&dataset);
        assert!(
            after > before + 1.0,
            "PSNR should improve by >1 dB: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn render_view_dimensions_and_range() {
        let (dataset, mut trainer) = tiny_setup();
        let cam = &dataset.test_views[0].camera;
        let img = trainer.render_view(cam, &dataset.bounds);
        assert_eq!(img.width(), cam.width);
        assert_eq!(img.height(), cam.height);
        for p in img.pixels() {
            assert!(p.is_finite());
            assert!(p.x >= 0.0 && p.x <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn rays_missing_bounds_yield_zero_loss() {
        let (_, mut trainer) = tiny_setup();
        let rays = vec![Ray::new(
            Vec3::new(0.0, 10.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )];
        let loss = trainer.train_on_rays(
            &rays,
            &[Vec3::ZERO],
            &Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
        );
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn train_report_records_trajectory() {
        let (dataset, mut trainer) = tiny_setup();
        let report = trainer.train(&dataset, 5);
        assert_eq!(report.losses.len(), 5);
        assert_eq!(report.first_loss, report.losses[0]);
        assert_eq!(report.last_loss, report.losses[4]);
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;

    /// A deterministic analytic field dense enough that rays terminate
    /// (transmittance reaches exactly 0.0) partway through their samples.
    /// It implements both the dense and the phased/compacted batched entry
    /// points and records the gradients the engine feeds back, so the test
    /// below can prove occupancy-driven compaction is a bitwise no-op while
    /// actually skipping color work.
    #[derive(Debug, Clone, Default)]
    struct PhasedProbe {
        phased: bool,
        points: Vec<Vec3>,
        color_evals: u64,
        d_sigmas_seen: Vec<f32>,
        d_colors_seen: Vec<Vec3>,
    }

    fn probe_sigma(p: Vec3) -> f32 {
        60.0 + 25.0 * (4.0 * p.x).sin().abs() + 40.0 * p.y.abs()
    }

    fn probe_rgb(p: Vec3, d: Vec3) -> Vec3 {
        Vec3::new(
            0.5 + 0.5 * (3.0 * p.x + d.y).sin(),
            0.5 + 0.5 * (2.0 * p.y - d.z).cos(),
            0.5 + 0.5 * (4.0 * p.z + d.x).sin(),
        )
    }

    impl TrainableField for PhasedProbe {
        fn begin_batch(&mut self) {
            self.points.clear();
            self.d_sigmas_seen.clear();
            self.d_colors_seen.clear();
        }

        fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3) {
            self.color_evals += 1;
            (probe_sigma(p), probe_rgb(p, d))
        }

        fn backward(&mut self, idx: usize, d_sigma: f32, d_color: Vec3) {
            if self.d_sigmas_seen.len() <= idx {
                self.d_sigmas_seen.resize(idx + 1, 0.0);
                self.d_colors_seen.resize(idx + 1, Vec3::ZERO);
            }
            self.d_sigmas_seen[idx] = d_sigma;
            self.d_colors_seen[idx] = d_color;
        }

        fn apply_gradients(&mut self) {}

        fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3) {
            (probe_sigma(p), probe_rgb(p, d))
        }

        fn parameter_count(&self) -> usize {
            0
        }

        fn query_batch_density(
            &mut self,
            points: &[Vec3],
            sigmas: &mut [f32],
            _pool: &ThreadPool,
        ) -> bool {
            self.points = points.to_vec();
            for (s, &p) in sigmas.iter_mut().zip(points) {
                *s = probe_sigma(p);
            }
            self.phased
        }

        fn query_batch_color_compacted(
            &mut self,
            dirs: &[Vec3],
            live: &[u32],
            rgbs: &mut [Vec3],
            _pool: &ThreadPool,
        ) {
            rgbs.fill(Vec3::ZERO);
            for &i in live {
                let i = i as usize;
                self.color_evals += 1;
                rgbs[i] = probe_rgb(self.points[i], dirs[i]);
            }
        }

        fn backward_batch_compacted(
            &mut self,
            d_sigmas: &[f32],
            d_colors: &[Vec3],
            pool: &ThreadPool,
        ) {
            self.backward_batch(d_sigmas, d_colors, pool);
        }
    }

    #[test]
    fn compaction_is_bitwise_free_and_skips_dead_color_work() {
        // Rays through a wall of density ≥ 60 with dt ≈ 0.2: transmittance
        // underflows to exactly 0.0 a handful of samples in, so roughly
        // half of every ray is dead. The compacted run must reproduce the
        // dense run bit for bit while evaluating strictly fewer colors.
        let bounds = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let mut rays = Vec::new();
        let mut targets = Vec::new();
        for i in 0..24 {
            let f = i as f32 / 24.0;
            let origin = Vec3::new(
                2.5 * (6.3 * f).cos(),
                0.4 * (12.0 * f).sin(),
                2.5 * (6.3 * f).sin(),
            );
            let aim = Vec3::new(0.3 * (9.0 * f).sin(), 0.2 * (7.0 * f).cos(), 0.0);
            rays.push(Ray::new(origin, (aim - origin).normalized()));
            targets.push(Vec3::new(f, 1.0 - f, 0.5));
        }
        let run = |phased: bool| {
            let probe = PhasedProbe {
                phased,
                ..PhasedProbe::default()
            };
            let mut trainer = Trainer::new(probe, TrainConfig::tiny(), 7).with_threads(2);
            let loss = trainer.train_on_rays(&rays, &targets, &bounds);
            let queried = trainer.points_queried();
            (loss, queried, trainer.into_model())
        };
        let (dense_loss, dense_queried, dense) = run(false);
        let (compact_loss, compact_queried, compact) = run(true);
        assert_eq!(
            dense_loss.to_bits(),
            compact_loss.to_bits(),
            "loss must be bitwise identical: {dense_loss} vs {compact_loss}"
        );
        assert_eq!(dense_queried, compact_queried);
        assert_eq!(dense.d_sigmas_seen.len(), compact.d_sigmas_seen.len());
        for (i, (a, b)) in dense
            .d_sigmas_seen
            .iter()
            .zip(&compact.d_sigmas_seen)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "d_sigma[{i}]: {a} vs {b}");
        }
        for (i, (a, b)) in dense
            .d_colors_seen
            .iter()
            .zip(&compact.d_colors_seen)
            .enumerate()
        {
            assert_eq!(
                [a.x.to_bits(), a.y.to_bits(), a.z.to_bits()],
                [b.x.to_bits(), b.y.to_bits(), b.z.to_bits()],
                "d_color[{i}]: {a:?} vs {b:?}"
            );
        }
        assert!(
            compact.color_evals < dense.color_evals,
            "compaction must skip dead color evaluations: compact {} vs dense {}",
            compact.color_evals,
            dense.color_evals
        );
        assert!(compact.color_evals > 0, "live samples still need colors");
    }
}

#[cfg(test)]
mod occupancy_tests {
    use super::*;
    use crate::model::{IngpModel, ModelConfig};
    use inerf_scenes::{zoo, DatasetConfig};

    #[test]
    fn occupancy_grid_cuts_queries_without_hurting_quality() {
        let scene = zoo::scene(zoo::SceneKind::Mic); // sparse scene: big skips
        let dataset = DatasetConfig::tiny().generate(&scene);
        let iterations = 50;

        let mut dense = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 5),
            TrainConfig::tiny(),
            9,
        );
        dense.train(&dataset, iterations);
        let dense_queries = dense.points_queried();
        let dense_psnr = dense.eval_psnr(&dataset);

        // Warm up briefly so the grid refresh sees real densities, matching
        // iNGP's schedule of enabling skipping after early iterations.
        let mut skipping = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 5),
            TrainConfig::tiny(),
            9,
        );
        skipping.train(&dataset, 20);
        let mut skipping = {
            // Rebuild with the grid enabled, keeping the warmed model.
            let model = skipping.into_model();
            Trainer::new(model, TrainConfig::tiny(), 9).with_occupancy_grid(16, 0.05, 10)
        };
        skipping.train(&dataset, iterations - 20);
        let skip_queries = skipping.points_queried();
        let skip_psnr = skipping.eval_psnr(&dataset);

        assert!(
            (skip_queries as f64) < 0.9 * dense_queries as f64,
            "skipping should cut queries: {skip_queries} vs {dense_queries}"
        );
        assert!(
            skip_psnr > dense_psnr - 3.0,
            "quality must not collapse: {skip_psnr:.2} vs {dense_psnr:.2} dB"
        );
    }

    #[test]
    fn occupancy_grid_accessor() {
        let t = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 1),
            TrainConfig::tiny(),
            1,
        );
        assert!(t.occupancy_grid().is_none());
        let t = t.with_occupancy_grid(8, 0.1, 5);
        assert!(t.occupancy_grid().is_some());
    }
}
