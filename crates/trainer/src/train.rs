//! The training loop: batches, rendering, loss, backprop, evaluation.

use crate::model::TrainableField;
use crate::occupancy::OccupancyGrid;
use crate::streaming::StreamingOrder;
use inerf_geom::{Aabb, Camera, Ray, Vec3};
use inerf_render::l2_loss;
use inerf_render::volume::{composite, composite_backward, SamplePoint};
use inerf_scenes::{psnr_from_mse, Dataset, Image};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Rays (pixels) per iteration batch — Step (a) of the pipeline.
    pub rays_per_batch: usize,
    /// Stratified samples per ray — Step (b).
    pub samples_per_ray: usize,
    /// Point streaming order (affects hardware traces, not the math).
    pub order: StreamingOrder,
    /// Samples per ray used when rendering evaluation images.
    pub eval_samples_per_ray: usize,
}

impl TrainConfig {
    /// The paper's workload shape: 256 K sampled points per iteration
    /// (2 K rays × 128 samples), ray-first order.
    pub fn paper() -> Self {
        TrainConfig {
            rays_per_batch: 2048,
            samples_per_ray: 128,
            order: StreamingOrder::RayFirst,
            eval_samples_per_ray: 128,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            rays_per_batch: 32,
            samples_per_ray: 16,
            order: StreamingOrder::RayFirst,
            eval_samples_per_ray: 24,
        }
    }

    /// A small configuration for examples and PSNR runs.
    pub fn small() -> Self {
        TrainConfig {
            rays_per_batch: 256,
            samples_per_ray: 32,
            order: StreamingOrder::RayFirst,
            eval_samples_per_ray: 48,
        }
    }

    /// Sampled points per iteration (the paper's "batch size" unit).
    pub fn points_per_iteration(&self) -> usize {
        self.rays_per_batch * self.samples_per_ray
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Loss after the first iteration.
    pub first_loss: f64,
    /// Loss after the last iteration.
    pub last_loss: f64,
    /// Per-iteration losses.
    pub losses: Vec<f64>,
}

/// Optional empty-space skipping state.
#[derive(Debug, Clone)]
struct OccupancyState {
    grid: OccupancyGrid,
    threshold: f32,
    refresh_every: usize,
    iteration: usize,
}

/// Drives a [`TrainableField`] through the six-step NeRF training pipeline.
#[derive(Debug, Clone)]
pub struct Trainer<M> {
    model: M,
    config: TrainConfig,
    rng: SmallRng,
    occupancy: Option<OccupancyState>,
    points_queried: u64,
}

impl<M: TrainableField> Trainer<M> {
    /// Creates a trainer. `seed` drives batch selection and jitter.
    pub fn new(model: M, config: TrainConfig, seed: u64) -> Self {
        Trainer {
            model,
            config,
            rng: SmallRng::seed_from_u64(seed),
            occupancy: None,
            points_queried: 0,
        }
    }

    /// Enables iNGP-style empty-space skipping: a `resolution`^3 occupancy
    /// grid refreshed from the model every `refresh_every` iterations;
    /// samples in cells whose density stays below `threshold` are skipped.
    pub fn with_occupancy_grid(
        mut self,
        resolution: u32,
        threshold: f32,
        refresh_every: usize,
    ) -> Self {
        self.occupancy = Some(OccupancyState {
            grid: OccupancyGrid::new(resolution),
            threshold,
            refresh_every: refresh_every.max(1),
            iteration: 0,
        });
        self
    }

    /// The occupancy grid, if enabled.
    pub fn occupancy_grid(&self) -> Option<&OccupancyGrid> {
        self.occupancy.as_ref().map(|o| &o.grid)
    }

    /// Total model queries issued so far (the quantity empty-space skipping
    /// reduces).
    pub fn points_queried(&self) -> u64 {
        self.points_queried
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Runs one training iteration on a random pixel batch; returns the
    /// batch loss.
    pub fn train_step(&mut self, dataset: &Dataset) -> f64 {
        if let Some(occ) = &mut self.occupancy {
            if occ.iteration % occ.refresh_every == 0 {
                occ.grid.refresh(&self.model, occ.threshold, 2);
            }
            occ.iteration += 1;
        }
        let n_pixels = dataset.train_pixel_count();
        assert!(n_pixels > 0, "dataset has no training pixels");
        // Step (a): random pixel batch.
        let mut rays: Vec<Ray> = Vec::with_capacity(self.config.rays_per_batch);
        let mut targets: Vec<Vec3> = Vec::with_capacity(self.config.rays_per_batch);
        for _ in 0..self.config.rays_per_batch {
            let idx = self.rng.gen_range(0..n_pixels);
            let (vi, px, py, color) = dataset.train_pixel(idx);
            rays.push(dataset.train_views[vi].camera.ray_for_pixel(px, py));
            targets.push(color);
        }
        self.train_on_rays(&rays, &targets, &dataset.bounds)
    }

    /// Runs one iteration on explicit rays/targets (used by tests and the
    /// hardware-trace generators).
    pub fn train_on_rays(&mut self, rays: &[Ray], targets: &[Vec3], bounds: &Aabb) -> f64 {
        self.model.begin_batch();
        let s = self.config.samples_per_ray;
        // Step (b): sample points per ray; Step (c): query the model in
        // streaming order. Ray-first is the natural loop order; the Random
        // order shuffles queries but backprop bookkeeping stays per-ray.
        struct RayRecord {
            samples: Vec<SamplePoint>,
            dts: Vec<f32>,
            cache_base: usize,
            target: Vec3,
        }
        let mut records: Vec<RayRecord> = Vec::with_capacity(rays.len());
        let mut cache_idx = 0usize;
        for (ray, &target) in rays.iter().zip(targets) {
            let Some(hit) = bounds.intersect(ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            let jitter: Vec<f32> = (0..s).map(|_| self.rng.gen_range(-0.5..0.5)).collect();
            let mut ts = ray.stratified_ts(hit.t_near.max(1e-4), hit.t_far, s, Some(&jitter));
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / s as f32;
            if let Some(occ) = &self.occupancy {
                let (kept, _) = occ.grid.filter_ts(ray, bounds, &ts);
                ts = kept;
            }
            if ts.is_empty() {
                continue;
            }
            let mut samples = Vec::with_capacity(ts.len());
            for &t in &ts {
                let p = bounds.normalize(ray.at(t));
                let (sigma, rgb) = self.model.query(p, ray.direction);
                samples.push(SamplePoint { sigma, color: rgb });
            }
            self.points_queried += samples.len() as u64;
            let n = samples.len();
            records.push(RayRecord {
                samples,
                dts: vec![dt; n],
                cache_base: cache_idx,
                target,
            });
            cache_idx += n;
        }
        if records.is_empty() {
            return 0.0;
        }
        // Step (d): volume rendering.
        let outputs: Vec<_> = records
            .iter()
            .map(|r| composite(&r.samples, &r.dts))
            .collect();
        // Step (e): loss.
        let predictions: Vec<Vec3> = outputs.iter().map(|o| o.color).collect();
        let target_colors: Vec<Vec3> = records.iter().map(|r| r.target).collect();
        let loss = l2_loss(&predictions, &target_colors);
        // Step (f): backward through rendering, MLPs and the hash table.
        for ((record, out), d_pred) in records.iter().zip(&outputs).zip(&loss.d_predictions) {
            let grads = composite_backward(&record.samples, &record.dts, out, *d_pred);
            for i in 0..record.samples.len() {
                self.model
                    .backward(record.cache_base + i, grads.d_sigma[i], grads.d_color[i]);
            }
        }
        self.model.apply_gradients();
        loss.value
    }

    /// Trains for `iterations` steps, returning the loss trajectory.
    pub fn train(&mut self, dataset: &Dataset, iterations: usize) -> TrainReport {
        let mut losses = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            losses.push(self.train_step(dataset));
        }
        TrainReport {
            iterations,
            first_loss: losses.first().copied().unwrap_or(0.0),
            last_loss: losses.last().copied().unwrap_or(0.0),
            losses,
        }
    }

    /// Renders an image from the trained model (no gradient tracking).
    pub fn render_view(&self, camera: &Camera, bounds: &Aabb) -> Image {
        render_view(
            &self.model,
            camera,
            bounds,
            self.config.eval_samples_per_ray,
        )
    }

    /// Mean PSNR over the dataset's held-out test views.
    pub fn eval_psnr(&self, dataset: &Dataset) -> f64 {
        eval_psnr(&self.model, dataset, self.config.eval_samples_per_ray)
    }
}

/// Renders `camera`'s image from any trained field.
pub fn render_view<M: TrainableField>(
    model: &M,
    camera: &Camera,
    bounds: &Aabb,
    samples_per_ray: usize,
) -> Image {
    let mut img = Image::new(camera.width, camera.height);
    for py in 0..camera.height {
        for px in 0..camera.width {
            let ray = camera.ray_for_pixel(px, py);
            let Some(hit) = bounds.intersect(&ray) else {
                continue;
            };
            if hit.t_far - hit.t_near < 1e-5 {
                continue;
            }
            let ts = ray.stratified_ts(hit.t_near.max(1e-4), hit.t_far, samples_per_ray, None);
            let dt = (hit.t_far - hit.t_near.max(1e-4)) / samples_per_ray as f32;
            let samples: Vec<SamplePoint> = ts
                .iter()
                .map(|&t| {
                    let p = bounds.normalize(ray.at(t));
                    let (sigma, color) = model.query_eval(p, ray.direction);
                    SamplePoint { sigma, color }
                })
                .collect();
            let out = composite(&samples, &vec![dt; samples_per_ray]);
            img.set(px, py, out.color);
        }
    }
    img
}

/// Mean PSNR of a model over a dataset's held-out test views.
pub fn eval_psnr<M: TrainableField>(model: &M, dataset: &Dataset, samples_per_ray: usize) -> f64 {
    assert!(!dataset.test_views.is_empty(), "dataset has no test views");
    let mut total_mse = 0.0f64;
    for view in &dataset.test_views {
        let rendered = render_view(model, &view.camera, &dataset.bounds, samples_per_ray);
        total_mse += inerf_scenes::mse(&rendered, &view.image);
    }
    psnr_from_mse(total_mse / dataset.test_views.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IngpModel, ModelConfig};
    use inerf_scenes::{zoo, DatasetConfig};

    fn tiny_setup() -> (Dataset, Trainer<IngpModel>) {
        let scene = zoo::scene(zoo::SceneKind::Mic);
        let dataset = DatasetConfig::tiny().generate(&scene);
        let model = IngpModel::new(ModelConfig::tiny(), 11);
        (dataset, Trainer::new(model, TrainConfig::tiny(), 4))
    }

    #[test]
    fn paper_config_points_per_iteration() {
        assert_eq!(TrainConfig::paper().points_per_iteration(), 256 * 1024);
    }

    #[test]
    fn training_reduces_loss() {
        let (dataset, mut trainer) = tiny_setup();
        let report = trainer.train(&dataset, 40);
        assert_eq!(report.iterations, 40);
        // Average the first and last few losses to smooth batch noise.
        let early: f64 = report.losses[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = report.losses[35..].iter().sum::<f64>() / 5.0;
        assert!(
            late < early * 0.8,
            "training loss should drop: early {early:.5} vs late {late:.5}"
        );
    }

    #[test]
    fn training_improves_psnr_over_untrained() {
        let scene = zoo::scene(zoo::SceneKind::Hotdog);
        let dataset = DatasetConfig::tiny().generate(&scene);
        let model = IngpModel::new(ModelConfig::tiny(), 11);
        let mut trainer = Trainer::new(model, TrainConfig::tiny(), 4);
        let before = trainer.eval_psnr(&dataset);
        trainer.train(&dataset, 60);
        let after = trainer.eval_psnr(&dataset);
        assert!(
            after > before + 1.0,
            "PSNR should improve by >1 dB: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn render_view_dimensions_and_range() {
        let (dataset, trainer) = tiny_setup();
        let cam = &dataset.test_views[0].camera;
        let img = trainer.render_view(cam, &dataset.bounds);
        assert_eq!(img.width(), cam.width);
        assert_eq!(img.height(), cam.height);
        for p in img.pixels() {
            assert!(p.is_finite());
            assert!(p.x >= 0.0 && p.x <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn rays_missing_bounds_yield_zero_loss() {
        let (_, mut trainer) = tiny_setup();
        let rays = vec![Ray::new(
            Vec3::new(0.0, 10.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )];
        let loss = trainer.train_on_rays(
            &rays,
            &[Vec3::ZERO],
            &Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
        );
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn train_report_records_trajectory() {
        let (dataset, mut trainer) = tiny_setup();
        let report = trainer.train(&dataset, 5);
        assert_eq!(report.losses.len(), 5);
        assert_eq!(report.first_loss, report.losses[0]);
        assert_eq!(report.last_loss, report.losses[4]);
    }
}

#[cfg(test)]
mod occupancy_tests {
    use super::*;
    use crate::model::{IngpModel, ModelConfig};
    use inerf_scenes::{zoo, DatasetConfig};

    #[test]
    fn occupancy_grid_cuts_queries_without_hurting_quality() {
        let scene = zoo::scene(zoo::SceneKind::Mic); // sparse scene: big skips
        let dataset = DatasetConfig::tiny().generate(&scene);
        let iterations = 50;

        let mut dense = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 5),
            TrainConfig::tiny(),
            9,
        );
        dense.train(&dataset, iterations);
        let dense_queries = dense.points_queried();
        let dense_psnr = dense.eval_psnr(&dataset);

        // Warm up briefly so the grid refresh sees real densities, matching
        // iNGP's schedule of enabling skipping after early iterations.
        let mut skipping = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 5),
            TrainConfig::tiny(),
            9,
        );
        skipping.train(&dataset, 20);
        let mut skipping = {
            // Rebuild with the grid enabled, keeping the warmed model.
            let model = skipping.into_model();
            Trainer::new(model, TrainConfig::tiny(), 9).with_occupancy_grid(16, 0.05, 10)
        };
        skipping.train(&dataset, iterations - 20);
        let skip_queries = skipping.points_queried();
        let skip_psnr = skipping.eval_psnr(&dataset);

        assert!(
            (skip_queries as f64) < 0.9 * dense_queries as f64,
            "skipping should cut queries: {skip_queries} vs {dense_queries}"
        );
        assert!(
            skip_psnr > dense_psnr - 3.0,
            "quality must not collapse: {skip_psnr:.2} vs {dense_psnr:.2} dB"
        );
    }

    #[test]
    fn occupancy_grid_accessor() {
        let t = Trainer::new(
            IngpModel::new(ModelConfig::tiny(), 1),
            TrainConfig::tiny(),
            1,
        );
        assert!(t.occupancy_grid().is_none());
        let t = t.with_occupancy_grid(8, 0.1, 5);
        assert!(t.occupancy_grid().is_some());
    }
}
