//! Thread-pool plumbing for the batched SoA execution engine.
//!
//! The batched hot path (see [`crate::train`] and [`crate::model`]) splits
//! every stage into *fixed-size* chunks — [`RAY_CHUNK`] rays for the
//! compositing stages, `POINT_CHUNK` points inside the model — and runs the
//! chunks on a [`rayon::ThreadPool`]. Chunk boundaries never depend on the
//! worker count and all cross-chunk reductions happen sequentially in chunk
//! order, so training is bitwise-deterministic for a fixed seed at *any*
//! thread count; the knob only changes wall-clock time.
//!
//! The pool size comes from the `INERF_THREADS` environment variable
//! (default: all available cores); [`crate::train::Trainer::with_threads`]
//! overrides it per trainer, which is what the determinism tests use.

use inerf_geom::Vec3;
use inerf_render::volume::RaySpan;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::sync::{Arc, OnceLock};

/// Rays per task in the parallel composite / composite-backward stages.
///
/// Fixed (instead of derived from the worker count) so that the chunk
/// decomposition — and with it every floating-point reduction order — is
/// identical at 1, 2, or 64 threads.
pub const RAY_CHUNK: usize = 16;

/// Parses an `INERF_THREADS` value: a positive integer. Anything else is
/// a hard error naming the value — a typo must not silently run on all
/// cores under a benchmark that claims a fixed thread count.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "INERF_THREADS={:?} is not a positive integer thread count",
            raw.trim()
        )),
    }
}

/// The thread count requested via `INERF_THREADS`, or all available cores.
///
/// # Panics
///
/// Panics if `INERF_THREADS` is set to anything but a positive integer
/// (see [`parse_threads`]) — configuration typos fail loudly.
pub fn default_threads() -> usize {
    match std::env::var("INERF_THREADS") {
        Ok(v) => match parse_threads(&v) {
            Ok(n) => n,
            Err(msg) => panic!("{msg}"),
        },
        Err(std::env::VarError::NotPresent) => {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("INERF_THREADS={v:?} is not valid Unicode")
        }
    }
}

/// Builds a dedicated pool with exactly `threads` workers.
pub fn build_pool(threads: usize) -> Arc<ThreadPool> {
    Arc::new(
        ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail"),
    )
}

/// The process-wide default pool, sized by [`default_threads`] on first use
/// and shared by every trainer that doesn't request its own size.
pub fn default_pool() -> Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| build_pool(default_threads())))
}

/// Pooled per-iteration buffers of the batched engine: every
/// structure-of-arrays buffer `gather_batch`/`step_batched` fills lives
/// here and is reused across iterations, so steady-state training performs
/// no per-iteration heap allocation in the engine itself. (The remaining
/// per-iteration allocations are the thread-pool spawn closures boxed
/// inside the vendored rayon — a per-task fixed cost outside the arena's
/// reach — and any model-internal scratch, which [`crate::model::IngpModel`]
/// pools separately per chunk.)
///
/// The arena tracks its own *capacity-growth events*: an iteration that
/// forces any pooled buffer to grow its capacity counts as one event.
/// After a warm-up iteration sized like the steady state, the count must
/// stay flat — the allocation hook the arena tests and the throughput
/// bench assert on.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchArena {
    // Gather outputs (the iteration's sample batch, SoA).
    pub points: Vec<Vec3>,
    pub dirs: Vec<Vec3>,
    pub spans: Vec<RaySpan>,
    /// Per-sample step sizes; meaningful only when `has_dts` is set (the
    /// occupancy-filtered path).
    pub dts: Vec<f32>,
    pub has_dts: bool,
    pub targets: Vec<Vec3>,
    // Per-ray gather scratch.
    pub jitter: Vec<f32>,
    pub ts: Vec<f32>,
    pub filtered: Vec<f32>,
    // Forward/backward stage buffers.
    pub sigmas: Vec<f32>,
    pub rgbs: Vec<Vec3>,
    pub ray_colors: Vec<Vec3>,
    pub backgrounds: Vec<f32>,
    pub weights: Vec<f32>,
    pub trans_after: Vec<f32>,
    pub d_sigmas: Vec<f32>,
    pub d_colors: Vec<Vec3>,
    pub d_predictions: Vec<Vec3>,
    /// Ascending global indices of live (non-compacted) samples.
    pub live: Vec<u32>,
    growth_events: u64,
    cap_mark: usize,
}

impl BatchArena {
    /// Total capacity across every pooled buffer, in elements. Capacities
    /// never shrink (the arena never calls `shrink_to_fit`), so the sum
    /// grows if and only if some buffer reallocated.
    fn capacity_sum(&self) -> usize {
        self.points.capacity()
            + self.dirs.capacity()
            + self.spans.capacity()
            + self.dts.capacity()
            + self.targets.capacity()
            + self.jitter.capacity()
            + self.ts.capacity()
            + self.filtered.capacity()
            + self.sigmas.capacity()
            + self.rgbs.capacity()
            + self.ray_colors.capacity()
            + self.backgrounds.capacity()
            + self.weights.capacity()
            + self.trans_after.capacity()
            + self.d_sigmas.capacity()
            + self.d_colors.capacity()
            + self.d_predictions.capacity()
            + self.live.capacity()
    }

    /// Marks the start of an iteration for growth accounting.
    pub fn begin_iteration(&mut self) {
        self.cap_mark = self.capacity_sum();
    }

    /// Closes an iteration: if any pooled buffer grew its capacity since
    /// [`BatchArena::begin_iteration`], records one growth event.
    pub fn end_iteration(&mut self) {
        if self.capacity_sum() > self.cap_mark {
            self.growth_events += 1;
        }
    }

    /// Iterations (since construction) that grew some pooled buffer. Flat
    /// across steady-state iterations — the zero-allocation test hook.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }

    /// Clears the gather-stage buffers for refilling (capacity retained).
    pub fn clear_gather(&mut self) {
        self.points.clear();
        self.dirs.clear();
        self.spans.clear();
        self.dts.clear();
        self.has_dts = false;
        self.targets.clear();
    }
}

/// Occupancy-driven compaction scan: appends to `live` the ascending global
/// indices of every sample the MLP color stage must evaluate, and returns
/// whether any sample was dropped. A sample is dead exactly when it lies
/// *strictly after* the sample at which its ray's transmittance reaches
/// exactly `0.0` — from there the forward contributions multiply `+0.0` and
/// the backward gradients are `±0.0`, so skipping the color pipeline for
/// those rows is bitwise-identical to evaluating it (see DESIGN.md).
///
/// The transmittance recurrence mirrors the composite kernel operation for
/// operation (`σ.max(0)`, `α = 1 − e^{−σ·dt}`, `T ← T·(1−α)`), so the
/// termination point found here is the composite's, bit for bit. A cheap
/// conservative pre-check skips the `exp` sweep for rays whose total
/// optical depth `Σ σ·dt` cannot underflow `T` to zero (`T ≈ e^{−Σσ·dt}`;
/// even with per-step rounding, a depth below 80 leaves `T` dozens of
/// orders of magnitude above the smallest subnormal).
pub(crate) fn scan_live_samples(
    sigmas: &[f32],
    spans: &[RaySpan],
    dts: Option<&[f32]>,
    live: &mut Vec<u32>,
) -> bool {
    live.clear();
    let mut any_dead = false;
    for span in spans {
        let mut depth = 0.0f64;
        for i in span.start..span.start + span.len {
            let dt = dts.map_or(span.dt, |d| d[i]);
            depth += f64::from(sigmas[i].max(0.0)) * f64::from(dt);
        }
        if depth < 80.0 {
            live.extend((span.start..span.start + span.len).map(|i| i as u32));
            continue;
        }
        let mut transmittance = 1.0f32;
        let mut cut = span.len;
        for i in 0..span.len {
            let idx = span.start + i;
            let sigma = sigmas[idx].max(0.0);
            let alpha = 1.0 - (-sigma * dts.map_or(span.dt, |d| d[idx])).exp();
            transmittance *= 1.0 - alpha;
            live.push(idx as u32);
            if transmittance == 0.0 {
                cut = i + 1;
                break;
            }
        }
        any_dead |= cut < span.len;
    }
    any_dead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        for bad in ["0", "-2", "four", "2.5", ""] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                err.contains("INERF_THREADS") && err.contains(bad.trim()),
                "error must name the variable and the offending value: {err}"
            );
        }
    }

    #[test]
    fn build_pool_respects_request() {
        assert_eq!(build_pool(3).current_num_threads(), 3);
    }

    #[test]
    fn arena_counts_growth_only_when_capacity_grows() {
        let mut arena = BatchArena::default();
        arena.begin_iteration();
        arena.points.extend_from_slice(&[Vec3::ZERO; 64]);
        arena.end_iteration();
        assert_eq!(arena.growth_events(), 1);
        // Same-sized refill reuses the capacity: no new event.
        for _ in 0..3 {
            arena.begin_iteration();
            arena.clear_gather();
            arena.points.extend_from_slice(&[Vec3::ZERO; 64]);
            arena.end_iteration();
        }
        assert_eq!(arena.growth_events(), 1);
        // A bigger batch grows again.
        arena.begin_iteration();
        arena.clear_gather();
        arena.points.extend_from_slice(&[Vec3::ZERO; 4096]);
        arena.end_iteration();
        assert_eq!(arena.growth_events(), 2);
    }

    #[test]
    fn scan_keeps_everything_below_termination_depth() {
        let sigmas = vec![2.0f32; 32];
        let spans = [
            RaySpan {
                start: 0,
                len: 16,
                dt: 0.1,
            },
            RaySpan {
                start: 16,
                len: 16,
                dt: 0.1,
            },
        ];
        let mut live = Vec::new();
        let any_dead = scan_live_samples(&sigmas, &spans, None, &mut live);
        assert!(!any_dead);
        assert_eq!(live.len(), 32);
        assert!(live.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn scan_cuts_exactly_where_composite_transmittance_hits_zero() {
        // A wall of enormous density: transmittance underflows to exactly
        // 0.0 partway down the ray. The scan's cut must agree with the
        // composite kernel's trans_after sample for sample.
        let n = 12usize;
        let sigmas: Vec<f32> = (0..n).map(|i| 40.0 + 5.0 * i as f32).collect();
        let spans = [RaySpan {
            start: 0,
            len: n,
            dt: 1.0,
        }];
        let mut live = Vec::new();
        let any_dead = scan_live_samples(&sigmas, &spans, None, &mut live);
        assert!(any_dead, "this ray must terminate");
        assert!(live.len() < n);
        let samples: Vec<inerf_render::volume::SamplePoint> = sigmas
            .iter()
            .map(|&sigma| inerf_render::volume::SamplePoint {
                sigma,
                color: Vec3::ONE,
            })
            .collect();
        let out = inerf_render::volume::composite_uniform(&samples, 1.0);
        let cut = live.len();
        assert_eq!(
            out.transmittance_after[cut - 1],
            0.0,
            "last live sample is where T reaches 0.0"
        );
        assert!(
            out.transmittance_after[..cut - 1].iter().all(|&t| t != 0.0),
            "no earlier sample may have zero transmittance"
        );
    }
}
