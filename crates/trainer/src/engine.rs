//! Thread-pool plumbing for the batched SoA execution engine.
//!
//! The batched hot path (see [`crate::train`] and [`crate::model`]) splits
//! every stage into *fixed-size* chunks — [`RAY_CHUNK`] rays for the
//! compositing stages, `POINT_CHUNK` points inside the model — and runs the
//! chunks on a [`rayon::ThreadPool`]. Chunk boundaries never depend on the
//! worker count and all cross-chunk reductions happen sequentially in chunk
//! order, so training is bitwise-deterministic for a fixed seed at *any*
//! thread count; the knob only changes wall-clock time.
//!
//! The pool size comes from the `INERF_THREADS` environment variable
//! (default: all available cores); [`crate::train::Trainer::with_threads`]
//! overrides it per trainer, which is what the determinism tests use.

use rayon::{ThreadPool, ThreadPoolBuilder};
use std::sync::{Arc, OnceLock};

/// Rays per task in the parallel composite / composite-backward stages.
///
/// Fixed (instead of derived from the worker count) so that the chunk
/// decomposition — and with it every floating-point reduction order — is
/// identical at 1, 2, or 64 threads.
pub const RAY_CHUNK: usize = 16;

/// The thread count requested via `INERF_THREADS`, or all available cores.
pub fn default_threads() -> usize {
    std::env::var("INERF_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Builds a dedicated pool with exactly `threads` workers.
pub fn build_pool(threads: usize) -> Arc<ThreadPool> {
    Arc::new(
        ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail"),
    )
}

/// The process-wide default pool, sized by [`default_threads`] on first use
/// and shared by every trainer that doesn't request its own size.
pub fn default_pool() -> Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| build_pool(default_threads())))
}

/// Splits `buf` into consecutive mutable row groups of the given sizes, so
/// each chunk task can own its disjoint output slice across a scope.
///
/// # Panics
///
/// Panics if the counts overrun `buf`.
pub(crate) fn split_rows<T>(
    mut buf: &mut [T],
    counts: impl Iterator<Item = usize>,
) -> Vec<&mut [T]> {
    counts
        .map(|c| {
            let (head, rest) = std::mem::take(&mut buf).split_at_mut(c);
            buf = rest;
            head
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_covers_buffer_disjointly() {
        let mut buf = [0u32; 10];
        let parts = split_rows(&mut buf, [3usize, 0, 5, 2].into_iter());
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            [3, 0, 5, 2]
        );
        for (i, part) in parts.into_iter().enumerate() {
            part.fill(i as u32);
        }
        assert_eq!(buf, [0, 0, 0, 2, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn build_pool_respects_request() {
        assert_eq!(build_pool(3).current_num_threads(), 3);
    }
}
