//! Baseline NeRF algorithms for the Tab. IV comparison.
//!
//! Compact reimplementations of the three algorithm baselines the paper
//! compares against (see DESIGN.md for the substitution rationale):
//!
//! * [`NerfLite`] — vanilla NeRF (Mildenhall et al. 2020): frequency
//!   positional encoding feeding an MLP. High quality per parameter but slow
//!   to converge — with a fixed iteration budget it underfits relative to
//!   hash-grid methods.
//! * [`TensorfLite`] — TensoRF (Chen et al. 2022): tri-plane factorized
//!   feature grids (the VM decomposition restricted to planes) with the same
//!   small MLP heads.
//! * [`FastNerfLite`] — FastNeRF (Garbin et al. 2021): position/direction
//!   factorized radiance `color = Σ_k β_k(d) · uvw_k(p)`, built for
//!   cacheability rather than fidelity — the weakest fit.

use crate::model::{direction_encoding, TrainableField};
use inerf_geom::Vec3;
use inerf_mlp::{Activation, AdamState, Mlp, MlpActivations};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shared density/color MLP heads (the iNGP head structure) reused by the
/// encoder-style baselines.
#[derive(Debug, Clone)]
struct Heads {
    density_mlp: Mlp,
    color_mlp: Mlp,
    density_out: usize,
}

#[derive(Debug, Clone)]
struct HeadsCache {
    density_acts: MlpActivations,
    color_acts: MlpActivations,
    sigma: f32,
}

impl Heads {
    fn new(feat_dim: usize, hidden: usize, density_out: usize, seed: u64) -> Self {
        let density_mlp = Mlp::new(
            &[feat_dim, hidden, density_out],
            Activation::Relu,
            Activation::Identity,
            seed ^ 0xAA,
        );
        let color_mlp = Mlp::new(
            &[(density_out - 1) + 9, hidden, 3],
            Activation::Relu,
            Activation::Sigmoid,
            seed ^ 0xBB,
        );
        Heads {
            density_mlp,
            color_mlp,
            density_out,
        }
    }

    fn forward(&self, feats: &[f32], d: Vec3) -> (HeadsCache, f32, Vec3) {
        let density_acts = self.density_mlp.forward(feats);
        let raw = density_acts.output();
        let sigma = Activation::Exp.apply(raw[0]);
        let mut color_in = Vec::with_capacity(self.density_out - 1 + 9);
        color_in.extend_from_slice(&raw[1..]);
        color_in.extend_from_slice(&direction_encoding(d));
        let color_acts = self.color_mlp.forward(&color_in);
        let o = color_acts.output();
        let rgb = Vec3::new(o[0], o[1], o[2]);
        (
            HeadsCache {
                density_acts,
                color_acts,
                sigma,
            },
            sigma,
            rgb,
        )
    }

    /// Returns the gradient w.r.t. the input features.
    fn backward(&mut self, cache: &HeadsCache, d_sigma: f32, d_color: Vec3) -> Vec<f32> {
        let d_color_in = self
            .color_mlp
            .backward(&cache.color_acts, &[d_color.x, d_color.y, d_color.z]);
        let mut d_raw = vec![0.0f32; self.density_out];
        d_raw[0] = d_sigma * cache.sigma;
        d_raw[1..].copy_from_slice(&d_color_in[..self.density_out - 1]);
        self.density_mlp.backward(&cache.density_acts, &d_raw)
    }

    fn zero_grad(&mut self) {
        self.density_mlp.zero_grad();
        self.color_mlp.zero_grad();
    }

    fn parameter_count(&self) -> usize {
        self.density_mlp.parameter_count() + self.color_mlp.parameter_count()
    }

    fn step(&mut self, density_adam: &mut AdamState, color_adam: &mut AdamState) {
        step_mlp(&mut self.density_mlp, density_adam);
        step_mlp(&mut self.color_mlp, color_adam);
    }
}

fn step_mlp(mlp: &mut Mlp, adam: &mut AdamState) {
    adam.begin_step();
    let mut idx = 0usize;
    mlp.for_each_param_mut(|p, g| {
        adam.update_one(idx, p, g);
        idx += 1;
    });
}

/// Frequency positional encoding: `[sin(2^k π x), cos(2^k π x)]` per axis.
pub fn positional_encoding(p: Vec3, bands: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(3 + 6 * bands);
    out.extend_from_slice(&[p.x, p.y, p.z]);
    for k in 0..bands {
        let f = (1 << k) as f32 * std::f32::consts::PI;
        for v in [p.x, p.y, p.z] {
            out.push((f * v).sin());
            out.push((f * v).cos());
        }
    }
    out
}

/// Vanilla-NeRF baseline: positional encoding + MLP heads.
#[derive(Debug, Clone)]
pub struct NerfLite {
    bands: usize,
    heads: Heads,
    density_adam: AdamState,
    color_adam: AdamState,
    cache: Vec<(Vec3, HeadsCache)>,
}

impl NerfLite {
    /// Creates the baseline. `bands` frequency bands, `hidden` MLP width.
    pub fn new(bands: usize, hidden: usize, seed: u64) -> Self {
        let feat_dim = 3 + 6 * bands;
        let heads = Heads::new(feat_dim, hidden, 8, seed);
        let density_adam = AdamState::new(heads.density_mlp.parameter_count(), 5e-3);
        let color_adam = AdamState::new(heads.color_mlp.parameter_count(), 5e-3);
        NerfLite {
            bands,
            heads,
            density_adam,
            color_adam,
            cache: Vec::new(),
        }
    }
}

impl TrainableField for NerfLite {
    fn begin_batch(&mut self) {
        self.cache.clear();
        self.heads.zero_grad();
    }

    fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let feats = positional_encoding(p, self.bands);
        let (cache, sigma, rgb) = self.heads.forward(&feats, d);
        self.cache.push((p, cache));
        (sigma, rgb)
    }

    fn backward(&mut self, idx: usize, d_sigma: f32, d_color: Vec3) {
        let cache = self.cache[idx].1.clone();
        // The encoding has no parameters; discard the feature gradient.
        let _ = self.heads.backward(&cache, d_sigma, d_color);
    }

    fn apply_gradients(&mut self) {
        self.heads
            .step(&mut self.density_adam, &mut self.color_adam);
    }

    fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let feats = positional_encoding(p, self.bands);
        let (_, sigma, rgb) = self.heads.forward(&feats, d);
        (sigma, rgb)
    }

    fn parameter_count(&self) -> usize {
        self.heads.parameter_count()
    }
}

/// One factor plane of the TensoRF-style tri-plane grid, with `R` channels
/// at `res × res` resolution and bilinear interpolation.
#[derive(Debug, Clone)]
struct FactorPlane {
    res: usize,
    channels: usize,
    values: Vec<f32>,
    grads: Vec<f32>,
}

impl FactorPlane {
    fn new(res: usize, channels: usize, rng: &mut SmallRng) -> Self {
        let n = res * res * channels;
        FactorPlane {
            res,
            channels,
            values: (0..n).map(|_| rng.gen_range(-0.05f32..0.05)).collect(),
            grads: vec![0.0; n],
        }
    }

    /// Bilinear sample of all channels at `(u, v)` in `[0,1]²`; appends to `out`.
    fn sample_into(&self, u: f32, v: f32, out: &mut Vec<f32>) {
        let (i0, j0, fu, fv) = self.cell(u, v);
        for c in 0..self.channels {
            let g = |i: usize, j: usize| self.values[(j * self.res + i) * self.channels + c];
            let a = g(i0, j0) * (1.0 - fu) + g(i0 + 1, j0) * fu;
            let b = g(i0, j0 + 1) * (1.0 - fu) + g(i0 + 1, j0 + 1) * fu;
            out.push(a * (1.0 - fv) + b * fv);
        }
    }

    fn backward(&mut self, u: f32, v: f32, d_out: &[f32]) {
        let (i0, j0, fu, fv) = self.cell(u, v);
        for (c, &d) in d_out.iter().enumerate() {
            let mut add = |i: usize, j: usize, w: f32| {
                self.grads[(j * self.res + i) * self.channels + c] += w * d;
            };
            add(i0, j0, (1.0 - fu) * (1.0 - fv));
            add(i0 + 1, j0, fu * (1.0 - fv));
            add(i0, j0 + 1, (1.0 - fu) * fv);
            add(i0 + 1, j0 + 1, fu * fv);
        }
    }

    fn cell(&self, u: f32, v: f32) -> (usize, usize, f32, f32) {
        let s = (self.res - 1) as f32;
        let x = (u.clamp(0.0, 1.0) * s).min(s - 1e-4);
        let y = (v.clamp(0.0, 1.0) * s).min(s - 1e-4);
        (x.floor() as usize, y.floor() as usize, x.fract(), y.fract())
    }
}

/// TensoRF-style baseline: three factor planes (xy, xz, yz) concatenated
/// into a feature vector feeding the shared MLP heads.
#[derive(Debug, Clone)]
pub struct TensorfLite {
    planes: [FactorPlane; 3],
    heads: Heads,
    plane_adam: AdamState,
    density_adam: AdamState,
    color_adam: AdamState,
    cache: Vec<(Vec3, HeadsCache)>,
}

impl TensorfLite {
    /// Creates the baseline with `res × res` planes of `channels` components.
    pub fn new(res: usize, channels: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let planes = [
            FactorPlane::new(res, channels, &mut rng),
            FactorPlane::new(res, channels, &mut rng),
            FactorPlane::new(res, channels, &mut rng),
        ];
        let heads = Heads::new(3 * channels, hidden, 8, seed);
        let plane_n: usize = planes.iter().map(|p| p.values.len()).sum();
        TensorfLite {
            plane_adam: AdamState::new(plane_n, 2e-2),
            density_adam: AdamState::new(heads.density_mlp.parameter_count(), 5e-3),
            color_adam: AdamState::new(heads.color_mlp.parameter_count(), 5e-3),
            planes,
            heads,
            cache: Vec::new(),
        }
    }

    fn features(&self, p: Vec3) -> Vec<f32> {
        let mut f = Vec::with_capacity(3 * self.planes[0].channels);
        self.planes[0].sample_into(p.x, p.y, &mut f);
        self.planes[1].sample_into(p.x, p.z, &mut f);
        self.planes[2].sample_into(p.y, p.z, &mut f);
        f
    }
}

impl TrainableField for TensorfLite {
    fn begin_batch(&mut self) {
        self.cache.clear();
        self.heads.zero_grad();
        for plane in &mut self.planes {
            plane.grads.fill(0.0);
        }
    }

    fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let feats = self.features(p);
        let (cache, sigma, rgb) = self.heads.forward(&feats, d);
        self.cache.push((p, cache));
        (sigma, rgb)
    }

    fn backward(&mut self, idx: usize, d_sigma: f32, d_color: Vec3) {
        let (p, cache) = self.cache[idx].clone();
        let d_feats = self.heads.backward(&cache, d_sigma, d_color);
        let c = self.planes[0].channels;
        self.planes[0].backward(p.x, p.y, &d_feats[..c]);
        self.planes[1].backward(p.x, p.z, &d_feats[c..2 * c]);
        self.planes[2].backward(p.y, p.z, &d_feats[2 * c..]);
    }

    fn apply_gradients(&mut self) {
        self.plane_adam.begin_step();
        let mut idx = 0usize;
        for plane in &mut self.planes {
            for (v, g) in plane.values.iter_mut().zip(&plane.grads) {
                self.plane_adam.update_one(idx, v, *g);
                idx += 1;
            }
        }
        self.heads
            .step(&mut self.density_adam, &mut self.color_adam);
    }

    fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let (_, sigma, rgb) = self.heads.forward(&self.features(p), d);
        (sigma, rgb)
    }

    fn parameter_count(&self) -> usize {
        self.planes.iter().map(|p| p.values.len()).sum::<usize>() + self.heads.parameter_count()
    }
}

/// FastNeRF-style baseline: `color(p, d) = sigmoid(Σ_k β_k(d) · uvw_k(p))`
/// with the density from the position branch. The factorization enables
/// caching in the original paper; here it simply limits capacity.
#[derive(Debug, Clone)]
pub struct FastNerfLite {
    components: usize,
    pos_mlp: Mlp, // PE(p) -> [raw_sigma, K*3 uvw]
    dir_mlp: Mlp, // dir-enc(d) -> K betas
    bands: usize,
    pos_adam: AdamState,
    dir_adam: AdamState,
    cache: Vec<FastCache>,
}

#[derive(Debug, Clone)]
struct FastCache {
    pos_acts: MlpActivations,
    dir_acts: MlpActivations,
    sigma: f32,
    rgb_pre: Vec3,
}

impl FastNerfLite {
    /// Creates the baseline with `components` factorized color components.
    pub fn new(components: usize, hidden: usize, bands: usize, seed: u64) -> Self {
        let pe_dim = 3 + 6 * bands;
        let pos_mlp = Mlp::new(
            &[pe_dim, hidden, 1 + components * 3],
            Activation::Relu,
            Activation::Identity,
            seed ^ 0x11,
        );
        let dir_mlp = Mlp::new(
            &[9, hidden / 2, components],
            Activation::Relu,
            Activation::Identity,
            seed ^ 0x22,
        );
        FastNerfLite {
            components,
            pos_adam: AdamState::new(pos_mlp.parameter_count(), 5e-3),
            dir_adam: AdamState::new(dir_mlp.parameter_count(), 5e-3),
            pos_mlp,
            dir_mlp,
            bands,
            cache: Vec::new(),
        }
    }

    fn forward_parts(&self, p: Vec3, d: Vec3) -> (MlpActivations, MlpActivations, f32, Vec3, Vec3) {
        let pos_acts = self.pos_mlp.forward(&positional_encoding(p, self.bands));
        let dir_acts = self.dir_mlp.forward(&direction_encoding(d));
        let pos_out = pos_acts.output();
        let betas = dir_acts.output();
        let sigma = Activation::Exp.apply(pos_out[0]);
        let mut pre = Vec3::ZERO;
        for k in 0..self.components {
            let uvw = Vec3::new(
                pos_out[1 + 3 * k],
                pos_out[1 + 3 * k + 1],
                pos_out[1 + 3 * k + 2],
            );
            pre += uvw * betas[k];
        }
        let rgb = Vec3::new(
            Activation::Sigmoid.apply(pre.x),
            Activation::Sigmoid.apply(pre.y),
            Activation::Sigmoid.apply(pre.z),
        );
        (pos_acts, dir_acts, sigma, pre, rgb)
    }
}

impl TrainableField for FastNerfLite {
    fn begin_batch(&mut self) {
        self.cache.clear();
        self.pos_mlp.zero_grad();
        self.dir_mlp.zero_grad();
    }

    fn query(&mut self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let (pos_acts, dir_acts, sigma, pre, rgb) = self.forward_parts(p, d);
        self.cache.push(FastCache {
            pos_acts,
            dir_acts,
            sigma,
            rgb_pre: pre,
        });
        (sigma, rgb)
    }

    fn backward(&mut self, idx: usize, d_sigma: f32, d_color: Vec3) {
        let cache = self.cache[idx].clone();
        // Chain through the sigmoid on each channel.
        let sig = |x: f32| Activation::Sigmoid.apply(x);
        let d_pre = Vec3::new(
            d_color.x * sig(cache.rgb_pre.x) * (1.0 - sig(cache.rgb_pre.x)),
            d_color.y * sig(cache.rgb_pre.y) * (1.0 - sig(cache.rgb_pre.y)),
            d_color.z * sig(cache.rgb_pre.z) * (1.0 - sig(cache.rgb_pre.z)),
        );
        let pos_out = cache.pos_acts.output().to_vec();
        let betas = cache.dir_acts.output().to_vec();
        // d/d(uvw_k) = beta_k * d_pre ; d/d(beta_k) = uvw_k . d_pre.
        let mut d_pos = vec![0.0f32; pos_out.len()];
        d_pos[0] = d_sigma * cache.sigma;
        let mut d_betas = vec![0.0f32; self.components];
        for k in 0..self.components {
            let uvw = Vec3::new(
                pos_out[1 + 3 * k],
                pos_out[1 + 3 * k + 1],
                pos_out[1 + 3 * k + 2],
            );
            d_pos[1 + 3 * k] = betas[k] * d_pre.x;
            d_pos[1 + 3 * k + 1] = betas[k] * d_pre.y;
            d_pos[1 + 3 * k + 2] = betas[k] * d_pre.z;
            d_betas[k] = uvw.dot(d_pre);
        }
        let _ = self.pos_mlp.backward(&cache.pos_acts, &d_pos);
        let _ = self.dir_mlp.backward(&cache.dir_acts, &d_betas);
    }

    fn apply_gradients(&mut self) {
        step_mlp(&mut self.pos_mlp, &mut self.pos_adam);
        step_mlp(&mut self.dir_mlp, &mut self.dir_adam);
    }

    fn query_eval(&self, p: Vec3, d: Vec3) -> (f32, Vec3) {
        let (_, _, sigma, _, rgb) = self.forward_parts(p, d);
        (sigma, rgb)
    }

    fn parameter_count(&self) -> usize {
        self.pos_mlp.parameter_count() + self.dir_mlp.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{TrainConfig, Trainer};
    use inerf_scenes::{zoo, DatasetConfig};

    fn check_basic_contract<M: TrainableField>(mut m: M) {
        m.begin_batch();
        let p = Vec3::new(0.4, 0.5, 0.6);
        let d = Vec3::new(0.0, 0.0, 1.0);
        let (sigma, rgb) = m.query(p, d);
        assert!(sigma >= 0.0 && sigma.is_finite());
        assert!(rgb.is_finite());
        assert!((0.0..=1.0).contains(&rgb.x));
        let (s2, c2) = m.query_eval(p, d);
        assert_eq!(sigma, s2);
        assert_eq!(rgb, c2);
        m.backward(0, 0.5, Vec3::ONE);
        let before = m.query_eval(p, d);
        m.apply_gradients();
        let after = m.query_eval(p, d);
        assert!(
            before.0 != after.0 || before.1 != after.1,
            "gradient step should change predictions"
        );
        assert!(m.parameter_count() > 0);
    }

    #[test]
    fn nerf_lite_contract() {
        check_basic_contract(NerfLite::new(4, 16, 3));
    }

    #[test]
    fn tensorf_lite_contract() {
        check_basic_contract(TensorfLite::new(16, 4, 16, 3));
    }

    #[test]
    fn fast_nerf_lite_contract() {
        check_basic_contract(FastNerfLite::new(4, 16, 4, 3));
    }

    #[test]
    fn positional_encoding_dimensions_and_values() {
        let e = positional_encoding(Vec3::new(0.5, 0.0, 1.0), 2);
        assert_eq!(e.len(), 3 + 6 * 2);
        assert_eq!(e[0], 0.5);
        // sin(pi * 0.5) = 1 for band 0, x axis.
        assert!((e[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn baselines_train_on_tiny_scene() {
        // Every baseline must reduce loss on a tiny dataset — a smoke test
        // that forward/backward wiring is consistent.
        let scene = zoo::scene(zoo::SceneKind::Chair);
        let dataset = DatasetConfig::tiny().generate(&scene);
        let cfg = TrainConfig::tiny();

        let mut t1 = Trainer::new(NerfLite::new(4, 16, 1), cfg, 2);
        let r1 = t1.train(&dataset, 30);
        assert!(
            r1.losses[25..].iter().sum::<f64>() < r1.losses[..5].iter().sum::<f64>(),
            "NerfLite did not learn: {:?}",
            &r1.losses[..5]
        );

        let mut t2 = Trainer::new(TensorfLite::new(16, 4, 16, 1), cfg, 2);
        let r2 = t2.train(&dataset, 30);
        assert!(r2.losses[25..].iter().sum::<f64>() < r2.losses[..5].iter().sum::<f64>());

        let mut t3 = Trainer::new(FastNerfLite::new(4, 16, 4, 1), cfg, 2);
        let r3 = t3.train(&dataset, 30);
        assert!(r3.losses[25..].iter().sum::<f64>() < r3.losses[..5].iter().sum::<f64>());
    }

    #[test]
    fn fast_nerf_gradient_check() {
        // Verify the hand-derived factorized-color backward against finite
        // differences through the full query.
        let mut m = FastNerfLite::new(3, 8, 2, 7);
        let p = Vec3::new(0.3, 0.7, 0.2);
        let d = Vec3::new(0.0, 1.0, 0.0);
        let d_color = Vec3::new(1.0, -0.5, 0.25);
        let d_sigma = 0.3f32;
        m.begin_batch();
        m.query(p, d);
        m.backward(0, d_sigma, d_color);
        // Probe: perturb one pos_mlp parameter and compare loss slope.
        let loss = |m: &FastNerfLite| {
            let (s, c) = m.query_eval(p, d);
            d_sigma * s + d_color.dot(c)
        };
        let eps = 1e-3f32;
        // Snapshot the analytic gradients accumulated by backward().
        let grads: Vec<f32> = {
            let mut m2 = m.clone();
            let mut gs = Vec::new();
            m2.pos_mlp.for_each_param_mut(|_, g| gs.push(g));
            gs
        };
        let base = m.clone();
        let mut failures = Vec::new();
        for target in [0usize, 7, 23] {
            let analytic = grads[target];
            let mut up_m = base.clone();
            let mut i = 0usize;
            up_m.pos_mlp.for_each_param_mut(|pm, _| {
                if i == target {
                    *pm += eps;
                }
                i += 1;
            });
            let mut down_m = base.clone();
            let mut i = 0usize;
            down_m.pos_mlp.for_each_param_mut(|pm, _| {
                if i == target {
                    *pm -= eps;
                }
                i += 1;
            });
            let numeric = (loss(&up_m) - loss(&down_m)) / (2.0 * eps);
            if (numeric - analytic).abs() > 2e-2 {
                failures.push((target, numeric, analytic));
            }
        }
        assert!(failures.is_empty(), "gradient mismatches: {failures:?}");
    }
}
